//! Compare the o-sharing operator-selection strategies (Random, SNF, SEF) on the paper's
//! default query Q4 — the experiment behind Table IV and Figure 11(f).
//!
//! Run with `cargo run --release --example strategy_comparison`.

use urm::prelude::*;

fn main() {
    let scenario = Scenario::generate(&ScenarioConfig {
        target: TargetSchemaKind::Excel,
        scale: 50,
        mappings: 30,
        seed: 42,
    })
    .expect("scenario generation");

    let query = workload::query(QueryId::Q4);
    println!("{query}\n");
    println!(
        "{:<10} {:>12} {:>18} {:>10}",
        "strategy", "time (ms)", "source operators", "answers"
    );

    let mut reference: Option<ProbabilisticAnswer> = None;
    for (name, strategy) in [
        ("Random", Strategy::Random { seed: 11 }),
        ("SNF", Strategy::Snf),
        ("SEF", Strategy::Sef),
    ] {
        let eval = evaluate(
            &query,
            &scenario.mappings,
            &scenario.catalog,
            Algorithm::OSharing(strategy),
        )
        .expect("evaluation");
        println!(
            "{:<10} {:>12.2} {:>18} {:>10}",
            name,
            eval.metrics.total_time.as_secs_f64() * 1000.0,
            eval.metrics.source_operators(),
            eval.answer.len()
        );
        // All strategies must agree on the probabilistic answer — only the work differs.
        if let Some(reference) = &reference {
            assert!(reference.approx_eq(&eval.answer, 1e-9));
        } else {
            reference = Some(eval.answer);
        }
    }

    // The e-MQO baseline provides the "minimal number of operators" yardstick of Table IV.
    let emqo = evaluate(
        &query,
        &scenario.mappings,
        &scenario.catalog,
        Algorithm::EMqo,
    )
    .expect("e-MQO evaluation");
    println!(
        "{:<10} {:>12.2} {:>18} {:>10}   (optimal operator count)",
        "e-MQO",
        emqo.metrics.total_time.as_secs_f64() * 1000.0,
        emqo.metrics.source_operators(),
        emqo.answer.len()
    );
}
