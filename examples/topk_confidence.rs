//! Probabilistic top-k queries: find the most credible answers without computing every exact
//! probability, and compare against the full o-sharing evaluation.
//!
//! Run with `cargo run --release --example topk_confidence`.

use urm::prelude::*;

fn main() {
    let scenario = Scenario::generate(&ScenarioConfig {
        target: TargetSchemaKind::Noris,
        scale: 60,
        mappings: 30,
        seed: 7,
    })
    .expect("scenario generation");

    // Q7 (Noris): items and unit prices of a specific, fully qualified order.
    let query = workload::query(QueryId::Q7);
    println!("{query}\n");

    // Exact evaluation: every answer with its exact probability.
    let exact = evaluate(
        &query,
        &scenario.mappings,
        &scenario.catalog,
        Algorithm::OSharing(Strategy::Sef),
    )
    .expect("exact evaluation");
    println!(
        "o-sharing (exact): {} answers in {:.2} ms, {} source operators",
        exact.answer.len(),
        exact.metrics.total_time.as_secs_f64() * 1000.0,
        exact.metrics.source_operators()
    );
    for (tuple, p) in exact.answer.top_k(5) {
        println!("    {tuple}  p = {p:.3}");
    }

    // Top-k for increasing k: the smaller k is, the earlier the u-trace walk can stop.
    for k in [1usize, 5, 10] {
        let topk = top_k(
            &query,
            &scenario.mappings,
            &scenario.catalog,
            k,
            Strategy::Sef,
        )
        .expect("top-k evaluation");
        println!(
            "\ntop-{k}: {:.2} ms, {} source operators, stopped early: {}",
            topk.metrics.total_time.as_secs_f64() * 1000.0,
            topk.metrics.source_operators(),
            topk.stopped_early
        );
        for entry in &topk.entries {
            println!(
                "    {}  p ∈ [{:.3}, {:.3}]",
                entry.tuple, entry.lower_bound, entry.upper_bound
            );
        }
    }
}
