//! Quickstart: evaluate the paper's introductory query `q0` over the worked example of
//! Figures 1–3 with every algorithm, and print the probabilistic answers.
//!
//! Run with `cargo run --example quickstart`.

use urm::core::testkit;
use urm::prelude::*;

fn main() {
    // The source instance of Figure 2 and the five possible mappings of Figure 3.
    let catalog = testkit::figure2_catalog();
    let mappings = testkit::figure3_mappings();
    println!("{mappings}");

    // q0 : π_addr σ_phone='123' Person  — issued against the *target* schema.
    let q0 = TargetQuery::builder("q0")
        .relation("Person")
        .filter_eq("Person.phone", "123")
        .returning(["Person.addr"])
        .build()
        .expect("well-formed query");
    println!("target query: {q0}\n");

    for algorithm in [
        Algorithm::Basic,
        Algorithm::EBasic,
        Algorithm::EMqo,
        Algorithm::QSharing,
        Algorithm::OSharing(Strategy::Sef),
    ] {
        let eval = evaluate(&q0, &mappings, &catalog, algorithm).expect("evaluation succeeds");
        println!(
            "{:<18} {:>4} source operators, {:>2} answers: {}",
            algorithm.name(),
            eval.metrics.source_operators(),
            eval.answer.len(),
            eval.answer
                .sorted()
                .iter()
                .map(|(t, p)| format!("{t}@{p:.2}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // The probabilistic top-1 answer, computed without deriving every exact probability.
    let top = top_k(&q0, &mappings, &catalog, 1, Strategy::Sef).expect("top-k succeeds");
    println!(
        "\ntop-1 answer: {} (probability ≥ {:.2})",
        top.entries[0].tuple, top.entries[0].lower_bound
    );
}
