//! A realistic end-to-end scenario: generate a purchase-order source instance, match it against
//! the Excel target schema, derive possible mappings, and run the paper's workload queries
//! (Table III) with the sharing algorithms.
//!
//! Run with `cargo run --release --example purchase_orders`.

use urm::prelude::*;

fn main() {
    // A scaled-down version of the paper's setup: a synthetic TPC-H-like source instance and
    // the Excel purchase-order target schema, matched by the name-similarity scorer.
    let scenario = Scenario::generate(&ScenarioConfig {
        target: TargetSchemaKind::Excel,
        scale: 60,
        mappings: 30,
        seed: 42,
    })
    .expect("scenario generation");

    println!(
        "source instance: {} relations, {} tuples (~{} KiB)",
        scenario.catalog.len(),
        scenario.catalog.total_tuples(),
        scenario.catalog.estimated_bytes() / 1024
    );
    println!(
        "uncertain matching: {} possible mappings, o-ratio {:.2}\n",
        scenario.mappings.len(),
        scenario.mappings.o_ratio()
    );

    for (id, query) in workload::queries_for(TargetSchemaKind::Excel) {
        println!("— {} —", query);
        for algorithm in [
            Algorithm::EBasic,
            Algorithm::QSharing,
            Algorithm::OSharing(Strategy::Sef),
        ] {
            let eval = evaluate(&query, &scenario.mappings, &scenario.catalog, algorithm)
                .expect("evaluation");
            println!(
                "  {:<18} {:>8.2} ms   {:>5} source ops   {:>4} answers",
                algorithm.name(),
                eval.metrics.total_time.as_secs_f64() * 1000.0,
                eval.metrics.source_operators(),
                eval.answer.len()
            );
        }
        let _ = id;
        println!();
    }
}
