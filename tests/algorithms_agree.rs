//! Cross-crate integration tests: on generated scenarios (synthetic source instance + derived
//! mapping sets), every evaluation algorithm must return the same probabilistic answer for
//! every workload query, and the sharing algorithms must not do more work than the baselines.

use urm::prelude::*;

fn scenario(target: TargetSchemaKind) -> Scenario {
    Scenario::generate(&ScenarioConfig {
        target,
        scale: 25,
        mappings: 12,
        seed: 11,
    })
    .expect("scenario generation")
}

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Basic,
        Algorithm::EBasic,
        Algorithm::EMqo,
        Algorithm::QSharing,
        Algorithm::OSharing(Strategy::Sef),
        Algorithm::OSharing(Strategy::Snf),
        Algorithm::OSharing(Strategy::Random { seed: 5 }),
    ]
}

#[test]
fn all_algorithms_agree_on_the_full_workload() {
    for target in TargetSchemaKind::all() {
        let scenario = scenario(target);
        for (id, query) in workload::queries_for(target) {
            let reference = evaluate(
                &query,
                &scenario.mappings,
                &scenario.catalog,
                Algorithm::Basic,
            )
            .unwrap();
            for algorithm in algorithms() {
                let eval =
                    evaluate(&query, &scenario.mappings, &scenario.catalog, algorithm).unwrap();
                assert!(
                    reference.answer.approx_eq(&eval.answer, 1e-9),
                    "{} disagrees with basic on Q{} ({target})\nbasic:    {}\n{}: {}",
                    algorithm.name(),
                    id.number(),
                    reference.answer,
                    algorithm.name(),
                    eval.answer
                );
            }
        }
    }
}

#[test]
fn sharing_reduces_source_queries_on_the_default_query() {
    let scenario = scenario(TargetSchemaKind::Excel);
    let q4 = workload::query(QueryId::Q4);
    let basic = evaluate(&q4, &scenario.mappings, &scenario.catalog, Algorithm::Basic).unwrap();
    let ebasic = evaluate(
        &q4,
        &scenario.mappings,
        &scenario.catalog,
        Algorithm::EBasic,
    )
    .unwrap();
    let qsharing = evaluate(
        &q4,
        &scenario.mappings,
        &scenario.catalog,
        Algorithm::QSharing,
    )
    .unwrap();
    // basic runs one source query per mapping; the others deduplicate.
    assert_eq!(
        basic.metrics.exec.source_queries,
        scenario.mappings.len() as u64
    );
    assert!(ebasic.metrics.exec.source_queries <= basic.metrics.exec.source_queries);
    assert!(qsharing.metrics.exec.source_queries <= ebasic.metrics.exec.source_queries);
    assert!(qsharing.metrics.representative_mappings <= scenario.mappings.len());
}

#[test]
fn strategy_quality_ordering_holds_on_generated_data() {
    // Table IV's qualitative result: SNF and SEF execute far fewer source operators than Random.
    let scenario = scenario(TargetSchemaKind::Excel);
    let q4 = workload::query(QueryId::Q4);
    let ops = |strategy| {
        evaluate(
            &q4,
            &scenario.mappings,
            &scenario.catalog,
            Algorithm::OSharing(strategy),
        )
        .unwrap()
        .metrics
        .source_operators()
    };
    let random = ops(Strategy::Random { seed: 17 });
    let snf = ops(Strategy::Snf);
    let sef = ops(Strategy::Sef);
    assert!(sef <= random, "SEF {sef} vs Random {random}");
    assert!(snf <= random, "SNF {snf} vs Random {random}");
}

#[test]
fn top_k_matches_exact_top_k_on_generated_data() {
    let scenario = scenario(TargetSchemaKind::Paragon);
    let q10 = workload::query(QueryId::Q10);
    let exact = evaluate(
        &q10,
        &scenario.mappings,
        &scenario.catalog,
        Algorithm::OSharing(Strategy::Sef),
    )
    .unwrap();
    let exact_sorted = exact.answer.sorted();
    for k in [1usize, 2, 5] {
        let topk = top_k(
            &q10,
            &scenario.mappings,
            &scenario.catalog,
            k,
            Strategy::Sef,
        )
        .unwrap();
        assert!(topk.entries.len() <= k);
        // Every returned entry's lower bound must not exceed its exact probability, and the
        // top-1 tuple must be an argmax of the exact distribution.
        for entry in &topk.entries {
            let p = exact.answer.probability_of(&entry.tuple);
            assert!(entry.lower_bound <= p + 1e-9);
            assert!(entry.upper_bound + 1e-9 >= p);
        }
        if k == 1 && !exact_sorted.is_empty() {
            let best_p = exact_sorted[0].1;
            let got_p = exact.answer.probability_of(&topk.entries[0].tuple);
            assert!((best_p - got_p).abs() < 1e-9, "top-1 is not an argmax");
        }
    }
}

#[test]
fn mapping_sets_generated_from_scenarios_are_valid() {
    for target in TargetSchemaKind::all() {
        let s = scenario(target);
        s.mappings.validate().unwrap();
        assert!(s.mappings.o_ratio() > 0.3, "{target}: overlap too low");
        // Sweeping the mapping count keeps the distribution valid.
        for h in [2usize, 5, 9] {
            let truncated = s.with_mappings(h);
            truncated.mappings.validate().unwrap();
        }
    }
}
