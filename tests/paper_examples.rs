//! Integration tests replaying the paper's worked examples end to end (Figures 1–3 and the
//! answers derived by hand in Sections I, III and IV).

use urm::core::testkit;
use urm::prelude::*;

fn tuple_text(s: &str) -> Tuple {
    Tuple::new(vec![Value::from(s)])
}

fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Basic,
        Algorithm::EBasic,
        Algorithm::EMqo,
        Algorithm::QSharing,
        Algorithm::OSharing(Strategy::Sef),
        Algorithm::OSharing(Strategy::Snf),
        Algorithm::OSharing(Strategy::Random { seed: 99 }),
    ]
}

#[test]
fn q0_answer_matches_the_introduction() {
    // q0 : π_addr σ_phone='123' Person  →  {(aaa, 0.5), (hk, 0.5)}.
    let catalog = testkit::figure2_catalog();
    let mappings = testkit::figure3_mappings();
    for algorithm in all_algorithms() {
        let eval = evaluate(&testkit::q0(), &mappings, &catalog, algorithm).unwrap();
        assert_eq!(eval.answer.len(), 2, "{}", algorithm.name());
        assert!(
            (eval.answer.probability_of(&tuple_text("aaa")) - 0.5).abs() < 1e-9,
            "{}",
            algorithm.name()
        );
        assert!(
            (eval.answer.probability_of(&tuple_text("hk")) - 0.5).abs() < 1e-9,
            "{}",
            algorithm.name()
        );
    }
}

#[test]
fn basic_running_example_answer_is_exact() {
    // π_phone σ_addr='aaa' Person  →  {(123, 0.5), (456, 0.8), (789, 0.2)}.
    let catalog = testkit::figure2_catalog();
    let mappings = testkit::figure3_mappings();
    for algorithm in all_algorithms() {
        let eval = evaluate(
            &testkit::basic_example_query(),
            &mappings,
            &catalog,
            algorithm,
        )
        .unwrap();
        let expected = [("123", 0.5), ("456", 0.8), ("789", 0.2)];
        assert_eq!(eval.answer.len(), expected.len(), "{}", algorithm.name());
        for (value, probability) in expected {
            assert!(
                (eval.answer.probability_of(&tuple_text(value)) - probability).abs() < 1e-9,
                "{}: wrong probability for {value}",
                algorithm.name()
            );
        }
    }
}

#[test]
fn q1_partitions_reduce_the_number_of_source_queries() {
    // Section IV: q1's partition tree yields three groups {m1,m2}, {m3,m4}, {m5}, so q-sharing
    // runs at most three source queries while basic runs five.
    let catalog = testkit::figure2_catalog();
    let mappings = testkit::figure3_mappings();
    let basic = evaluate(&testkit::q1(), &mappings, &catalog, Algorithm::Basic).unwrap();
    let qsharing = evaluate(&testkit::q1(), &mappings, &catalog, Algorithm::QSharing).unwrap();
    // basic issues one source query per mapping; m5 does not map pname at all, so only four of
    // the five mappings yield a runnable source query.
    assert_eq!(basic.metrics.exec.source_queries, 4);
    assert!(qsharing.metrics.exec.source_queries <= 3);
    assert!(basic.answer.approx_eq(&qsharing.answer, 1e-9));
    assert_eq!(qsharing.metrics.representative_mappings, 3);
}

#[test]
fn top_1_of_the_running_example_is_456() {
    let catalog = testkit::figure2_catalog();
    let mappings = testkit::figure3_mappings();
    let result = top_k(
        &testkit::basic_example_query(),
        &mappings,
        &catalog,
        1,
        Strategy::Sef,
    )
    .unwrap();
    assert_eq!(result.entries.len(), 1);
    assert_eq!(result.entries[0].tuple, tuple_text("456"));
}

#[test]
fn aggregates_agree_across_algorithms_on_the_worked_example() {
    let catalog = testkit::figure2_catalog();
    let mappings = testkit::figure3_mappings();
    for query in [testkit::count_query(), testkit::sum_query()] {
        let reference = evaluate(&query, &mappings, &catalog, Algorithm::Basic).unwrap();
        for algorithm in all_algorithms() {
            let eval = evaluate(&query, &mappings, &catalog, algorithm).unwrap();
            assert!(
                reference.answer.approx_eq(&eval.answer, 1e-9),
                "{} disagrees on {}",
                algorithm.name(),
                query.name()
            );
        }
    }
}

#[test]
fn figure1_similarity_scores_generate_overlapping_mappings() {
    // Build Figure 1's similarity matrix and let the matching substrate derive the possible
    // mappings, as Section II describes; the top mapping must use the bold correspondences.
    use urm::matching::{MappingSet, SchemaDef, SimilarityMatrix};
    let source = SchemaDef::new("S").with_relation(
        "Customer",
        ["cname", "ophone", "hphone", "mobile", "oaddr", "haddr"],
    );
    let target = SchemaDef::new("T").with_relation("Person", ["pname", "phone", "addr"]);
    let mut sim = SimilarityMatrix::new(&source, &target);
    sim.set(("Customer", "cname"), ("Person", "pname"), 0.85);
    sim.set(("Customer", "ophone"), ("Person", "phone"), 0.85);
    sim.set(("Customer", "hphone"), ("Person", "phone"), 0.83);
    sim.set(("Customer", "mobile"), ("Person", "phone"), 0.65);
    sim.set(("Customer", "oaddr"), ("Person", "addr"), 0.81);
    sim.set(("Customer", "haddr"), ("Person", "addr"), 0.75);

    let mappings = MappingSet::top_h(&sim, 5).unwrap();
    assert_eq!(mappings.len(), 5);
    mappings.validate().unwrap();
    assert!(mappings.o_ratio() > 0.3);
    let best = &mappings.mappings()[0];
    assert!(best.contains_pair(
        &urm::storage::AttrRef::new("Customer", "ophone"),
        &urm::storage::AttrRef::new("Person", "phone"),
    ));
}
