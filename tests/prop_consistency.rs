//! Property-based integration tests: for randomly generated mapping sets and queries over the
//! paper's worked-example schema, all evaluation algorithms agree, probabilities stay in range,
//! and top-k is consistent with the exact answer.

use proptest::prelude::Strategy;
use proptest::prelude::*;
use urm::core::testkit;
use urm::core::Strategy as SelectionStrategy;
use urm::matching::{Correspondence, Mapping, MappingSet};
use urm::prelude::*;
use urm::storage::AttrRef;

/// Candidate source attributes for each target attribute of the `Person`/`Order` target schema
/// (mirrors the ambiguity of Figure 1).
const CANDIDATES: &[(&str, &[(&str, &str)])] = &[
    ("pname", &[("Customer", "cname")]),
    (
        "phone",
        &[
            ("Customer", "ophone"),
            ("Customer", "hphone"),
            ("Customer", "mobile"),
        ],
    ),
    ("addr", &[("Customer", "oaddr"), ("Customer", "haddr")]),
    ("nation", &[("Nation", "name"), ("Customer", "nid")]),
    ("price", &[("C_Order", "amount")]),
];

fn arb_mapping(id: usize) -> impl Strategy<Value = Mapping> {
    // For each target attribute choose one of its candidates or leave it unmapped.
    let choices: Vec<_> = CANDIDATES
        .iter()
        .map(|(_, cands)| 0..=cands.len())
        .collect();
    (choices, 1u32..100u32).prop_map(move |(picks, weight)| {
        let mut correspondences = Vec::new();
        for ((target, cands), pick) in CANDIDATES.iter().zip(picks) {
            if pick < cands.len() {
                let (rel, attr) = cands[pick];
                correspondences.push(Correspondence::new(
                    AttrRef::new(rel, attr),
                    AttrRef::new("Person", *target).clone(),
                    0.5,
                ));
            }
        }
        // `price` actually belongs to the Order target relation; fix up the target side.
        let correspondences = correspondences
            .into_iter()
            .map(|c| {
                if c.target.attr == "price" {
                    Correspondence::new(c.source, AttrRef::new("Order", "price"), c.score)
                } else {
                    c
                }
            })
            .collect();
        Mapping::new(id, correspondences, f64::from(weight))
    })
}

fn arb_mapping_set() -> impl Strategy<Value = MappingSet> {
    prop::collection::vec(any::<u8>(), 2..6).prop_flat_map(|seeds| {
        let mappings: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, _)| arb_mapping(i + 1))
            .collect();
        mappings.prop_map(MappingSet::new)
    })
}

fn arb_query() -> impl Strategy<Value = TargetQuery> {
    let phone_values = prop_oneof![Just("123"), Just("456"), Just("789"), Just("555")];
    let addr_values = prop_oneof![Just("aaa"), Just("bbb"), Just("hk")];
    (phone_values, addr_values, 0usize..3).prop_map(|(phone, addr, shape)| match shape {
        0 => TargetQuery::builder("prop-q0")
            .relation("Person")
            .filter_eq("Person.phone", phone)
            .returning(["Person.addr"])
            .build()
            .unwrap(),
        1 => TargetQuery::builder("prop-q1")
            .relation("Person")
            .filter_eq("Person.addr", addr)
            .returning(["Person.phone", "Person.pname"])
            .build()
            .unwrap(),
        _ => TargetQuery::builder("prop-q2")
            .relation("Person")
            .relation("Order")
            .filter_eq("Person.phone", phone)
            .filter_eq("Person.addr", addr)
            .returning(["Person.addr", "Order.price"])
            .build()
            .unwrap(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_algorithms_agree_on_random_inputs(mappings in arb_mapping_set(), query in arb_query()) {
        let catalog = testkit::figure2_catalog();
        prop_assert!((mappings.probability_sum() - 1.0).abs() < 1e-9);
        let reference = evaluate(&query, &mappings, &catalog, Algorithm::Basic).unwrap();
        for algorithm in [
            Algorithm::EBasic,
            Algorithm::EMqo,
            Algorithm::QSharing,
            Algorithm::OSharing(SelectionStrategy::Sef),
            Algorithm::OSharing(SelectionStrategy::Snf),
            Algorithm::OSharing(SelectionStrategy::Random { seed: 3 }),
        ] {
            let eval = evaluate(&query, &mappings, &catalog, algorithm).unwrap();
            prop_assert!(
                reference.answer.approx_eq(&eval.answer, 1e-9),
                "{} disagrees with basic on {query}",
                algorithm.name()
            );
        }
    }

    #[test]
    fn batch_dag_agrees_with_basic_for_any_worker_count(mappings in arb_mapping_set(), query in arb_query()) {
        // The merged batch DAG (the serving layer's execution path) must agree with the
        // sequential algorithms on random inputs, sequentially and with parallel scheduling,
        // and execute each distinct bound operator exactly once.
        let catalog = testkit::figure2_catalog();
        let reference = evaluate(&query, &mappings, &catalog, Algorithm::Basic).unwrap();
        let queries = vec![query.clone(), query.clone()];
        for workers in [1usize, 3] {
            let batch = urm::core::evaluate_batch(
                &queries,
                &mappings,
                &catalog,
                &urm::core::BatchOptions::parallel(workers),
            )
            .unwrap();
            for eval in &batch.evaluations {
                prop_assert!(
                    reference.answer.approx_eq(&eval.answer, 1e-9),
                    "batch (workers={workers}) disagrees with basic on {query}"
                );
            }
            prop_assert_eq!(
                batch.exec.operators_executed + batch.exec.scans,
                batch.dag_nodes as u64,
                "a distinct bound operator executed more than once"
            );
        }
    }

    #[test]
    fn epoch_batches_agree_with_rebuild_for_any_worker_count(mappings in arb_mapping_set(), query in arb_query()) {
        // The per-epoch persistent DAG must answer cold, overlapping and fully warm batches
        // byte-identically to the rebuild-every-batch path, whatever the worker count.
        let catalog = testkit::figure2_catalog();
        for workers in [1usize, 3] {
            let mut epoch = urm::core::EpochDag::new();
            let batches = [
                vec![query.clone()],
                vec![query.clone(), query.clone()], // warm repeat with an in-batch duplicate
            ];
            for batch in &batches {
                let options = urm::core::BatchOptions::parallel(workers);
                let warm = urm::core::evaluate_batch_epoch(
                    batch, &mappings, &catalog, &options, &mut epoch,
                ).unwrap();
                let rebuilt = urm::core::evaluate_batch(batch, &mappings, &catalog, &options).unwrap();
                for (a, b) in warm.evaluations.iter().zip(&rebuilt.evaluations) {
                    let (sa, sb) = (a.answer.sorted(), b.answer.sorted());
                    prop_assert_eq!(sa.len(), sb.len(), "answer sizes diverge (workers={})", workers);
                    for ((t1, p1), (t2, p2)) in sa.iter().zip(&sb) {
                        prop_assert_eq!(t1, t2);
                        prop_assert_eq!(p1.to_bits(), p2.to_bits(), "probabilities not byte-identical");
                    }
                }
            }
            // If the query produced any source queries at all, the second batch was warm:
            // every submission was answered by the bind cache.  (A query may reformulate to
            // nothing when no mapping covers its attributes.)
            if epoch.bind_misses() > 0 {
                prop_assert!(epoch.bind_hits() > 0);
            }
        }
    }

    #[test]
    fn probabilities_are_bounded(mappings in arb_mapping_set(), query in arb_query()) {
        let catalog = testkit::figure2_catalog();
        let eval = evaluate(&query, &mappings, &catalog, Algorithm::QSharing).unwrap();
        for (_, p) in eval.answer.iter() {
            prop_assert!(p > 0.0 && p <= 1.0 + 1e-9, "probability {p} out of range");
        }
        prop_assert!(eval.answer.empty_probability() <= 1.0 + 1e-9);
    }

    #[test]
    fn top_k_is_a_prefix_of_the_exact_ranking(mappings in arb_mapping_set(), query in arb_query()) {
        let catalog = testkit::figure2_catalog();
        let exact = evaluate(&query, &mappings, &catalog, Algorithm::Basic).unwrap();
        let result = top_k(&query, &mappings, &catalog, 2, SelectionStrategy::Sef).unwrap();
        prop_assert!(result.entries.len() <= 2);
        for entry in &result.entries {
            let p = exact.answer.probability_of(&entry.tuple);
            prop_assert!(p > 0.0, "top-k returned a tuple the exact answer does not contain");
            prop_assert!(entry.lower_bound <= p + 1e-9);
            prop_assert!(entry.upper_bound + 1e-9 >= p);
        }
    }

    #[test]
    fn partition_probabilities_form_a_distribution(mappings in arb_mapping_set(), query in arb_query()) {
        let partitions = urm::core::partition::partition_mappings(&query, &mappings).unwrap();
        let total: f64 = partitions.iter().map(|p| p.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Partitions are disjoint and cover every mapping.
        let mut covered: Vec<usize> = partitions.iter().flat_map(|p| p.mapping_indices.clone()).collect();
        covered.sort_unstable();
        let expected: Vec<usize> = (0..mappings.len()).collect();
        prop_assert_eq!(covered, expected);
    }
}
