//! # urm — Uncertain Relational Matching
//!
//! Umbrella crate of the URM workspace: a from-scratch Rust reproduction of
//! *Evaluating Probabilistic Queries over Uncertain Matching* (Cheng, Gong, Cheung, Cheng —
//! ICDE 2012).
//!
//! It re-exports the workspace crates so that examples, integration tests and downstream users
//! can depend on a single crate:
//!
//! * [`storage`] — in-memory relational storage (the source instance `D`);
//! * [`engine`] — relational-algebra plans and the executor;
//! * [`matching`] — correspondences, possible mappings, Hungarian/Murty top-h enumeration;
//! * [`datagen`] — synthetic schemas, data and the paper's workload (Table III);
//! * [`mqo`] — the multi-query-optimization baseline used by e-MQO;
//! * [`core`] — the paper's algorithms: basic, e-basic, e-MQO, q-sharing, o-sharing
//!   (Random/SNF/SEF), probabilistic top-k, and batch evaluation;
//! * [`service`] — the concurrent batch query-serving subsystem (epochs, batching, worker
//!   pool, answer cache) and the `urm-cli` workload-replay binary.
//!
//! See the [`core`] crate documentation for a worked example, and the `examples/` directory for
//! runnable programs.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use urm_core as core;
pub use urm_datagen as datagen;
pub use urm_engine as engine;
pub use urm_matching as matching;
pub use urm_mqo as mqo;
pub use urm_service as service;
pub use urm_storage as storage;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use urm_core::prelude::*;
    pub use urm_datagen::scenario::{Scenario, ScenarioConfig, TargetSchemaKind};
    pub use urm_datagen::workload::{self, QueryId};
    pub use urm_service::{QueryService, ServiceConfig};
}
