//! Probabilistic top-k queries (Section VII, Algorithm 4).
//!
//! A top-k query returns the `k` answer tuples with the highest probabilities without computing
//! exact probabilities for every tuple.  The algorithm walks the same u-trace as o-sharing but
//! maintains, for every candidate tuple, a lower and an upper bound on its probability, plus two
//! global bounds: `LB`, the lower bound of the current k-th best candidate, and `UB`, the
//! probability mass of the e-units not yet visited.  As soon as every non-top candidate's upper
//! bound falls below `LB` and `UB ≤ LB`, the traversal stops.

use crate::algorithms::osharing::{LeafSink, UTraceRunner};
use crate::metrics::EvalMetrics;
use crate::partition::{partition_mappings, representatives};
use crate::query::TargetQuery;
use crate::strategy::Strategy;
use crate::{CoreError, CoreResult};
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use urm_matching::MappingSet;
use urm_storage::{Catalog, Tuple};

/// One candidate answer of a top-k query, with its probability bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKEntry {
    /// The answer tuple.
    pub tuple: Tuple,
    /// Lower bound on its probability (the probability mass already confirmed).
    pub lower_bound: f64,
    /// Upper bound on its probability.
    pub upper_bound: f64,
}

/// Result of a probabilistic top-k evaluation.
#[derive(Debug, Clone)]
pub struct TopKEvaluation {
    /// The top-k entries, ordered by descending lower bound.
    pub entries: Vec<TopKEntry>,
    /// Work and time accounting.
    pub metrics: EvalMetrics,
    /// Whether the traversal stopped before visiting every e-unit.
    pub stopped_early: bool,
}

/// The heap + bound bookkeeping of Algorithm 4 (`decide_result`).
struct TopKSink {
    k: usize,
    candidates: HashMap<Tuple, (f64, f64)>,
    /// Maximum probability any *new* tuple could still reach (mass of unvisited e-units).
    ub_global: f64,
    /// Lower bound of the k-th best candidate.
    lb_global: f64,
    decided: bool,
}

impl TopKSink {
    fn new(k: usize) -> Self {
        TopKSink {
            k,
            candidates: HashMap::new(),
            ub_global: 1.0,
            lb_global: 0.0,
            decided: false,
        }
    }

    fn ranked(&self) -> Vec<(Tuple, f64, f64)> {
        let mut v: Vec<(Tuple, f64, f64)> = self
            .candidates
            .iter()
            .map(|(t, (lb, ub))| (t.clone(), *lb, *ub))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    fn update_bounds_and_check(&mut self) -> bool {
        let ranked = self.ranked();
        // While fewer than k candidates exist, any new tuple could still enter the top-k, so LB
        // must stay at 0 (otherwise genuine answers could be rejected at insertion time).
        self.lb_global = if ranked.len() < self.k {
            0.0
        } else {
            ranked[self.k - 1].1
        };
        // Condition 1: every candidate ranked below k cannot overtake the k-th best.
        let losers_decided = ranked
            .iter()
            .skip(self.k)
            .all(|(_, _, ub)| *ub <= self.lb_global + 1e-12);
        // Condition 2: no unseen tuple can overtake it either.
        let unseen_decided = self.ub_global <= self.lb_global + 1e-12;
        // We also need at least one candidate before declaring victory (k-th best of an empty
        // heap is meaningless).
        self.decided = !ranked.is_empty() && losers_decided && unseen_decided;
        self.decided
    }
}

impl LeafSink for TopKSink {
    fn on_answers(&mut self, tuples: Vec<Tuple>, probability: f64) -> bool {
        let distinct: HashSet<Tuple> = tuples.into_iter().collect();
        for tuple in distinct {
            if let Some(entry) = self.candidates.get_mut(&tuple) {
                entry.0 += probability;
            } else if self.ub_global > self.lb_global {
                // A new candidate: it has `probability` for sure, and could at most also gain
                // every not-yet-visited e-unit's mass (which is still included in ub_global).
                self.candidates.insert(tuple, (probability, self.ub_global));
            }
        }
        self.ub_global -= probability;
        self.update_bounds_and_check()
    }

    fn on_empty(&mut self, probability: f64) -> bool {
        self.ub_global -= probability;
        self.update_bounds_and_check()
    }
}

/// Evaluates a probabilistic top-k query.
///
/// The returned entries are the tuples whose probabilities rank highest; their `lower_bound`
/// values are guaranteed to be correct lower bounds (and equal the exact probabilities whenever
/// the traversal had to visit every e-unit).
pub fn top_k(
    query: &TargetQuery,
    mappings: &MappingSet,
    catalog: &Catalog,
    k: usize,
    strategy: Strategy,
) -> CoreResult<TopKEvaluation> {
    if k == 0 {
        return Err(CoreError::InvalidK);
    }
    let total_start = Instant::now();
    let mut metrics = EvalMetrics::new("top-k");

    let rewrite_start = Instant::now();
    let partitions = partition_mappings(query, mappings)?;
    let reps = representatives(&partitions, mappings);
    metrics.rewrite_time += rewrite_start.elapsed();
    metrics.representative_mappings = reps.len();

    let sink = TopKSink::new(k);
    let mut runner = UTraceRunner::new(query, catalog, reps, strategy, sink);
    runner.run()?;
    metrics.shared_plan_hits = runner.shared_hits();
    metrics.shared_plan_misses = runner.distinct_nodes();
    let (sink, exec_stats, eunits, rewrite_time) = runner.into_parts();

    metrics.exec = exec_stats;
    metrics.eunits = eunits;
    metrics.rewrite_time += rewrite_time;
    metrics.total_time = total_start.elapsed();

    let entries = sink
        .ranked()
        .into_iter()
        .take(k)
        .map(|(tuple, lower_bound, upper_bound)| TopKEntry {
            tuple,
            lower_bound,
            upper_bound,
        })
        .collect();
    Ok(TopKEvaluation {
        entries,
        metrics,
        stopped_early: sink.decided,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::basic;
    use crate::testkit;
    use urm_storage::Value;

    fn tuple(s: &str) -> Tuple {
        Tuple::new(vec![Value::from(s)])
    }

    #[test]
    fn top_1_returns_the_most_probable_answer() {
        // π_phone σ_addr='aaa' Person: 456 has probability 0.8 and is the unique top-1.
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let result = top_k(
            &testkit::basic_example_query(),
            &mappings,
            &catalog,
            1,
            Strategy::Sef,
        )
        .unwrap();
        assert_eq!(result.entries.len(), 1);
        assert_eq!(result.entries[0].tuple, tuple("456"));
        assert!(result.entries[0].lower_bound <= 0.8 + 1e-9);
        assert!(result.entries[0].upper_bound >= result.entries[0].lower_bound);
    }

    #[test]
    fn top_k_agrees_with_exact_evaluation_for_every_k() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let query = testkit::basic_example_query();
        let exact = basic::evaluate(&query, &mappings, &catalog).unwrap();
        let exact_sorted = exact.answer.sorted();
        for k in 1..=3 {
            let result = top_k(&query, &mappings, &catalog, k, Strategy::Sef).unwrap();
            assert_eq!(result.entries.len(), k.min(exact_sorted.len()));
            // The returned tuples are exactly the k most probable ones (no ties here).
            let expected: Vec<&Tuple> = exact_sorted.iter().take(k).map(|(t, _)| t).collect();
            for entry in &result.entries {
                assert!(
                    expected.contains(&&entry.tuple),
                    "unexpected {:?}",
                    entry.tuple
                );
                // Lower bounds never exceed the exact probability.
                let exact_p = exact.answer.probability_of(&entry.tuple);
                assert!(entry.lower_bound <= exact_p + 1e-9);
                assert!(entry.upper_bound + 1e-9 >= exact_p);
            }
        }
    }

    #[test]
    fn bounds_are_ordered() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let result = top_k(&testkit::q0(), &mappings, &catalog, 2, Strategy::Sef).unwrap();
        for e in &result.entries {
            assert!(e.lower_bound <= e.upper_bound + 1e-9);
            assert!(e.lower_bound >= 0.0 && e.upper_bound <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn k_zero_is_rejected() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        assert!(matches!(
            top_k(&testkit::q0(), &mappings, &catalog, 0, Strategy::Sef),
            Err(CoreError::InvalidK)
        ));
    }

    #[test]
    fn large_k_returns_all_answers_without_early_stop_confusion() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let query = testkit::basic_example_query();
        let result = top_k(&query, &mappings, &catalog, 10, Strategy::Sef).unwrap();
        // Only 3 distinct answers exist.
        assert_eq!(result.entries.len(), 3);
        let exact = basic::evaluate(&query, &mappings, &catalog).unwrap();
        for e in &result.entries {
            let p = exact.answer.probability_of(&e.tuple);
            assert!(
                (e.lower_bound - p).abs() < 1e-9,
                "lb should be exact when the whole trace is visited"
            );
        }
    }

    #[test]
    fn works_with_aggregate_queries() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let result = top_k(
            &testkit::count_query(),
            &mappings,
            &catalog,
            1,
            Strategy::Sef,
        )
        .unwrap();
        assert_eq!(result.entries.len(), 1);
        // Counts 1 and 2 both have probability 0.5; the top-1 is one of them.
        let v = result.entries[0].tuple.get(0).unwrap().as_i64().unwrap();
        assert!(v == 1 || v == 2);
    }
}
