//! The `e-MQO` algorithm: distinct source queries evaluated through a shared global plan built
//! by a multi-query optimiser (Section III-B.3).

use crate::answer::ProbabilisticAnswer;
use crate::metrics::{EvalMetrics, Evaluation};
use crate::query::TargetQuery;
use crate::reformulate::{clustered_reformulations, extract_answers};
use crate::CoreResult;
use std::time::Instant;
use urm_engine::{optimize::optimize, DagScheduler, Executor};
use urm_matching::MappingSet;
use urm_mqo::GlobalPlan;
use urm_storage::Catalog;

/// Like `e-basic`, but the distinct source queries are handed to the MQO substrate which builds
/// a single global plan sharing common sub-expressions.  The global plan executes the minimal
/// number of distinct operators, but constructing it is expensive — with many mappings the plan
/// search dominates and e-MQO loses to e-basic end-to-end, exactly as in Figures 10(b)/(c).
pub fn evaluate(
    query: &TargetQuery,
    mappings: &MappingSet,
    catalog: &Catalog,
) -> CoreResult<Evaluation> {
    let total_start = Instant::now();
    let mut metrics = EvalMetrics::new("e-MQO");
    metrics.representative_mappings = mappings.len();
    let mut answer = ProbabilisticAnswer::new();

    // Phase 1: rewrite through every mapping and deduplicate (same as e-basic).
    let rewrite_start = Instant::now();
    let (ordered, empty_probability) = clustered_reformulations(query, mappings, catalog)?;
    metrics.rewrite_time = rewrite_start.elapsed();
    metrics.distinct_source_queries = ordered.len();

    // Phase 2: build the shared global plan (the expensive MQO search).
    let plan_start = Instant::now();
    let optimized: Vec<_> = ordered
        .iter()
        .map(|(sq, _)| optimize(&sq.plan, catalog))
        .collect::<Result<_, _>>()?;
    let global = GlobalPlan::build(&optimized, catalog)?;
    metrics.plan_time = plan_start.elapsed();

    // Phase 3: lower the global plan onto one merged shared-operator DAG and execute it; each
    // distinct operator runs exactly once (the node-dedup report makes that observable).
    let mut exec = Executor::new(catalog);
    let run = global.execute_dag(&mut exec, DagScheduler::sequential())?;
    metrics.shared_plan_hits = run.report.operators_reused;
    metrics.shared_plan_misses = run.report.nodes_executed;
    let results = run.root_results;

    let agg_start = Instant::now();
    for ((sq, probability), result) in ordered.iter().zip(results.iter()) {
        answer.add_distinct(extract_answers(result, &sq.extraction), *probability);
    }
    if empty_probability > 0.0 {
        answer.add_empty(empty_probability);
    }
    metrics.aggregation_time = agg_start.elapsed();

    metrics.exec = exec.into_stats();
    metrics.total_time = total_start.elapsed();
    Ok(Evaluation { answer, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{basic, ebasic};
    use crate::testkit;

    #[test]
    fn emqo_matches_basic_on_every_paper_query() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        for query in [
            testkit::q0(),
            testkit::q1(),
            testkit::basic_example_query(),
            testkit::q2_product(),
            testkit::count_query(),
            testkit::sum_query(),
        ] {
            let a = basic::evaluate(&query, &mappings, &catalog).unwrap();
            let b = evaluate(&query, &mappings, &catalog).unwrap();
            assert!(
                a.answer.approx_eq(&b.answer, 1e-9),
                "answers differ for {}",
                query.name()
            );
        }
    }

    #[test]
    fn emqo_executes_no_more_operators_than_ebasic() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let query = testkit::q2_product();
        let e = ebasic::evaluate(&query, &mappings, &catalog).unwrap();
        let m = evaluate(&query, &mappings, &catalog).unwrap();
        assert!(
            m.metrics.exec.operators_executed <= e.metrics.exec.operators_executed,
            "e-MQO executed {} operators, e-basic {}",
            m.metrics.exec.operators_executed,
            e.metrics.exec.operators_executed
        );
    }
}
