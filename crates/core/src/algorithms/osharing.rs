//! The `o-sharing` algorithm (Sections V and VI, Algorithm 2) and the u-trace runner it shares
//! with the probabilistic top-k algorithm.
//!
//! o-sharing interleaves query rewriting and execution.  Starting from one e-unit containing
//! all representative mappings, it repeatedly: picks the next target operator with the
//! configured strategy (Random / SNF / SEF), partitions the e-unit's mappings by the
//! correspondences that operator needs, reformulates and executes the operator once per
//! partition, and recurses into the resulting child e-units.  Mappings that agree on an
//! operator's correspondences therefore share a single execution of that operator, even when
//! they disagree elsewhere — the sharing q-sharing cannot provide.

use crate::answer::ProbabilisticAnswer;
use crate::eunit::{Component, EUnit};
use crate::metrics::{EvalMetrics, Evaluation};
use crate::partition::{partition_by_attrs, partition_mappings, representatives};
use crate::query::{QueryOutput, TargetOp, TargetPredicate, TargetQuery};
use crate::reformulate::{extract_answers, scan_alias, source_column_for, Extraction};
use crate::strategy::{select_operator, Strategy};
use crate::{CoreError, CoreResult};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};
use urm_engine::{AggFunc, DagExecutor, Executor, Plan, Predicate};
use urm_matching::{Mapping, MappingSet};
use urm_storage::{AttrRef, Catalog, Relation, Schema, Tuple};

/// Receives the answers produced at the leaves of the u-trace.
///
/// The exact evaluation accumulates every leaf; the top-k algorithm maintains probability
/// bounds and can ask the traversal to stop early by returning `true`.
pub(crate) trait LeafSink {
    /// Called with the (already extracted) answer tuples of a completed e-unit and the total
    /// probability of its mappings.  Returns `true` to stop the traversal.
    fn on_answers(&mut self, tuples: Vec<Tuple>, probability: f64) -> bool;
    /// Called when an e-unit can produce no answer tuples (empty intermediate result or an
    /// unmapped attribute).  Returns `true` to stop the traversal.
    fn on_empty(&mut self, probability: f64) -> bool;
}

/// A [`LeafSink`] that simply aggregates every answer (exact evaluation).
pub(crate) struct ExactSink {
    pub answer: ProbabilisticAnswer,
}

impl LeafSink for ExactSink {
    fn on_answers(&mut self, tuples: Vec<Tuple>, probability: f64) -> bool {
        self.answer.add_distinct(tuples, probability);
        false
    }
    fn on_empty(&mut self, probability: f64) -> bool {
        self.answer.add_empty(probability);
        false
    }
}

/// Outcome of executing one operator for one mapping partition.
enum ChildOutcome {
    Child(EUnit),
    Answers(Vec<Tuple>),
    Empty,
}

/// Drives the u-trace: the shared machinery of Algorithm 2 (`run_qt`) and Algorithm 4
/// (`run_qt_topk`).
pub(crate) struct UTraceRunner<'a, S: LeafSink> {
    query: &'a TargetQuery,
    reps: Vec<(Mapping, f64)>,
    strategy: Strategy,
    rng: u64,
    exec: Executor<'a>,
    /// The merged per-step DAG: every operator any e-unit executes is merged into one growing
    /// shared-operator DAG, so sibling e-units (and partitions that agree on an operator's
    /// correspondences) share a single execution of identical bound operators — scans
    /// included — no matter which order the strategy visits them in.
    dag: DagExecutor,
    pub sink: S,
    pub eunits: usize,
    pub rewrite_time: Duration,
}

impl<'a, S: LeafSink> UTraceRunner<'a, S> {
    pub(crate) fn new(
        query: &'a TargetQuery,
        catalog: &'a Catalog,
        reps: Vec<(Mapping, f64)>,
        strategy: Strategy,
        sink: S,
    ) -> Self {
        let rng = match strategy {
            Strategy::Random { seed } => seed.max(1),
            _ => 0x9e37_79b9_7f4a_7c15,
        };
        UTraceRunner {
            query,
            reps,
            strategy,
            rng,
            exec: Executor::new(catalog),
            dag: DagExecutor::new(),
            sink,
            eunits: 0,
            rewrite_time: Duration::ZERO,
        }
    }

    /// Operator requests answered by an already-executed DAG node (cross-e-unit sharing).
    pub(crate) fn shared_hits(&self) -> u64 {
        self.dag.hits()
    }

    /// Distinct operator nodes the u-trace executed (each exactly once).
    pub(crate) fn distinct_nodes(&self) -> u64 {
        self.dag.executed()
    }

    /// Number of representative mappings driving the u-trace.
    pub(crate) fn representative_count(&self) -> usize {
        self.reps.len()
    }

    /// Runs the whole u-trace starting from the initial e-unit.
    pub(crate) fn run(&mut self) -> CoreResult<()> {
        let indices: Vec<usize> = (0..self.reps.len()).collect();
        let probability: f64 = self.reps.iter().map(|(_, p)| *p).sum();
        let root = EUnit::initial(self.query, indices, probability);
        self.run_qt(root)?;
        Ok(())
    }

    /// Consumes the runner, returning the executor statistics.
    pub(crate) fn into_parts(self) -> (S, urm_engine::ExecStats, usize, Duration) {
        (
            self.sink,
            self.exec.into_stats(),
            self.eunits,
            self.rewrite_time,
        )
    }

    /// The recursive evaluation of an e-unit.  Returns `true` if the sink asked to stop.
    fn run_qt(&mut self, u: EUnit) -> CoreResult<bool> {
        self.eunits += 1;

        // Case 2: an empty intermediate relation can never contribute answer tuples; for
        // aggregates we must keep going (COUNT over an empty input is still the answer 0).
        if u.has_empty_component() && !self.query.output().is_aggregate() {
            return Ok(self.sink.on_empty(u.probability));
        }

        let valid = u.valid_operators(self.query);
        if valid.is_empty() {
            // The query is fully executed; answers were emitted when the output operator ran.
            return Ok(false);
        }

        // Operator selection (Section VI-A): partition the e-unit's mappings with respect to
        // each candidate operator and let the strategy choose.
        let weighted: Vec<(Mapping, f64)> = u
            .mapping_indices
            .iter()
            .map(|&i| self.reps[i].clone())
            .collect();
        let rewrite_start = Instant::now();
        let mut candidates = Vec::with_capacity(valid.len());
        for op in &valid {
            let attrs = u.used_attributes(self.query, op);
            candidates.push(partition_by_attrs(self.query, &attrs, &weighted)?);
        }
        let sizes: Vec<Vec<usize>> = candidates
            .iter()
            .map(|parts| parts.iter().map(|p| p.mapping_indices.len()).collect())
            .collect();
        let choice = select_operator(self.strategy, &mut self.rng, &sizes);
        self.rewrite_time += rewrite_start.elapsed();

        let op = valid[choice].clone();
        let mut parts = candidates.swap_remove(choice);
        // Visit high-probability partitions first: harmless for the exact evaluation, crucial
        // for top-k early termination (the paper's Table II walks u2 before u6/u7).
        parts.sort_by(|a, b| b.probability.total_cmp(&a.probability));

        for part in parts {
            let indices: Vec<usize> = part
                .mapping_indices
                .iter()
                .map(|&local| u.mapping_indices[local])
                .collect();
            let probability = part.probability;
            let mapping = self.reps[indices[0]].0.clone();
            match self.execute_op(&u, &op, &mapping, indices, probability)? {
                ChildOutcome::Child(child) => {
                    if self.run_qt(child)? {
                        return Ok(true);
                    }
                }
                ChildOutcome::Answers(tuples) => {
                    if self.sink.on_answers(tuples, probability) {
                        return Ok(true);
                    }
                }
                ChildOutcome::Empty => {
                    if self.sink.on_empty(probability) {
                        return Ok(true);
                    }
                }
            }
        }
        Ok(false)
    }

    /// Reformulates and executes one target operator for one mapping partition
    /// (`reformulate_op` + `run_qs` + `create_qtree` of Algorithm 2).
    fn execute_op(
        &mut self,
        u: &EUnit,
        op: &TargetOp,
        mapping: &Mapping,
        indices: Vec<usize>,
        probability: f64,
    ) -> CoreResult<ChildOutcome> {
        match op {
            TargetOp::Predicate(i) => self.execute_predicate(u, *i, mapping, indices, probability),
            TargetOp::Product {
                left_alias,
                right_alias,
            } => self.execute_product(u, left_alias, right_alias, mapping, indices, probability),
            TargetOp::Output => self.execute_output(u, mapping),
        }
    }

    fn execute_predicate(
        &mut self,
        u: &EUnit,
        index: usize,
        mapping: &Mapping,
        indices: Vec<usize>,
        probability: f64,
    ) -> CoreResult<ChildOutcome> {
        let predicate = &self.query.predicates()[index];
        let (attrs, engine_pred, anchor_alias) = match predicate {
            TargetPredicate::Compare { attr, op, value } => {
                let Some(col) = source_column_for(self.query, mapping, attr)? else {
                    return Ok(ChildOutcome::Empty);
                };
                (
                    vec![attr.clone()],
                    Predicate::compare(col, *op, value.clone()),
                    attr.alias.clone(),
                )
            }
            TargetPredicate::AttrEq { left, right } => {
                let (Some(lcol), Some(rcol)) = (
                    source_column_for(self.query, mapping, left)?,
                    source_column_for(self.query, mapping, right)?,
                ) else {
                    return Ok(ChildOutcome::Empty);
                };
                (
                    vec![left.clone(), right.clone()],
                    Predicate::column_eq(lcol, rcol),
                    left.alias.clone(),
                )
            }
        };
        let ci = u
            .component_of(&anchor_alias)
            .ok_or_else(|| CoreError::InvalidQuery(format!("unbound alias '{anchor_alias}'")))?;
        let (data, scans) = ensure_columns(
            self.query,
            mapping,
            &u.components[ci],
            &attrs,
            &mut self.dag,
            &mut self.exec,
        )?;
        let data = data.expect("predicate attributes are mapped, so at least one scan exists");
        // The DAG keeps the filtered batch behind an `Arc`, so feeding it into the child e-unit
        // (and every operator that later consumes it) is a pointer bump — and a sibling e-unit
        // that needs the *same* selection over the same batch reuses this node outright.
        let filtered = self.dag.run_shared(
            &Plan::values_shared(data).select(engine_pred),
            &mut self.exec,
        )?;

        let mut child = u.clone();
        child.mapping_indices = indices;
        child.probability = probability;
        child.components[ci].data = Some(filtered);
        child.components[ci].scans = scans;
        child.mark_predicate(index);
        Ok(ChildOutcome::Child(child))
    }

    fn execute_product(
        &mut self,
        u: &EUnit,
        left_alias: &str,
        right_alias: &str,
        mapping: &Mapping,
        indices: Vec<usize>,
        probability: f64,
    ) -> CoreResult<ChildOutcome> {
        let li = u
            .component_of(left_alias)
            .ok_or_else(|| CoreError::InvalidQuery(format!("unbound alias '{left_alias}'")))?;
        let ri = u
            .component_of(right_alias)
            .ok_or_else(|| CoreError::InvalidQuery(format!("unbound alias '{right_alias}'")))?;

        // Pending join predicates that connect the two components are folded into the product
        // (the paper's `reorder_op` rearrangement): the product is then executed as a hash
        // equi-join, which keeps every operator ordering feasible even for self-join queries.
        let join_preds = u.spanning_join_predicates(self.query, left_alias, right_alias);
        let mut on: Vec<(String, String)> = Vec::with_capacity(join_preds.len());
        for &pi in &join_preds {
            if let TargetPredicate::AttrEq { left, right } = &self.query.predicates()[pi] {
                let (Some(lcol), Some(rcol)) = (
                    source_column_for(self.query, mapping, left)?,
                    source_column_for(self.query, mapping, right)?,
                ) else {
                    return Ok(ChildOutcome::Empty);
                };
                on.push((lcol, rcol));
            }
        }

        // Each side must expose the join columns that live in it: materialise unmaterialised
        // sides and extend already-materialised ones with the covering relations of the join
        // attributes (reformulation Case 2).
        let side_attrs = |component_index: usize| -> Vec<AttrRef> {
            let comp = &u.components[component_index];
            let mut attrs: Vec<AttrRef> = if comp.data.is_none() {
                comp.aliases
                    .iter()
                    .flat_map(|a| self.query.attributes_of_alias(a))
                    .collect()
            } else {
                Vec::new()
            };
            for &pi in &join_preds {
                if let TargetPredicate::AttrEq { left, right } = &self.query.predicates()[pi] {
                    for a in [left, right] {
                        if comp.aliases.contains(&a.alias) && !attrs.contains(a) {
                            attrs.push(a.clone());
                        }
                    }
                }
            }
            attrs
        };
        let (ldata, lscans) = {
            let attrs = side_attrs(li);
            let (data, scans) = ensure_columns(
                self.query,
                mapping,
                &u.components[li],
                &attrs,
                &mut self.dag,
                &mut self.exec,
            )?;
            (data.unwrap_or_else(|| Arc::new(unit_relation())), scans)
        };
        let (rdata, rscans) = {
            let attrs = side_attrs(ri);
            let (data, scans) = ensure_columns(
                self.query,
                mapping,
                &u.components[ri],
                &attrs,
                &mut self.dag,
                &mut self.exec,
            )?;
            (data.unwrap_or_else(|| Arc::new(unit_relation())), scans)
        };
        let left_plan = Plan::values_shared(ldata);
        let right_plan = Plan::values_shared(rdata);
        let join_plan = if on.is_empty() {
            left_plan.product(right_plan)
        } else {
            left_plan.hash_join(right_plan, on)
        };
        let joined = self.dag.run_shared(&join_plan, &mut self.exec)?;

        let mut child = u.clone();
        child.mapping_indices = indices;
        child.probability = probability;
        child.components[li].scans = lscans;
        child.components[ri].scans = rscans;
        child.merge_components(li, ri, joined);
        for pi in join_preds {
            child.mark_predicate(pi);
        }
        Ok(ChildOutcome::Child(child))
    }

    fn execute_output(&mut self, u: &EUnit, mapping: &Mapping) -> CoreResult<ChildOutcome> {
        let component = &u.components[0];
        match self.query.output() {
            QueryOutput::Count => {
                let (data, _) = materialize_component(
                    self.query,
                    mapping,
                    component,
                    &mut self.dag,
                    &mut self.exec,
                )?;
                let agg = self.dag.run_shared(
                    &Plan::values_shared(data).aggregate(AggFunc::Count),
                    &mut self.exec,
                )?;
                Ok(ChildOutcome::Answers(agg.rows().to_vec()))
            }
            QueryOutput::Sum(attr) => {
                let Some(col) = source_column_for(self.query, mapping, attr)? else {
                    return Ok(ChildOutcome::Empty);
                };
                let (data, _) = ensure_columns(
                    self.query,
                    mapping,
                    component,
                    std::slice::from_ref(attr),
                    &mut self.dag,
                    &mut self.exec,
                )?;
                let data = data.expect("SUM attribute is mapped");
                let agg = self.dag.run_shared(
                    &Plan::values_shared(data).aggregate(AggFunc::Sum(col)),
                    &mut self.exec,
                )?;
                Ok(ChildOutcome::Answers(agg.rows().to_vec()))
            }
            QueryOutput::Tuples(attrs) => {
                let mut cols: Vec<Option<String>> = Vec::with_capacity(attrs.len());
                for attr in attrs {
                    cols.push(source_column_for(self.query, mapping, attr)?);
                }
                let mapped: Vec<AttrRef> = attrs
                    .iter()
                    .zip(&cols)
                    .filter_map(|(a, c)| c.as_ref().map(|_| a.clone()))
                    .collect();
                if mapped.is_empty() {
                    return Ok(ChildOutcome::Empty);
                }
                let (data, _) = ensure_columns(
                    self.query,
                    mapping,
                    component,
                    &mapped,
                    &mut self.dag,
                    &mut self.exec,
                )?;
                let data = data.expect("at least one output attribute is mapped");
                let mut project: Vec<String> = Vec::new();
                for c in cols.iter().flatten() {
                    if !project.contains(c) {
                        project.push(c.clone());
                    }
                }
                let projected = self
                    .dag
                    .run_shared(&Plan::values_shared(data).project(project), &mut self.exec)?;
                let tuples = extract_answers(&projected, &Extraction::Columns(cols));
                Ok(ChildOutcome::Answers(tuples))
            }
        }
    }
}

/// A zero-column, single-row relation: the identity element of the Cartesian product, used when
/// a component has no mapped attributes to materialise.
fn unit_relation() -> Relation {
    Relation::from_validated(Schema::new("unit", Vec::new()), vec![Tuple::empty()])
}

/// The scans folded into a component so far: (scan alias, source relation) pairs.
type ScanSet = BTreeSet<(String, String)>;

/// Ensures the component's materialised data contains the source columns for the given target
/// attributes (reformulation Cases 2/3 of Section VI-B): any covering source relation not yet
/// folded into the component is scanned and multiplied in.
fn ensure_columns(
    query: &TargetQuery,
    mapping: &Mapping,
    component: &Component,
    attrs: &[AttrRef],
    dag: &mut DagExecutor,
    exec: &mut Executor<'_>,
) -> CoreResult<(Option<Arc<Relation>>, ScanSet)> {
    let mut scans = component.scans.clone();
    let mut data = component.data.clone();
    for attr in attrs {
        let schema_attr = query.schema_attr(attr)?;
        let Some(src) = mapping.source_for(&schema_attr) else {
            continue;
        };
        let pair = (scan_alias(&attr.alias, &src.alias), src.alias.clone());
        if scans.contains(&pair) {
            continue;
        }
        // The scan is a zero-copy view of the base relation, and a DAG node: every e-unit of
        // the whole u-trace that pulls in the same (alias, relation) shares one scan execution.
        let scanned = dag.run_shared(&Plan::scan_as(pair.1.clone(), pair.0.clone()), exec)?;
        data = Some(match data {
            None => scanned,
            Some(existing) => dag.run_shared(
                &Plan::values_shared(existing).product(Plan::values_shared(scanned)),
                exec,
            )?,
        });
        scans.insert(pair);
    }
    Ok((data, scans))
}

/// Materialises a component if it has no data yet, folding in the covering relations of every
/// query attribute of its aliases (the operator that pulls a fresh target relation into the
/// execution, e.g. the `Order` side of the paper's Figure 5 product).
fn materialize_component(
    query: &TargetQuery,
    mapping: &Mapping,
    component: &Component,
    dag: &mut DagExecutor,
    exec: &mut Executor<'_>,
) -> CoreResult<(Arc<Relation>, ScanSet)> {
    if let Some(data) = &component.data {
        return Ok((Arc::clone(data), component.scans.clone()));
    }
    let attrs: Vec<AttrRef> = component
        .aliases
        .iter()
        .flat_map(|a| query.attributes_of_alias(a))
        .collect();
    let (data, scans) = ensure_columns(query, mapping, component, &attrs, dag, exec)?;
    Ok((data.unwrap_or_else(|| Arc::new(unit_relation())), scans))
}

/// Evaluates the query with operator-level sharing using the given strategy.
pub fn evaluate(
    query: &TargetQuery,
    mappings: &MappingSet,
    catalog: &Catalog,
    strategy: Strategy,
) -> CoreResult<Evaluation> {
    let total_start = Instant::now();
    let mut metrics = EvalMetrics::new(match strategy {
        Strategy::Random { .. } => "o-sharing(Random)",
        Strategy::Snf => "o-sharing(SNF)",
        Strategy::Sef => "o-sharing(SEF)",
    });

    // Steps 1-2 of Algorithm 2: representative mappings.
    let rewrite_start = Instant::now();
    let partitions = partition_mappings(query, mappings)?;
    let reps = representatives(&partitions, mappings);
    metrics.rewrite_time += rewrite_start.elapsed();
    metrics.representative_mappings = reps.len();

    let sink = ExactSink {
        answer: ProbabilisticAnswer::new(),
    };
    let mut runner = UTraceRunner::new(query, catalog, reps, strategy, sink);
    runner.run()?;
    metrics.distinct_source_queries = runner.representative_count();
    metrics.shared_plan_hits = runner.shared_hits();
    metrics.shared_plan_misses = runner.distinct_nodes();
    let (sink, exec_stats, eunits, rewrite_time) = runner.into_parts();

    metrics.exec = exec_stats;
    metrics.eunits = eunits;
    metrics.rewrite_time += rewrite_time;
    metrics.total_time = total_start.elapsed();
    Ok(Evaluation {
        answer: sink.answer,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{basic, qsharing};
    use crate::testkit;
    use urm_storage::Value;

    fn all_strategies() -> Vec<Strategy> {
        vec![Strategy::Sef, Strategy::Snf, Strategy::Random { seed: 7 }]
    }

    #[test]
    fn osharing_matches_basic_on_every_paper_query_and_strategy() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        for query in [
            testkit::q0(),
            testkit::q1(),
            testkit::basic_example_query(),
            testkit::q2_product(),
            testkit::count_query(),
            testkit::sum_query(),
        ] {
            let reference = basic::evaluate(&query, &mappings, &catalog).unwrap();
            for strategy in all_strategies() {
                let eval = evaluate(&query, &mappings, &catalog, strategy).unwrap();
                assert!(
                    reference.answer.approx_eq(&eval.answer, 1e-9),
                    "answers differ for {} with {strategy}:\nbasic: {}\no-sharing: {}",
                    query.name(),
                    reference.answer,
                    eval.answer
                );
            }
        }
    }

    #[test]
    fn osharing_reproduces_q0() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let eval = evaluate(&testkit::q0(), &mappings, &catalog, Strategy::Sef).unwrap();
        let aaa = Tuple::new(vec![Value::from("aaa")]);
        let hk = Tuple::new(vec![Value::from("hk")]);
        assert!((eval.answer.probability_of(&aaa) - 0.5).abs() < 1e-9);
        assert!((eval.answer.probability_of(&hk) - 0.5).abs() < 1e-9);
        assert!(eval.metrics.eunits > 1);
    }

    #[test]
    fn osharing_executes_fewer_operators_than_unshared_evaluation() {
        // Historically this compared o-sharing against q-sharing, which had *no* sharing below
        // query granularity.  Since every algorithm now lowers onto the shared-operator DAG,
        // q-sharing dedups bound sub-plans across representatives too, so the meaningful
        // baseline for the Table IV comparison is e-basic (distinct queries, no sub-plan
        // sharing); o-sharing must still execute fewer source operators than it.
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let query = testkit::q2_product();
        let e = crate::algorithms::ebasic::evaluate(&query, &mappings, &catalog).unwrap();
        let o = evaluate(&query, &mappings, &catalog, Strategy::Sef).unwrap();
        assert!(
            o.metrics.source_operators() <= e.metrics.source_operators(),
            "o-sharing executed {} source operators, e-basic {}",
            o.metrics.source_operators(),
            e.metrics.source_operators()
        );
        // And q-sharing's DAG lowering genuinely shares below query granularity now.
        let q = qsharing::evaluate(&query, &mappings, &catalog).unwrap();
        assert!(
            q.metrics.shared_plan_hits > 0,
            "q-sharing found no shared bound sub-plans across representatives"
        );
        assert_eq!(
            q.metrics.source_operators(),
            q.metrics.shared_plan_misses,
            "each distinct bound operator of the q-sharing DAG executes exactly once"
        );
    }

    #[test]
    fn sef_does_not_execute_more_operators_than_random() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let query = testkit::q2_product();
        let sef = evaluate(&query, &mappings, &catalog, Strategy::Sef).unwrap();
        let random = evaluate(&query, &mappings, &catalog, Strategy::Random { seed: 3 }).unwrap();
        assert!(sef.metrics.source_operators() <= random.metrics.source_operators());
    }

    #[test]
    fn osharing_scans_are_shared_views_not_copies() {
        // Every row a scan or a shared `Values` leaf hands to the u-trace is accounted as a
        // shared view; a regression that reintroduces per-operator relation copies would show
        // up as `rows_shared` falling behind the scan output.
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let eval = evaluate(&testkit::q2_product(), &mappings, &catalog, Strategy::Sef).unwrap();
        assert!(
            eval.metrics.exec.rows_shared > 0,
            "o-sharing must execute through the zero-copy physical path"
        );
        assert!(eval.metrics.exec.scans > 0);
    }

    #[test]
    fn eunit_count_grows_with_partitions() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let eval = evaluate(&testkit::q0(), &mappings, &catalog, Strategy::Sef).unwrap();
        // q0 has 3 representative mappings; the u-trace has at least root + leaves.
        assert!(eval.metrics.eunits >= 3);
        assert_eq!(eval.metrics.representative_mappings, 3);
    }
}
