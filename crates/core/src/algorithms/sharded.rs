//! Scatter-gather sharded batch evaluation: one batch fanned out over N shard runtimes.
//!
//! The paper's sharing machinery deduplicates work *within* one catalog; this module adds the
//! scatter-gather dimension on top.  A [`ShardSet`] holds N shard runtimes, each owning a
//! private [`EpochDag`] over a *shard catalog*: an `Arc`-shared replica of every base relation
//! (a catalog clone — zero copy) **plus** shard `i`'s slice of every base relation under a
//! `{name}::slice` alias (see [`urm_storage::shard`]).  [`evaluate_batch_sharded`] then routes
//! each distinct reformulation root one of two ways:
//!
//! * **Scatter** (tuple-producing roots, [`Extraction::Columns`]): exactly one scan leaf — the
//!   largest base relation in the plan, deterministically chosen — is redirected to the shared
//!   slice name, and the rewritten plan (identical on every shard, so fingerprints and the
//!   per-shard bind caches line up) is submitted to **all** shards.  Each derivation of the
//!   original plan consumes exactly one row of the sliced scan, so the per-shard result sets
//!   partition the single-node result set; the gather phase concatenates them.
//! * **Singleton** (aggregate roots, [`Extraction::Raw`]): a COUNT/SUM result cannot be merged
//!   from partial relations, so the *unmodified* plan runs on one shard (picked by plan
//!   fingerprint) against that shard's full replicas — exactly the single-node execution.
//!
//! Shards bind and execute **in parallel** (one scoped thread each, every shard running its
//! own prepared batch through its own executor and spill pool).  The gather phase feeds each
//! root's reassembled tuple set through the *same* probability aggregation as
//! [`batch`](crate::algorithms::batch) — roots in the same clustered order, one
//! `add_distinct` per root — so sharded answers are **byte-identical** to the single-node
//! service in canonical [`ProbabilisticAnswer::sorted`] order (property-tested for shard
//! counts 1–4, with and without per-shard memory budgets).

use crate::algorithms::batch::{BatchEvaluation, BatchOptions};
use crate::answer::ProbabilisticAnswer;
use crate::metrics::{EvalMetrics, Evaluation};
use crate::query::TargetQuery;
use crate::reformulate::{clustered_reformulations, extract_answers, Extraction};
use crate::CoreResult;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use urm_engine::optimize::{fingerprint, optimize};
use urm_engine::{
    CardinalityStore, EpochDag, ExecStats, Executor, Observed, Plan, DEFAULT_PIN_BUDGET_BYTES,
};
use urm_matching::MappingSet;
use urm_storage::shard::{partition, ShardScheme};
use urm_storage::Catalog;

/// The relation name shard catalogs register slice `i` of `base` under.
///
/// Deliberately shard-*independent*: the rewritten scatter plan is textually identical on
/// every shard, so its fingerprint — and with it bind-cache hits and DAG node sharing — is
/// too.  `::` cannot occur in generated relation names, so slices never collide with bases.
#[must_use]
pub fn slice_relation_name(base: &str) -> String {
    format!("{base}::slice")
}

/// One shard's runtime: its catalog view (replicas + slices) and its private epoch DAG.
#[derive(Debug)]
struct ShardRuntime {
    catalog: Catalog,
    dag: Mutex<EpochDag>,
}

/// N shard runtimes cut from one coordinator catalog, ready for scatter-gather batches.
#[derive(Debug)]
pub struct ShardSet {
    shards: Vec<ShardRuntime>,
    scheme: ShardScheme,
}

impl ShardSet {
    /// Builds `shards` runtimes over `catalog`.
    ///
    /// Every shard catalog shares the coordinator's base row buffers (catalog clones are
    /// `Arc`-shared) and adds its own slice of each relation; `memory_budget` (bytes,
    /// **per shard**) puts each shard's epoch DAG under its own spill pool, mirroring the
    /// unsharded service's `--memory-budget`.
    #[must_use]
    pub fn new(
        catalog: &Catalog,
        shards: usize,
        scheme: ShardScheme,
        memory_budget: Option<usize>,
    ) -> ShardSet {
        let shards = shards.max(1);
        let mut catalogs: Vec<Catalog> = (0..shards).map(|_| catalog.clone()).collect();
        for (name, relation) in catalog.iter() {
            let slice_name = slice_relation_name(name);
            for (view, slice) in catalogs.iter_mut().zip(partition(relation, shards, scheme)) {
                view.insert(slice.renamed(slice_name.clone()));
            }
        }
        ShardSet {
            shards: catalogs
                .into_iter()
                .map(|catalog| ShardRuntime {
                    catalog,
                    dag: Mutex::new(match memory_budget {
                        Some(bytes) => EpochDag::with_memory_budget(bytes),
                        None => EpochDag::with_pin_budget(DEFAULT_PIN_BUDGET_BYTES),
                    }),
                })
                .collect(),
            scheme,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the set holds no shards (never true: construction clamps to ≥ 1).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The partitioning scheme the shard catalogs were cut with.
    #[must_use]
    pub fn scheme(&self) -> ShardScheme {
        self.scheme
    }

    /// Seeds every shard's cardinality store with carried-over observations (see
    /// [`CardinalityStore::absorb`]); fingerprints a shard never binds are harmless no-ops.
    pub fn seed_cardinalities(&self, entries: &[(u64, Observed)]) {
        for shard in &self.shards {
            shard.dag.lock().unwrap().cardinalities().absorb(entries);
        }
    }

    /// Every shard's observations folded into one snapshot, for carry-over past retirement.
    #[must_use]
    pub fn snapshot_cardinalities(&self) -> Vec<(u64, Observed)> {
        let folded = CardinalityStore::new();
        for shard in &self.shards {
            folded.absorb(&shard.dag.lock().unwrap().cardinalities().snapshot());
        }
        folded.snapshot()
    }
}

/// Scatter-gather accounting of one sharded batch.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Number of shards the batch ran over.
    pub shards: usize,
    /// Per-shard work dispatches: scatter roots count once per shard, singletons once.
    pub fanouts: u64,
    /// Roots fanned out to every shard (tuple-producing plans with a sliced scan).
    pub scatter_roots: u64,
    /// Roots routed whole to a single shard (aggregates).
    pub singleton_roots: u64,
    /// Per-shard wall clock (bind + execute), index = shard index.
    pub shard_times: Vec<Duration>,
    /// Time spent reassembling per-shard results into per-query answers.
    pub merge_time: Duration,
}

/// A [`BatchEvaluation`] produced by the scatter-gather path, plus its shard accounting.
#[derive(Debug)]
pub struct ShardedBatchEvaluation {
    /// The batch outcome with work counters aggregated across all shards.
    pub batch: BatchEvaluation,
    /// Scatter/gather accounting.
    pub shards: ShardStats,
}

/// How one reformulation root reaches the shards.
enum RootRoute {
    /// Submitted to every shard; `indices[s]` is the root's slot in shard `s`'s results.
    Scatter { indices: Vec<usize> },
    /// Submitted unmodified to one shard.
    Single { shard: usize, index: usize },
}

/// Scan leaves of a plan in deterministic (depth-first, left-to-right) traversal order.
fn scan_leaves(plan: &Plan, out: &mut Vec<(String, String)>) {
    if let Plan::Scan { relation, alias } = plan {
        out.push((relation.clone(), alias.clone()));
    }
    for child in plan.children() {
        scan_leaves(child, out);
    }
}

/// Rebuilds `plan` with its `target`-th scan leaf (traversal order) redirected to `slice`.
fn redirect_scan(plan: &Plan, target: usize, seen: &mut usize, slice: &str) -> Plan {
    match plan {
        Plan::Scan { relation, alias } => {
            let here = *seen;
            *seen += 1;
            if here == target {
                Plan::scan_as(slice, alias.clone())
            } else {
                Plan::scan_as(relation.clone(), alias.clone())
            }
        }
        Plan::Values(rel) => Plan::Values(rel.clone()),
        Plan::Select { predicate, input } => Plan::Select {
            predicate: predicate.clone(),
            input: Box::new(redirect_scan(input, target, seen, slice)),
        },
        Plan::Project { columns, input } => Plan::Project {
            columns: columns.clone(),
            input: Box::new(redirect_scan(input, target, seen, slice)),
        },
        Plan::Product { left, right } => Plan::Product {
            left: Box::new(redirect_scan(left, target, seen, slice)),
            right: Box::new(redirect_scan(right, target, seen, slice)),
        },
        Plan::HashJoin { left, right, on } => Plan::HashJoin {
            left: Box::new(redirect_scan(left, target, seen, slice)),
            right: Box::new(redirect_scan(right, target, seen, slice)),
            on: on.clone(),
        },
        Plan::Aggregate { func, input } => Plan::Aggregate {
            func: func.clone(),
            input: Box::new(redirect_scan(input, target, seen, slice)),
        },
    }
}

/// Picks the scan leaf to slice: the one over the largest base relation (coordinator row
/// counts; ties broken by traversal order, so the choice — and with it the rewritten plan —
/// is identical on every shard and across runs).  `None` when the plan scans nothing.
fn designate_slice_leaf(plan: &Plan, catalog: &Catalog) -> Option<(usize, String)> {
    let mut leaves = Vec::new();
    scan_leaves(plan, &mut leaves);
    let mut best: Option<(usize, String, usize)> = None;
    for (index, (relation, _)) in leaves.iter().enumerate() {
        let Some(rel) = catalog.get(relation) else {
            continue;
        };
        let rows = rel.len();
        if best.as_ref().is_none_or(|(_, _, top)| rows > *top) {
            best = Some((index, relation.clone(), rows));
        }
    }
    best.map(|(index, relation, _)| (index, relation))
}

/// One shard's execution outcome, gathered by the coordinator.
struct ShardOutcome {
    results: Vec<std::sync::Arc<urm_storage::Relation>>,
    exec: ExecStats,
    plan_hits: u64,
    plan_misses: u64,
    dag_nodes: u64,
    peak_parallelism: usize,
    epoch_bind_hits: u64,
    epoch_results_reused: u64,
    observed_nodes: u64,
    reordered_joins: u64,
    elapsed: Duration,
}

/// Binds and executes one shard's submissions on its own DAG, entirely on the calling thread.
fn run_shard(
    shard: &ShardRuntime,
    index: usize,
    submissions: &[(u64, Plan)],
    options: &BatchOptions,
    workers: usize,
) -> CoreResult<ShardOutcome> {
    let start = Instant::now();
    // Covers the shard's whole bind + execute slice; runs on the scatter thread, so it parents
    // to the coordinator's `scatter` span via the anchor.
    let mut shard_span = options.tracer.span("shard_execute");
    shard_span.tag("shard", index as u64);
    shard_span.tag("submissions", submissions.len() as u64);
    let mut dag = shard.dag.lock().unwrap();
    dag.set_adaptive(options.adaptive);
    let bind_exec = Executor::new(&shard.catalog);
    let reused_before = dag.dag().operators_reused();
    let nodes_before = dag.dag().node_count();
    for (key, plan) in submissions {
        let submitted = dag.submit_with(*key, || {
            let optimized = optimize(plan, &shard.catalog)?;
            bind_exec.bind(&optimized)
        });
        if let Err(err) = submitted {
            dag.abort_pending();
            return Err(err.into());
        }
    }
    let plan_hits = dag.dag().operators_reused() - reused_before;
    let plan_misses = (dag.dag().node_count() - nodes_before) as u64;
    let prepared = dag.prepare_pending();
    drop(dag);

    let mut exec = match prepared.pool().cloned() {
        Some(pool) => Executor::with_pool(&shard.catalog, pool),
        None => Executor::new(&shard.catalog),
    }
    .with_columnar(options.columnar)
    .with_tracer(options.tracer.clone());
    let run = prepared.execute(&mut exec, workers)?;
    for _ in 0..run.root_results.len() {
        exec.stats_mut().record_source_query();
    }
    Ok(ShardOutcome {
        results: run.root_results,
        exec: exec.into_stats(),
        plan_hits: plan_hits + run.report.bind_hits,
        plan_misses,
        dag_nodes: run.report.nodes_executed,
        peak_parallelism: run.report.peak_parallelism,
        epoch_bind_hits: run.report.bind_hits,
        epoch_results_reused: run.report.results_reused,
        observed_nodes: run.report.observed_nodes,
        reordered_joins: run.report.reordered_joins,
        elapsed: start.elapsed(),
    })
}

/// Per-query bookkeeping between routing and gather.
struct PendingQuery {
    /// (route index, probability, extraction) per distinct reformulation, clustered order.
    roots: Vec<(usize, f64, Extraction)>,
    empty_probability: f64,
    metrics: EvalMetrics,
    started: Instant,
}

/// Evaluates a batch over a [`ShardSet`]: reformulate once on the coordinator, scatter the
/// roots, bind + execute every shard in parallel, gather byte-identical answers (module docs).
///
/// `catalog` must be the coordinator catalog the set was built from (reformulation and slice
/// designation read it; shards read their own views).  `options.workers` is split across the
/// shards — each shard's DAG scheduler gets `max(1, workers / shards)` threads, so a sharded
/// batch never oversubscribes relative to its unsharded twin.
pub fn evaluate_batch_sharded(
    queries: &[TargetQuery],
    mappings: &MappingSet,
    catalog: &Catalog,
    options: &BatchOptions,
    set: &ShardSet,
) -> CoreResult<ShardedBatchEvaluation> {
    let shard_count = set.len();
    let per_shard_workers = (options.workers / shard_count.max(1)).max(1);

    // Coordinator phase: reformulate every query, route every root, build the per-shard
    // submission lists.  No shard locks are held yet.
    let mut pending: Vec<PendingQuery> = Vec::with_capacity(queries.len());
    let mut routes: Vec<RootRoute> = Vec::new();
    let mut submissions: Vec<Vec<(u64, Plan)>> = vec![Vec::new(); shard_count];
    let (mut scatter_roots, mut singleton_roots) = (0u64, 0u64);
    for query in queries {
        let started = Instant::now();
        let mut metrics = EvalMetrics::new("sharded-batch");
        metrics.representative_mappings = mappings.len();

        let rewrite_start = Instant::now();
        let (ordered, empty_probability) = clustered_reformulations(query, mappings, catalog)?;
        metrics.rewrite_time = rewrite_start.elapsed();
        metrics.distinct_source_queries = ordered.len();

        let plan_start = Instant::now();
        let mut roots = Vec::with_capacity(ordered.len());
        for (sq, probability) in ordered {
            let scatterable = matches!(sq.extraction, Extraction::Columns(_));
            let route = match designate_slice_leaf(&sq.plan, catalog) {
                Some((leaf, base)) if scatterable => {
                    let slice = slice_relation_name(&base);
                    let rewritten = redirect_scan(&sq.plan, leaf, &mut 0, &slice);
                    let key = fingerprint(&rewritten);
                    let indices = submissions
                        .iter_mut()
                        .map(|subs| {
                            subs.push((key, rewritten.clone()));
                            subs.len() - 1
                        })
                        .collect();
                    scatter_roots += 1;
                    RootRoute::Scatter { indices }
                }
                _ => {
                    // Aggregates (and scanless plans) run whole on one shard's full replicas.
                    let key = fingerprint(&sq.plan);
                    let shard = (key % shard_count as u64) as usize;
                    submissions[shard].push((key, sq.plan));
                    singleton_roots += 1;
                    RootRoute::Single {
                        shard,
                        index: submissions[shard].len() - 1,
                    }
                }
            };
            roots.push((routes.len(), probability, sq.extraction));
            routes.push(route);
        }
        metrics.plan_time = plan_start.elapsed();

        pending.push(PendingQuery {
            roots,
            empty_probability,
            metrics,
            started,
        });
    }

    // Scatter phase: every shard binds and executes its submissions concurrently.  The shard
    // threads (and their DAG workers) start with empty span stacks, so anchor them under one
    // `scatter` span for the fan-out's duration.
    let mut scatter_span = options.tracer.span("scatter");
    scatter_span.tag("shards", shard_count as u64);
    scatter_span.tag("scatter_roots", scatter_roots);
    scatter_span.tag("singleton_roots", singleton_roots);
    options.tracer.set_anchor(scatter_span.id());
    let outcomes: Vec<CoreResult<ShardOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = set
            .shards
            .iter()
            .enumerate()
            .zip(&submissions)
            .map(|((index, shard), subs)| {
                scope.spawn(move || run_shard(shard, index, subs, options, per_shard_workers))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    options.tracer.clear_anchor();
    drop(scatter_span);
    let mut shards_done = Vec::with_capacity(shard_count);
    for outcome in outcomes {
        shards_done.push(outcome?);
    }

    // Gather phase: reassemble each root's tuple set and aggregate exactly as the unsharded
    // batch does — same clustered root order, one `add_distinct` per root, empty mass last —
    // so the per-tuple probability sums accumulate in the same order, bit for bit.
    let merge_start = Instant::now();
    let gather_span = options.tracer.span("gather");
    let mut evaluations = Vec::with_capacity(pending.len());
    for mut query in pending {
        let agg_start = Instant::now();
        let mut answer = ProbabilisticAnswer::new();
        for (route, probability, extraction) in &query.roots {
            match &routes[*route] {
                RootRoute::Scatter { indices } => {
                    let mut tuples = Vec::new();
                    for (shard, index) in shards_done.iter().zip(indices) {
                        tuples.extend(extract_answers(&shard.results[*index], extraction));
                    }
                    answer.add_distinct(tuples, *probability);
                }
                RootRoute::Single { shard, index } => {
                    let tuples = extract_answers(&shards_done[*shard].results[*index], extraction);
                    answer.add_distinct(tuples, *probability);
                }
            }
        }
        if query.empty_probability > 0.0 {
            answer.add_empty(query.empty_probability);
        }
        query.metrics.aggregation_time = agg_start.elapsed();
        query.metrics.total_time = query.started.elapsed();
        evaluations.push(Evaluation {
            answer,
            metrics: query.metrics,
        });
    }
    drop(gather_span);
    let merge_time = merge_start.elapsed();

    // Aggregate the per-shard work counters; shards ran concurrently, so peak parallelism
    // sums across them.
    let mut exec = ExecStats::new();
    for shard in &shards_done {
        exec.merge(&shard.exec);
    }
    let batch = BatchEvaluation {
        evaluations,
        plan_hits: shards_done.iter().map(|s| s.plan_hits).sum(),
        plan_misses: shards_done.iter().map(|s| s.plan_misses).sum(),
        exec,
        dag_nodes: shards_done.iter().map(|s| s.dag_nodes).sum::<u64>() as usize,
        peak_parallelism: shards_done.iter().map(|s| s.peak_parallelism).sum(),
        workers: options.workers.max(1),
        epoch_bind_hits: shards_done.iter().map(|s| s.epoch_bind_hits).sum(),
        epoch_results_reused: shards_done.iter().map(|s| s.epoch_results_reused).sum(),
        observed_nodes: shards_done.iter().map(|s| s.observed_nodes).sum(),
        reordered_joins: shards_done.iter().map(|s| s.reordered_joins).sum(),
    };
    Ok(ShardedBatchEvaluation {
        batch,
        shards: ShardStats {
            shards: shard_count,
            fanouts: scatter_roots * shard_count as u64 + singleton_roots,
            scatter_roots,
            singleton_roots,
            shard_times: shards_done.iter().map(|s| s.elapsed).collect(),
            merge_time,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::batch::evaluate_batch;
    use crate::testkit;

    fn paper_queries() -> Vec<TargetQuery> {
        vec![
            testkit::q0(),
            testkit::q1(),
            testkit::basic_example_query(),
            testkit::q2_product(),
            testkit::count_query(),
            testkit::sum_query(),
        ]
    }

    fn assert_bit_identical(a: &ProbabilisticAnswer, b: &ProbabilisticAnswer, context: &str) {
        let (sa, sb) = (a.sorted(), b.sorted());
        assert_eq!(sa.len(), sb.len(), "{context}: answer cardinality");
        for ((t1, p1), (t2, p2)) in sa.iter().zip(&sb) {
            assert_eq!(t1, t2, "{context}: tuples");
            assert_eq!(p1.to_bits(), p2.to_bits(), "{context}: probabilities");
        }
    }

    #[test]
    fn sharded_answers_are_byte_identical_to_unsharded() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = paper_queries();
        let single =
            evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::sequential()).unwrap();
        for shards in 1..=4 {
            for scheme in [ShardScheme::Hash, ShardScheme::Range] {
                let set = ShardSet::new(&catalog, shards, scheme, None);
                let sharded = evaluate_batch_sharded(
                    &queries,
                    &mappings,
                    &catalog,
                    &BatchOptions::parallel(4),
                    &set,
                )
                .unwrap();
                assert_eq!(sharded.batch.evaluations.len(), queries.len());
                for ((query, a), b) in queries
                    .iter()
                    .zip(&single.evaluations)
                    .zip(&sharded.batch.evaluations)
                {
                    assert_bit_identical(
                        &a.answer,
                        &b.answer,
                        &format!("{} × {shards} {scheme} shards", query.name()),
                    );
                }
            }
        }
    }

    #[test]
    fn warm_sharded_batches_stay_identical_and_reuse_results() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = paper_queries();
        let single =
            evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::sequential()).unwrap();
        let set = ShardSet::new(&catalog, 3, ShardScheme::Hash, None);
        let options = BatchOptions::parallel(3);
        let cold = evaluate_batch_sharded(&queries, &mappings, &catalog, &options, &set).unwrap();
        let warm = evaluate_batch_sharded(&queries, &mappings, &catalog, &options, &set).unwrap();
        assert!(warm.batch.epoch_bind_hits > 0, "warm batch must hit caches");
        assert!(warm.batch.epoch_results_reused > 0);
        for (a, b) in cold
            .batch
            .evaluations
            .iter()
            .zip(&single.evaluations)
            .map(|(x, y)| (&x.answer, &y.answer))
        {
            assert_bit_identical(a, b, "cold");
        }
        for (a, b) in warm
            .batch
            .evaluations
            .iter()
            .zip(&single.evaluations)
            .map(|(x, y)| (&x.answer, &y.answer))
        {
            assert_bit_identical(a, b, "warm");
        }
    }

    #[test]
    fn memory_budgeted_shards_stay_identical() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = paper_queries();
        let single =
            evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::sequential()).unwrap();
        let set = ShardSet::new(&catalog, 2, ShardScheme::Hash, Some(0));
        for round in 0..2 {
            let sharded = evaluate_batch_sharded(
                &queries,
                &mappings,
                &catalog,
                &BatchOptions::sequential(),
                &set,
            )
            .unwrap();
            for (a, b) in sharded
                .batch
                .evaluations
                .iter()
                .zip(&single.evaluations)
                .map(|(x, y)| (&x.answer, &y.answer))
            {
                assert_bit_identical(a, b, &format!("budgeted round {round}"));
            }
        }
    }

    #[test]
    fn routing_classifies_aggregates_as_singletons() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let set = ShardSet::new(&catalog, 4, ShardScheme::Hash, None);
        let tuples = evaluate_batch_sharded(
            &[testkit::q0()],
            &mappings,
            &catalog,
            &BatchOptions::sequential(),
            &set,
        )
        .unwrap();
        assert!(tuples.shards.scatter_roots > 0);
        assert_eq!(tuples.shards.singleton_roots, 0);
        assert_eq!(
            tuples.shards.fanouts,
            tuples.shards.scatter_roots * 4,
            "every scatter root must reach every shard"
        );
        let aggregates = evaluate_batch_sharded(
            &[testkit::count_query()],
            &mappings,
            &catalog,
            &BatchOptions::sequential(),
            &set,
        )
        .unwrap();
        assert!(aggregates.shards.singleton_roots > 0);
        assert_eq!(aggregates.shards.scatter_roots, 0);
        assert_eq!(aggregates.shards.shard_times.len(), 4);
    }

    #[test]
    fn cardinality_seed_and_snapshot_round_trip() {
        let catalog = testkit::figure2_catalog();
        let set = ShardSet::new(&catalog, 2, ShardScheme::Hash, None);
        assert!(set.snapshot_cardinalities().is_empty());
        let seed = vec![(
            7u64,
            Observed {
                rows: 10.0,
                bytes: 100.0,
                nanos: 1000.0,
                samples: 1,
            },
        )];
        set.seed_cardinalities(&seed);
        let snap = set.snapshot_cardinalities();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, 7);
        assert!(snap[0].1.samples >= 1);
    }

    #[test]
    fn slice_names_cannot_collide_with_bases() {
        assert_eq!(slice_relation_name("Orders"), "Orders::slice");
        let catalog = testkit::figure2_catalog();
        let set = ShardSet::new(&catalog, 2, ShardScheme::Range, None);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.scheme(), ShardScheme::Range);
        for shard in &set.shards {
            // Each shard sees every base (full replica) and every slice.
            assert_eq!(shard.catalog.len(), catalog.len() * 2);
        }
    }
}
