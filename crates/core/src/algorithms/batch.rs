//! Batch evaluation: many probabilistic queries over one mapping set, lowered onto a single
//! merged shared-operator DAG.
//!
//! The paper evaluates sharing *within* one probabilistic query (its `h` reformulations).  A
//! serving layer gets a second amortisation axis: independent queries submitted concurrently
//! against the same (catalog, mapping set) epoch overlap heavily — they scan the same source
//! relations and, with ambiguous matchings, frequently reformulate onto identical source
//! sub-plans.  [`evaluate_batch`] therefore binds the distinct source queries of *every* query
//! in the batch and merges them into one [`OperatorDag`]: each distinct bound operator
//! (deduplicated by bound-plan fingerprint) becomes one node, shared sub-plans become fan-out
//! edges, and the [`DagScheduler`] executes every node **exactly once** — sequentially, or on
//! parallel worker threads when [`BatchOptions::workers`] ≥ 2 (independent operators of
//! different queries run concurrently; results are byte-identical either way).
//!
//! Per-query aggregation is unchanged from `e-basic` — each query's answer is the
//! probability-weighted union of its distinct reformulations — so batch answers agree with
//! every sequential algorithm (the service integration tests verify this).
//!
//! Batches run on an [`EpochDag`]: [`evaluate_batch`] builds a throwaway one (the
//! rebuild-every-batch shape), while the serving layer keeps one epoch DAG alive per
//! registered epoch and calls [`evaluate_batch_epoch`], so a hot epoch's later batches skip
//! re-optimising, rebinding and re-executing every source query the epoch has seen whose
//! result is still materialised — byte-identical answers either way (property-tested).

use crate::answer::ProbabilisticAnswer;
use crate::metrics::{EvalMetrics, Evaluation};
use crate::query::TargetQuery;
use crate::reformulate::{clustered_reformulations, extract_answers, Extraction};
use crate::CoreResult;
use std::time::Instant;
use urm_engine::optimize::{fingerprint, optimize};
use urm_engine::{EpochDag, ExecStats, Executor, PreparedBatch};
use urm_matching::MappingSet;
use urm_obs::Tracer;
use urm_storage::{BufferPool, Catalog};

/// Tuning knobs of one batch evaluation.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads for the DAG scheduler (1 = sequential topological execution).
    pub workers: usize,
    /// Whether executors evaluate through the vectorized columnar kernels (the default;
    /// answers are byte-identical either way).
    pub columnar: bool,
    /// Whether the epoch's adaptive-execution loop is on (the default): observed cardinalities
    /// feed back into scheduler priorities, hash-join build sides and grace-join sizing.
    /// Answers are byte-identical either way.
    pub adaptive: bool,
    /// Trace spans recorder (disabled by default — a disabled tracer costs nothing on the
    /// hot path).  Execution-side spans (`execute`, per-DAG-node `node`, spill I/O) hang off
    /// this; the bind side takes it separately via [`prepare_batch_epoch_traced`].
    pub tracer: Tracer,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            workers: 1,
            columnar: true,
            adaptive: true,
            tracer: Tracer::disabled(),
        }
    }
}

impl BatchOptions {
    /// Sequential execution (the scheduler walks the topological order on the calling thread).
    #[must_use]
    pub fn sequential() -> Self {
        BatchOptions::default()
    }

    /// Parallel execution over `workers` scoped threads (clamped to at least 1).
    #[must_use]
    pub fn parallel(workers: usize) -> Self {
        BatchOptions {
            workers: workers.max(1),
            ..BatchOptions::default()
        }
    }

    /// Builder-style toggle for the vectorized columnar path.
    #[must_use]
    pub fn with_columnar(mut self, on: bool) -> Self {
        self.columnar = on;
        self
    }

    /// Builder-style toggle for the adaptive-execution feedback loop.
    #[must_use]
    pub fn with_adaptive(mut self, on: bool) -> Self {
        self.adaptive = on;
        self
    }

    /// Builder-style tracer attachment (disabled tracers are free — pass one unconditionally).
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }
}

/// The outcome of one batch evaluation.
#[derive(Debug)]
pub struct BatchEvaluation {
    /// One evaluation per input query, in input order.  Per-query `metrics.exec` is empty —
    /// shared DAG nodes belong to several queries at once, so executor work is accounted
    /// batch-wide in [`exec`](BatchEvaluation::exec) instead.
    pub evaluations: Vec<Evaluation>,
    /// Source-query submissions this batch answered without new plan work: operator insertions
    /// deduplicated onto existing DAG nodes plus whole plans answered by the epoch bind cache.
    pub plan_hits: u64,
    /// Distinct operator nodes this batch added to the DAG (a cold batch executes exactly
    /// these; a warm batch can add none and still answer everything).
    pub plan_misses: u64,
    /// Batch-wide executor statistics (operators, scans, tuples, time).
    pub exec: ExecStats,
    /// DAG nodes actually executed by this batch (each exactly once).
    pub dag_nodes: usize,
    /// Maximum number of DAG nodes in flight at once (1 for sequential runs).
    pub peak_parallelism: usize,
    /// Worker threads the DAG was scheduled on.
    pub workers: usize,
    /// Source-query submissions answered by the epoch DAG's bind cache — optimise, bind and
    /// DAG-merge skipped entirely (0 for a cold batch).
    pub epoch_bind_hits: u64,
    /// DAG nodes answered by a still-materialised result of an earlier batch of the same epoch
    /// — executions skipped, whole subgraphs pruned (0 for a cold batch).
    pub epoch_results_reused: u64,
    /// Nodes whose scheduling cost came from an observed cardinality instead of the static
    /// estimate (0 for a cold batch or with the adaptive loop off).
    pub observed_nodes: u64,
    /// Hash joins whose build side was flipped by observed-cardinality feedback.
    pub reordered_joins: u64,
}

impl BatchEvaluation {
    /// Total source operators executed across the batch (the paper's Table IV metric).
    #[must_use]
    pub fn source_operators(&self) -> u64 {
        self.exec.operators_executed + self.exec.scans
    }
}

/// Per-query bookkeeping between the DAG-build and aggregation phases.
#[derive(Debug)]
struct PendingQuery {
    /// (index into the DAG's root results, probability, extraction rule) per distinct
    /// reformulation.
    roots: Vec<(usize, f64, Extraction)>,
    empty_probability: f64,
    metrics: EvalMetrics,
    started: Instant,
}

/// Phase 1 of a batch: rewrite every query through every mapping and submit the distinct
/// source queries to the epoch DAG.  A plan this epoch has bound before is a bind-cache
/// lookup; a new plan is optimised, bound and merged (sharing across queries is structural).
fn submit_batch(
    queries: &[TargetQuery],
    mappings: &MappingSet,
    catalog: &Catalog,
    epoch: &mut EpochDag,
    exec: &Executor<'_>,
    tracer: &Tracer,
) -> CoreResult<Vec<PendingQuery>> {
    let mut pending: Vec<PendingQuery> = Vec::with_capacity(queries.len());
    let mut next_root = 0usize;
    for (qi, query) in queries.iter().enumerate() {
        let started = Instant::now();
        let mut metrics = EvalMetrics::new("batch");
        metrics.representative_mappings = mappings.len();

        let rewrite_start = Instant::now();
        let (ordered, empty_probability) = {
            let mut span = tracer.span("rewrite");
            span.tag("query", qi as u64);
            let out = clustered_reformulations(query, mappings, catalog)?;
            span.tag("reformulations", out.0.len() as u64);
            out
        };
        metrics.rewrite_time = rewrite_start.elapsed();
        metrics.distinct_source_queries = ordered.len();

        let reused_before = epoch.dag().operators_reused();
        let nodes_before = epoch.dag().node_count();
        let bind_hits_before = epoch.bind_hits();
        let mut roots = Vec::with_capacity(ordered.len());
        let plan_start = Instant::now();
        {
            let mut span = tracer.span("optimize_bind");
            span.tag("query", qi as u64);
            span.tag("source_queries", ordered.len() as u64);
            for (sq, probability) in ordered {
                let key = fingerprint(&sq.plan);
                epoch.submit_with(key, || {
                    let plan = optimize(&sq.plan, catalog)?;
                    exec.bind(&plan)
                })?;
                roots.push((next_root, probability, sq.extraction));
                next_root += 1;
            }
        }
        metrics.plan_time = plan_start.elapsed();
        metrics.shared_plan_hits = (epoch.dag().operators_reused() - reused_before)
            + (epoch.bind_hits() - bind_hits_before);
        metrics.shared_plan_misses = (epoch.dag().node_count() - nodes_before) as u64;

        pending.push(PendingQuery {
            roots,
            empty_probability,
            metrics,
            started,
        });
    }
    Ok(pending)
}

/// Evaluates every query of a batch against the same mapping set and catalog through one merged
/// shared-operator DAG (see the module docs).
///
/// The epoch DAG is built fresh per call — the rebuild-every-batch baseline.  A serving layer
/// that keeps one [`EpochDag`] per epoch should call [`evaluate_batch_epoch`] instead and get
/// cross-batch bind/result reuse for free.
pub fn evaluate_batch(
    queries: &[TargetQuery],
    mappings: &MappingSet,
    catalog: &Catalog,
    options: &BatchOptions,
) -> CoreResult<BatchEvaluation> {
    let mut epoch = EpochDag::new();
    evaluate_batch_epoch(queries, mappings, catalog, options, &mut epoch)
}

/// Like [`evaluate_batch`], on a caller-owned per-epoch DAG.
///
/// The epoch DAG must have been created for (and only ever used with) this `catalog` — bound
/// fingerprints are identity-based, so an epoch DAG must not outlive or migrate between
/// catalogs.  Everything this epoch has bound before is submitted as a hash lookup, and every
/// node whose result is still materialised (pinned from the previous batch, or alive in any
/// consumer's hands) is answered without executing — see
/// [`EpochDag`] for the pinning policy.
///
/// This is [`prepare_batch_epoch`] followed by [`execute_prepared_batch`] — the single-lock
/// convenience path.  A serving layer that wants cross-batch pipelining splits the two: it
/// holds its epoch lock only across `prepare_batch_epoch` (rewrite + optimise + bind), so the
/// next batch's bind stage overlaps this batch's execution.
pub fn evaluate_batch_epoch(
    queries: &[TargetQuery],
    mappings: &MappingSet,
    catalog: &Catalog,
    options: &BatchOptions,
    epoch: &mut EpochDag,
) -> CoreResult<BatchEvaluation> {
    epoch.set_adaptive(options.adaptive);
    let prepared = prepare_batch_epoch_traced(queries, mappings, catalog, epoch, &options.tracer)?;
    execute_prepared_batch(prepared, catalog, options)
}

/// The closed bind stage of one batch: every query rewritten through every mapping, every
/// distinct source query optimised, bound and merged into the epoch DAG, and the batch's
/// subgraph snapshotted out of the epoch ([`EpochDag::prepare_pending`]).
///
/// Self-contained: executing it no longer needs the [`EpochDag`] (executions of one epoch
/// serialise on the epoch's internal result lock instead), which is what lets a serving layer
/// bind batch N+1 while batch N executes.
#[derive(Debug)]
pub struct PreparedBatchEvaluation {
    pending: Vec<PendingQuery>,
    prepared: PreparedBatch,
    /// Operator insertions deduplicated onto existing DAG nodes during this batch's submission.
    dag_plan_hits: u64,
    /// Distinct operator nodes this batch added to the DAG.
    dag_plan_misses: u64,
}

impl PreparedBatchEvaluation {
    /// Number of queries in the batch (one [`Evaluation`] each, in input order).
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.pending.len()
    }

    /// The epoch's spill pool, when it runs under a memory budget — the executor that runs
    /// this batch is built from it, so grace joins share the epoch's budget.
    #[must_use]
    pub fn pool(&self) -> Option<&BufferPool> {
        self.prepared.pool()
    }
}

/// Phase 1+: rewrite, optimise, bind and snapshot one batch on the caller's epoch DAG (the
/// bind stage of [`evaluate_batch_epoch`]).  The caller's epoch lock is only needed for the
/// duration of this call; the returned [`PreparedBatchEvaluation`] executes without it via
/// [`execute_prepared_batch`].
pub fn prepare_batch_epoch(
    queries: &[TargetQuery],
    mappings: &MappingSet,
    catalog: &Catalog,
    epoch: &mut EpochDag,
) -> CoreResult<PreparedBatchEvaluation> {
    prepare_batch_epoch_traced(queries, mappings, catalog, epoch, &Tracer::disabled())
}

/// [`prepare_batch_epoch`] with trace spans: per-query `rewrite` and `optimize_bind` spans are
/// recorded on `tracer` (free when the tracer is disabled — the untraced name delegates here).
pub fn prepare_batch_epoch_traced(
    queries: &[TargetQuery],
    mappings: &MappingSet,
    catalog: &Catalog,
    epoch: &mut EpochDag,
    tracer: &Tracer,
) -> CoreResult<PreparedBatchEvaluation> {
    // Binding needs only the catalog; the spill pool matters to execution, so the bind-stage
    // executor is deliberately pool-free (and cheap to construct).
    let exec = Executor::new(catalog);
    let batch_reused_before = epoch.dag().operators_reused();
    let batch_nodes_before = epoch.dag().node_count();

    // Rewrite and submit.  On any failure the half-assembled batch must be aborted, or its
    // stale roots would prepend themselves to the epoch's *next* batch and misalign every one
    // of that batch's answers.
    let pending = match submit_batch(queries, mappings, catalog, epoch, &exec, tracer) {
        Ok(pending) => pending,
        Err(err) => {
            epoch.abort_pending();
            return Err(err);
        }
    };
    let dag_plan_hits = epoch.dag().operators_reused() - batch_reused_before;
    let dag_plan_misses = (epoch.dag().node_count() - batch_nodes_before) as u64;

    Ok(PreparedBatchEvaluation {
        pending,
        prepared: epoch.prepare_pending(),
        dag_plan_hits,
        dag_plan_misses,
    })
}

/// Phases 2–3: execute a prepared batch and aggregate per-query probabilistic answers (the
/// execute stage of [`evaluate_batch_epoch`]).  `catalog` must be the one the batch was
/// prepared against.  Executions of one epoch serialise on the epoch's internal result lock;
/// the epoch itself is free to bind the next batch concurrently.
pub fn execute_prepared_batch(
    batch: PreparedBatchEvaluation,
    catalog: &Catalog,
    options: &BatchOptions,
) -> CoreResult<BatchEvaluation> {
    let PreparedBatchEvaluation {
        pending,
        prepared,
        dag_plan_hits,
        dag_plan_misses,
    } = batch;
    // A memory-budgeted epoch carries a spill pool: the batch executor shares it, so grace
    // hash joins and spilled-pin reloads draw on one budget.  The pool's counter delta over
    // the execution is folded into `ExecStats` inside the engine, under the epoch's result
    // lock, so deltas of pipelined batches never interleave.
    let mut exec = match prepared.pool().cloned() {
        Some(pool) => Executor::with_pool(catalog, pool),
        None => Executor::new(catalog),
    }
    .with_columnar(options.columnar)
    .with_tracer(options.tracer.clone());
    // A shared spill pool traces its writes/reloads under the same trace while this batch
    // executes (cleared below — the pool outlives the batch, the trace does not).
    if let Some(pool) = exec.pool() {
        pool.set_tracer(options.tracer.clone());
    }

    // Execute only what this batch needs — every distinct operator not answered by a live
    // cached result runs exactly once, fanning its result out to all consumers, in parallel
    // when asked to.
    let run = {
        let span = options.tracer.span("execute");
        // DAG worker threads start with empty span stacks; anchor them to the execute span.
        options.tracer.set_anchor(span.id());
        let run = prepared.execute(&mut exec, options.workers);
        options.tracer.clear_anchor();
        run
    };
    if let Some(pool) = exec.pool() {
        pool.set_tracer(Tracer::disabled());
    }
    let run = run?;
    for _ in 0..run.root_results.len() {
        exec.stats_mut().record_source_query();
    }

    // Per-query probabilistic aggregation, unchanged from e-basic.
    let mut evaluations = Vec::with_capacity(pending.len());
    let agg_span = options.tracer.span("aggregate");
    for mut query in pending {
        let agg_start = Instant::now();
        let mut answer = ProbabilisticAnswer::new();
        for (root, probability, extraction) in &query.roots {
            let result = &run.root_results[*root];
            answer.add_distinct(extract_answers(result, extraction), *probability);
        }
        if query.empty_probability > 0.0 {
            answer.add_empty(query.empty_probability);
        }
        query.metrics.aggregation_time = agg_start.elapsed();
        // Wall-clock spans submission to aggregation; the execution slice in the middle is
        // indivisible across queries (shared nodes), so executor time is reported batch-wide.
        query.metrics.total_time = query.started.elapsed();
        evaluations.push(Evaluation {
            answer,
            metrics: query.metrics,
        });
    }
    drop(agg_span);

    Ok(BatchEvaluation {
        evaluations,
        plan_hits: dag_plan_hits + run.report.bind_hits,
        plan_misses: dag_plan_misses,
        exec: exec.into_stats(),
        dag_nodes: run.report.nodes_executed as usize,
        peak_parallelism: run.report.peak_parallelism,
        workers: run.report.workers,
        epoch_bind_hits: run.report.bind_hits,
        epoch_results_reused: run.report.results_reused,
        observed_nodes: run.report.observed_nodes,
        reordered_joins: run.report.reordered_joins,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{basic, Algorithm};
    use crate::strategy::Strategy;
    use crate::testkit;

    fn paper_queries() -> Vec<TargetQuery> {
        vec![
            testkit::q0(),
            testkit::q1(),
            testkit::basic_example_query(),
            testkit::q2_product(),
            testkit::count_query(),
            testkit::sum_query(),
        ]
    }

    #[test]
    fn batch_matches_sequential_on_every_paper_query() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = paper_queries();
        let batch =
            evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::sequential()).unwrap();
        assert_eq!(batch.evaluations.len(), queries.len());
        for (query, eval) in queries.iter().zip(&batch.evaluations) {
            let reference = basic::evaluate(query, &mappings, &catalog).unwrap();
            assert!(
                reference.answer.approx_eq(&eval.answer, 1e-9),
                "batch disagrees with basic on {}",
                query.name()
            );
            let sef = crate::evaluate(
                query,
                &mappings,
                &catalog,
                Algorithm::OSharing(Strategy::Sef),
            )
            .unwrap();
            assert!(
                sef.answer.approx_eq(&eval.answer, 1e-9),
                "batch disagrees with o-sharing(SEF) on {}",
                query.name()
            );
        }
    }

    #[test]
    fn parallel_batch_is_byte_identical_to_sequential() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = paper_queries();
        let sequential =
            evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::sequential()).unwrap();
        for workers in [2, 4] {
            let parallel = evaluate_batch(
                &queries,
                &mappings,
                &catalog,
                &BatchOptions::parallel(workers),
            )
            .unwrap();
            for (a, b) in sequential.evaluations.iter().zip(&parallel.evaluations) {
                let sa = a.answer.sorted();
                let sb = b.answer.sorted();
                assert_eq!(sa.len(), sb.len());
                for ((t1, p1), (t2, p2)) in sa.iter().zip(&sb) {
                    assert_eq!(t1, t2);
                    assert_eq!(p1.to_bits(), p2.to_bits());
                }
            }
            // Work totals are mode-independent; only the wall-clock layout differs.
            assert_eq!(parallel.source_operators(), sequential.source_operators());
            assert_eq!(parallel.dag_nodes, sequential.dag_nodes);
            assert_eq!(parallel.workers, workers);
        }
    }

    #[test]
    fn each_distinct_operator_executes_exactly_once() {
        // The node-dedup invariant: executed operators == distinct DAG nodes, with genuine
        // sharing across the batch (reused > 0 because queries repeat and overlap).
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = vec![testkit::q0(), testkit::q1(), testkit::q0(), testkit::q0()];
        let batch =
            evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::sequential()).unwrap();
        assert_eq!(
            batch.exec.operators_executed + batch.exec.scans,
            batch.dag_nodes as u64,
            "every distinct bound operator must execute exactly once"
        );
        assert_eq!(batch.plan_misses, batch.dag_nodes as u64);
        assert!(batch.plan_hits > 0, "no cross-query operator sharing");
    }

    #[test]
    fn batch_shares_subplans_across_queries() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        // q0 and q1 both select on Customer through overlapping correspondences.
        let queries = vec![testkit::q0(), testkit::q1(), testkit::q0()];
        let batch =
            evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::sequential()).unwrap();
        assert!(batch.plan_hits > 0, "no cross-query sub-plan sharing");
        // The duplicated q0 contributes *no* new node to the merged DAG.
        let repeat = &batch.evaluations[2].metrics;
        assert_eq!(repeat.shared_plan_misses, 0);
        assert!(repeat.shared_plan_hits > 0);
    }

    #[test]
    fn batch_is_deterministic_across_runs() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = paper_queries();
        let a = evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::sequential()).unwrap();
        let b = evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::parallel(3)).unwrap();
        for (x, y) in a.evaluations.iter().zip(&b.evaluations) {
            assert_eq!(x.answer.sorted(), y.answer.sorted());
        }
    }

    #[test]
    fn warm_epoch_batch_skips_rebinding_and_execution_with_identical_answers() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = paper_queries();
        let mut epoch = EpochDag::new();

        let cold = evaluate_batch_epoch(
            &queries,
            &mappings,
            &catalog,
            &BatchOptions::sequential(),
            &mut epoch,
        )
        .unwrap();
        assert_eq!(cold.epoch_bind_hits, 0);
        assert_eq!(cold.epoch_results_reused, 0);
        assert!(cold.dag_nodes > 0);

        let warm = evaluate_batch_epoch(
            &queries,
            &mappings,
            &catalog,
            &BatchOptions::sequential(),
            &mut epoch,
        )
        .unwrap();
        assert!(warm.epoch_bind_hits > 0, "warm batch must skip rebinding");
        assert_eq!(warm.dag_nodes, 0, "warm batch must execute no DAG node");
        assert!(warm.epoch_results_reused > 0);
        assert_eq!(warm.plan_misses, 0, "warm batch adds no DAG nodes");
        assert_eq!(
            warm.exec.operators_executed + warm.exec.scans,
            0,
            "warm batch charged executor work"
        );

        // Answers are bit-identical to the cold batch and to the rebuild-every-batch path.
        let rebuilt =
            evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::sequential()).unwrap();
        for ((a, b), c) in cold
            .evaluations
            .iter()
            .zip(&warm.evaluations)
            .zip(&rebuilt.evaluations)
        {
            let (sa, sb, sc) = (a.answer.sorted(), b.answer.sorted(), c.answer.sorted());
            assert_eq!(sa.len(), sb.len());
            for (((t1, p1), (t2, p2)), (t3, p3)) in sa.iter().zip(&sb).zip(&sc) {
                assert_eq!(t1, t2);
                assert_eq!(p1.to_bits(), p2.to_bits());
                assert_eq!(t1, t3);
                assert_eq!(p1.to_bits(), p3.to_bits());
            }
        }
    }

    #[test]
    fn overlapping_warm_batch_reuses_the_shared_frontier() {
        // The second batch shares q0/q1 with the first but adds a new query: only the new
        // query's frontier executes.
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let mut epoch = EpochDag::new();
        evaluate_batch_epoch(
            &[testkit::q0(), testkit::q1()],
            &mappings,
            &catalog,
            &BatchOptions::sequential(),
            &mut epoch,
        )
        .unwrap();
        let second = evaluate_batch_epoch(
            &[testkit::q0(), testkit::q1(), testkit::q2_product()],
            &mappings,
            &catalog,
            &BatchOptions::sequential(),
            &mut epoch,
        )
        .unwrap();
        assert!(second.epoch_bind_hits > 0);
        assert!(second.epoch_results_reused > 0);
        assert!(second.dag_nodes > 0, "the new query still has to run");
        // The repeated queries' answers agree with the sequential reference.
        for (query, eval) in [testkit::q0(), testkit::q1(), testkit::q2_product()]
            .iter()
            .zip(&second.evaluations)
        {
            let reference = basic::evaluate(query, &mappings, &catalog).unwrap();
            assert!(
                reference.answer.approx_eq(&eval.answer, 1e-9),
                "warm epoch batch disagrees with basic on {}",
                query.name()
            );
        }
    }

    #[test]
    fn memory_budgeted_epoch_matches_unconstrained_and_counts_spills() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = paper_queries();
        let unconstrained =
            evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::sequential()).unwrap();

        // Budget 0: every pinned result spills; answers must not change by a bit.
        let mut epoch = EpochDag::with_memory_budget(0);
        let cold = evaluate_batch_epoch(
            &queries,
            &mappings,
            &catalog,
            &BatchOptions::sequential(),
            &mut epoch,
        )
        .unwrap();
        assert!(cold.exec.bytes_spilled > 0, "budget 0 must spill pins");
        let warm = evaluate_batch_epoch(
            &queries,
            &mappings,
            &catalog,
            &BatchOptions::sequential(),
            &mut epoch,
        )
        .unwrap();
        assert_eq!(warm.dag_nodes, 0, "warm batch re-executed under budget");
        assert!(
            warm.exec.spill_reloads > 0,
            "warm batch must reload spilled pins"
        );
        for ((a, b), c) in unconstrained
            .evaluations
            .iter()
            .zip(&cold.evaluations)
            .zip(&warm.evaluations)
        {
            let (sa, sb, sc) = (a.answer.sorted(), b.answer.sorted(), c.answer.sorted());
            assert_eq!(sa.len(), sb.len());
            for (((t1, p1), (t2, p2)), (t3, p3)) in sa.iter().zip(&sb).zip(&sc) {
                assert_eq!(t1, t2);
                assert_eq!(p1.to_bits(), p2.to_bits());
                assert_eq!(t1, t3);
                assert_eq!(p1.to_bits(), p3.to_bits());
            }
        }
    }

    #[test]
    fn pipelined_prepare_execute_matches_the_serialised_path() {
        // The serving layer's pipeline shape: batch 2 is prepared (rewritten + bound) before
        // batch 1 executes, both then execute in order — answers and accounting must match
        // the serialised evaluate_batch_epoch path bit for bit.
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = paper_queries();

        let mut serial = EpochDag::new();
        let serial_cold = evaluate_batch_epoch(
            &queries,
            &mappings,
            &catalog,
            &BatchOptions::sequential(),
            &mut serial,
        )
        .unwrap();
        let serial_warm = evaluate_batch_epoch(
            &queries,
            &mappings,
            &catalog,
            &BatchOptions::sequential(),
            &mut serial,
        )
        .unwrap();

        let mut epoch = EpochDag::new();
        let first = prepare_batch_epoch(&queries, &mappings, &catalog, &mut epoch).unwrap();
        assert_eq!(first.query_count(), queries.len());
        // Batch 2 binds entirely from the bind cache although batch 1 has not executed.
        let second = prepare_batch_epoch(&queries, &mappings, &catalog, &mut epoch).unwrap();
        let cold = execute_prepared_batch(first, &catalog, &BatchOptions::sequential()).unwrap();
        let warm = execute_prepared_batch(second, &catalog, &BatchOptions::parallel(2)).unwrap();

        assert_eq!(cold.dag_nodes, serial_cold.dag_nodes);
        assert_eq!(cold.plan_hits, serial_cold.plan_hits);
        assert_eq!(cold.plan_misses, serial_cold.plan_misses);
        assert!(warm.epoch_bind_hits > 0, "batch 2 must bind from the cache");
        assert_eq!(warm.dag_nodes, 0, "batch 2 must reuse batch 1's results");
        assert_eq!(warm.epoch_results_reused, serial_warm.epoch_results_reused);
        for ((a, b), (c, d)) in cold
            .evaluations
            .iter()
            .zip(&warm.evaluations)
            .zip(serial_cold.evaluations.iter().zip(&serial_warm.evaluations))
        {
            let (sa, sb) = (a.answer.sorted(), b.answer.sorted());
            assert_eq!(sa, c.answer.sorted());
            assert_eq!(sb, d.answer.sorted());
            for ((t1, p1), (t2, p2)) in sa.iter().zip(&sb) {
                assert_eq!(t1, t2);
                assert_eq!(p1.to_bits(), p2.to_bits());
            }
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let batch = evaluate_batch(&[], &mappings, &catalog, &BatchOptions::parallel(4)).unwrap();
        assert!(batch.evaluations.is_empty());
        assert_eq!(batch.plan_hits + batch.plan_misses, 0);
        assert_eq!(batch.source_operators(), 0);
        assert_eq!(batch.dag_nodes, 0);
    }
}
