//! Batch evaluation: many probabilistic queries over one mapping set, lowered onto a single
//! merged shared-operator DAG.
//!
//! The paper evaluates sharing *within* one probabilistic query (its `h` reformulations).  A
//! serving layer gets a second amortisation axis: independent queries submitted concurrently
//! against the same (catalog, mapping set) epoch overlap heavily — they scan the same source
//! relations and, with ambiguous matchings, frequently reformulate onto identical source
//! sub-plans.  [`evaluate_batch`] therefore binds the distinct source queries of *every* query
//! in the batch and merges them into one [`OperatorDag`]: each distinct bound operator
//! (deduplicated by bound-plan fingerprint) becomes one node, shared sub-plans become fan-out
//! edges, and the [`DagScheduler`] executes every node **exactly once** — sequentially, or on
//! parallel worker threads when [`BatchOptions::workers`] ≥ 2 (independent operators of
//! different queries run concurrently; results are byte-identical either way).
//!
//! Per-query aggregation is unchanged from `e-basic` — each query's answer is the
//! probability-weighted union of its distinct reformulations — so batch answers agree with
//! every sequential algorithm (the service integration tests verify this).

use crate::answer::ProbabilisticAnswer;
use crate::metrics::{EvalMetrics, Evaluation};
use crate::query::TargetQuery;
use crate::reformulate::{clustered_reformulations, extract_answers, Extraction};
use crate::CoreResult;
use std::time::Instant;
use urm_engine::{optimize::optimize, DagScheduler, ExecStats, Executor, OperatorDag};
use urm_matching::MappingSet;
use urm_storage::Catalog;

/// Tuning knobs of one batch evaluation.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Worker threads for the DAG scheduler (1 = sequential topological execution).
    pub workers: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions { workers: 1 }
    }
}

impl BatchOptions {
    /// Sequential execution (the scheduler walks the topological order on the calling thread).
    #[must_use]
    pub fn sequential() -> Self {
        BatchOptions::default()
    }

    /// Parallel execution over `workers` scoped threads (clamped to at least 1).
    #[must_use]
    pub fn parallel(workers: usize) -> Self {
        BatchOptions {
            workers: workers.max(1),
        }
    }
}

/// The outcome of one batch evaluation.
#[derive(Debug)]
pub struct BatchEvaluation {
    /// One evaluation per input query, in input order.  Per-query `metrics.exec` is empty —
    /// shared DAG nodes belong to several queries at once, so executor work is accounted
    /// batch-wide in [`exec`](BatchEvaluation::exec) instead.
    pub evaluations: Vec<Evaluation>,
    /// Operator insertions answered by an existing DAG node — the sharing the merged DAG
    /// realised across the whole batch.
    pub plan_hits: u64,
    /// Distinct operator nodes in the merged DAG (each executed exactly once).
    pub plan_misses: u64,
    /// Batch-wide executor statistics (operators, scans, tuples, time).
    pub exec: ExecStats,
    /// Distinct nodes of the merged batch DAG (same value as `plan_misses`, by construction).
    pub dag_nodes: usize,
    /// Maximum number of DAG nodes in flight at once (1 for sequential runs).
    pub peak_parallelism: usize,
    /// Worker threads the DAG was scheduled on.
    pub workers: usize,
}

impl BatchEvaluation {
    /// Total source operators executed across the batch (the paper's Table IV metric).
    #[must_use]
    pub fn source_operators(&self) -> u64 {
        self.exec.operators_executed + self.exec.scans
    }
}

/// Per-query bookkeeping between the DAG-build and aggregation phases.
struct PendingQuery {
    /// (index into the DAG's root results, probability, extraction rule) per distinct
    /// reformulation.
    roots: Vec<(usize, f64, Extraction)>,
    empty_probability: f64,
    metrics: EvalMetrics,
    started: Instant,
}

/// Evaluates every query of a batch against the same mapping set and catalog through one merged
/// shared-operator DAG (see the module docs).
///
/// The DAG is built fresh per call and bound against `catalog`, so there is no cross-epoch
/// staleness to manage: identity-based bound-plan fingerprints never outlive the catalog they
/// were bound against.
pub fn evaluate_batch(
    queries: &[TargetQuery],
    mappings: &MappingSet,
    catalog: &Catalog,
    options: &BatchOptions,
) -> CoreResult<BatchEvaluation> {
    let mut exec = Executor::new(catalog);
    let mut dag = OperatorDag::new();
    let mut pending: Vec<PendingQuery> = Vec::with_capacity(queries.len());
    let mut next_root = 0usize;

    // Phase 1: rewrite every query through every mapping, bind the distinct source queries and
    // merge them into the batch DAG.  Sharing across queries happens here, structurally.
    for query in queries {
        let started = Instant::now();
        let mut metrics = EvalMetrics::new("batch");
        metrics.representative_mappings = mappings.len();

        let rewrite_start = Instant::now();
        let (ordered, empty_probability) = clustered_reformulations(query, mappings, catalog)?;
        metrics.rewrite_time = rewrite_start.elapsed();
        metrics.distinct_source_queries = ordered.len();

        let reused_before = dag.operators_reused();
        let nodes_before = dag.node_count();
        let mut roots = Vec::with_capacity(ordered.len());
        let plan_start = Instant::now();
        for (sq, probability) in ordered {
            let plan = optimize(&sq.plan, catalog)?;
            let physical = exec.bind(&plan)?;
            dag.add_root(&physical);
            roots.push((next_root, probability, sq.extraction));
            next_root += 1;
        }
        metrics.plan_time = plan_start.elapsed();
        metrics.shared_plan_hits = dag.operators_reused() - reused_before;
        metrics.shared_plan_misses = (dag.node_count() - nodes_before) as u64;

        pending.push(PendingQuery {
            roots,
            empty_probability,
            metrics,
            started,
        });
    }

    // Phase 2: execute every distinct operator exactly once, fanning results out to all
    // consumers — in parallel when asked to.
    let scheduler = DagScheduler::with_workers(options.workers);
    let run = scheduler.execute(&dag, &mut exec)?;
    for _ in 0..run.root_results.len() {
        exec.stats_mut().record_source_query();
    }

    // Phase 3: per-query probabilistic aggregation, unchanged from e-basic.
    let mut evaluations = Vec::with_capacity(pending.len());
    for mut query in pending {
        let agg_start = Instant::now();
        let mut answer = ProbabilisticAnswer::new();
        for (root, probability, extraction) in &query.roots {
            let result = &run.root_results[*root];
            answer.add_distinct(extract_answers(result, extraction), *probability);
        }
        if query.empty_probability > 0.0 {
            answer.add_empty(query.empty_probability);
        }
        query.metrics.aggregation_time = agg_start.elapsed();
        // Wall-clock spans submission to aggregation; the execution slice in the middle is
        // indivisible across queries (shared nodes), so executor time is reported batch-wide.
        query.metrics.total_time = query.started.elapsed();
        evaluations.push(Evaluation {
            answer,
            metrics: query.metrics,
        });
    }

    Ok(BatchEvaluation {
        evaluations,
        plan_hits: dag.operators_reused(),
        plan_misses: dag.node_count() as u64,
        exec: exec.into_stats(),
        dag_nodes: run.report.nodes_executed as usize,
        peak_parallelism: run.report.peak_parallelism,
        workers: run.report.workers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{basic, Algorithm};
    use crate::strategy::Strategy;
    use crate::testkit;

    fn paper_queries() -> Vec<TargetQuery> {
        vec![
            testkit::q0(),
            testkit::q1(),
            testkit::basic_example_query(),
            testkit::q2_product(),
            testkit::count_query(),
            testkit::sum_query(),
        ]
    }

    #[test]
    fn batch_matches_sequential_on_every_paper_query() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = paper_queries();
        let batch =
            evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::sequential()).unwrap();
        assert_eq!(batch.evaluations.len(), queries.len());
        for (query, eval) in queries.iter().zip(&batch.evaluations) {
            let reference = basic::evaluate(query, &mappings, &catalog).unwrap();
            assert!(
                reference.answer.approx_eq(&eval.answer, 1e-9),
                "batch disagrees with basic on {}",
                query.name()
            );
            let sef = crate::evaluate(
                query,
                &mappings,
                &catalog,
                Algorithm::OSharing(Strategy::Sef),
            )
            .unwrap();
            assert!(
                sef.answer.approx_eq(&eval.answer, 1e-9),
                "batch disagrees with o-sharing(SEF) on {}",
                query.name()
            );
        }
    }

    #[test]
    fn parallel_batch_is_byte_identical_to_sequential() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = paper_queries();
        let sequential =
            evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::sequential()).unwrap();
        for workers in [2, 4] {
            let parallel = evaluate_batch(
                &queries,
                &mappings,
                &catalog,
                &BatchOptions::parallel(workers),
            )
            .unwrap();
            for (a, b) in sequential.evaluations.iter().zip(&parallel.evaluations) {
                let sa = a.answer.sorted();
                let sb = b.answer.sorted();
                assert_eq!(sa.len(), sb.len());
                for ((t1, p1), (t2, p2)) in sa.iter().zip(&sb) {
                    assert_eq!(t1, t2);
                    assert_eq!(p1.to_bits(), p2.to_bits());
                }
            }
            // Work totals are mode-independent; only the wall-clock layout differs.
            assert_eq!(parallel.source_operators(), sequential.source_operators());
            assert_eq!(parallel.dag_nodes, sequential.dag_nodes);
            assert_eq!(parallel.workers, workers);
        }
    }

    #[test]
    fn each_distinct_operator_executes_exactly_once() {
        // The node-dedup invariant: executed operators == distinct DAG nodes, with genuine
        // sharing across the batch (reused > 0 because queries repeat and overlap).
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = vec![testkit::q0(), testkit::q1(), testkit::q0(), testkit::q0()];
        let batch =
            evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::sequential()).unwrap();
        assert_eq!(
            batch.exec.operators_executed + batch.exec.scans,
            batch.dag_nodes as u64,
            "every distinct bound operator must execute exactly once"
        );
        assert_eq!(batch.plan_misses, batch.dag_nodes as u64);
        assert!(batch.plan_hits > 0, "no cross-query operator sharing");
    }

    #[test]
    fn batch_shares_subplans_across_queries() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        // q0 and q1 both select on Customer through overlapping correspondences.
        let queries = vec![testkit::q0(), testkit::q1(), testkit::q0()];
        let batch =
            evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::sequential()).unwrap();
        assert!(batch.plan_hits > 0, "no cross-query sub-plan sharing");
        // The duplicated q0 contributes *no* new node to the merged DAG.
        let repeat = &batch.evaluations[2].metrics;
        assert_eq!(repeat.shared_plan_misses, 0);
        assert!(repeat.shared_plan_hits > 0);
    }

    #[test]
    fn batch_is_deterministic_across_runs() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = paper_queries();
        let a = evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::sequential()).unwrap();
        let b = evaluate_batch(&queries, &mappings, &catalog, &BatchOptions::parallel(3)).unwrap();
        for (x, y) in a.evaluations.iter().zip(&b.evaluations) {
            assert_eq!(x.answer.sorted(), y.answer.sorted());
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let batch = evaluate_batch(&[], &mappings, &catalog, &BatchOptions::parallel(4)).unwrap();
        assert!(batch.evaluations.is_empty());
        assert_eq!(batch.plan_hits + batch.plan_misses, 0);
        assert_eq!(batch.source_operators(), 0);
        assert_eq!(batch.dag_nodes, 0);
    }
}
