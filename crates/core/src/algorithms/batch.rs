//! Batch evaluation: many probabilistic queries over one mapping set, sharing work across the
//! whole batch.
//!
//! The paper evaluates sharing *within* one probabilistic query (its `h` reformulations).  A
//! serving layer gets a second amortisation axis: independent queries submitted concurrently
//! against the same (catalog, mapping set) epoch overlap heavily — they scan the same source
//! relations and, with ambiguous matchings, frequently reformulate onto identical source
//! sub-plans.  [`evaluate_batch`] therefore routes the distinct source queries of *every* query
//! in the batch through one [`SharedPlanCache`]: each distinct sub-plan (fingerprinted via
//! [`Plan::fingerprint`](urm_engine::Plan::fingerprint)) is materialised once per batch.
//!
//! Per-query aggregation is unchanged from `e-basic` — each query's answer is the
//! probability-weighted union of its distinct reformulations — so batch answers agree with
//! every sequential algorithm (the service integration tests verify this).

use crate::answer::ProbabilisticAnswer;
use crate::metrics::{EvalMetrics, Evaluation};
use crate::query::TargetQuery;
use crate::reformulate::{clustered_reformulations, extract_answers};
use crate::CoreResult;
use std::time::Instant;
use urm_engine::{optimize::optimize, Executor};
use urm_matching::MappingSet;
use urm_mqo::SharedPlanCache;
use urm_storage::Catalog;

/// The outcome of one batch evaluation.
#[derive(Debug)]
pub struct BatchEvaluation {
    /// One evaluation per input query, in input order.
    pub evaluations: Vec<Evaluation>,
    /// Sub-plan cache hits across the whole batch (delta over this call).
    pub plan_hits: u64,
    /// Sub-plan cache misses across the whole batch (delta over this call).
    pub plan_misses: u64,
}

impl BatchEvaluation {
    /// Total source operators executed across the batch.
    #[must_use]
    pub fn source_operators(&self) -> u64 {
        self.evaluations
            .iter()
            .map(|e| e.metrics.source_operators())
            .sum()
    }
}

/// Evaluates every query of a batch against the same mapping set and catalog, sharing
/// materialised sub-plans across the *entire batch* through `cache`.
///
/// The cache may be freshly created per batch (the service layer does this, bounding it) or
/// reused across calls to keep hot sub-plans warm — **but only while `catalog` stays alive and
/// unchanged**.  Entries are keyed by *bound-plan* fingerprints, which tie every scan to the
/// identity (address) of its catalog snapshot's row buffer, so two live catalogs never collide;
/// but once a catalog is dropped the allocator may recycle a buffer address, and a cache that
/// outlives the catalog it was warmed against could then serve stale relations.  Create a fresh
/// cache per catalog epoch, as the serving layer does.  Hit/miss deltas for this call are
/// reported on the returned [`BatchEvaluation`] either way.
pub fn evaluate_batch(
    queries: &[TargetQuery],
    mappings: &MappingSet,
    catalog: &Catalog,
    cache: &mut SharedPlanCache,
) -> CoreResult<BatchEvaluation> {
    let hits_before = cache.hits();
    let misses_before = cache.misses();
    let mut evaluations = Vec::with_capacity(queries.len());
    for query in queries {
        evaluations.push(evaluate_one(query, mappings, catalog, cache)?);
    }
    Ok(BatchEvaluation {
        evaluations,
        plan_hits: cache.hits() - hits_before,
        plan_misses: cache.misses() - misses_before,
    })
}

/// Evaluates one query of a batch through the shared cache (`e-basic` per-query semantics).
fn evaluate_one(
    query: &TargetQuery,
    mappings: &MappingSet,
    catalog: &Catalog,
    cache: &mut SharedPlanCache,
) -> CoreResult<Evaluation> {
    let total_start = Instant::now();
    let mut metrics = EvalMetrics::new("batch");
    metrics.representative_mappings = mappings.len();
    let hits_before = cache.hits();
    let misses_before = cache.misses();
    let mut answer = ProbabilisticAnswer::new();

    // Rewrite through every mapping and cluster identical source queries (as e-basic does).
    let rewrite_start = Instant::now();
    let (ordered, empty_probability) = clustered_reformulations(query, mappings, catalog)?;
    metrics.rewrite_time = rewrite_start.elapsed();
    metrics.distinct_source_queries = ordered.len();

    // Execute each distinct source query through the batch-wide sub-plan cache.
    let mut exec = Executor::new(catalog);
    for (sq, probability) in ordered {
        let plan_start = Instant::now();
        let plan = optimize(&sq.plan, catalog)?;
        metrics.plan_time += plan_start.elapsed();

        let result = cache.execute_shared(&plan, &mut exec)?;
        exec.stats_mut().record_source_query();

        let agg_start = Instant::now();
        answer.add_distinct(extract_answers(&result, &sq.extraction), probability);
        metrics.aggregation_time += agg_start.elapsed();
    }
    if empty_probability > 0.0 {
        answer.add_empty(empty_probability);
    }

    metrics.exec = exec.into_stats();
    metrics.shared_plan_hits = cache.hits() - hits_before;
    metrics.shared_plan_misses = cache.misses() - misses_before;
    metrics.total_time = total_start.elapsed();
    Ok(Evaluation { answer, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{basic, Algorithm};
    use crate::strategy::Strategy;
    use crate::testkit;

    fn paper_queries() -> Vec<TargetQuery> {
        vec![
            testkit::q0(),
            testkit::q1(),
            testkit::basic_example_query(),
            testkit::q2_product(),
            testkit::count_query(),
            testkit::sum_query(),
        ]
    }

    #[test]
    fn batch_matches_sequential_on_every_paper_query() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = paper_queries();
        let mut cache = SharedPlanCache::new();
        let batch = evaluate_batch(&queries, &mappings, &catalog, &mut cache).unwrap();
        assert_eq!(batch.evaluations.len(), queries.len());
        for (query, eval) in queries.iter().zip(&batch.evaluations) {
            let reference = basic::evaluate(query, &mappings, &catalog).unwrap();
            assert!(
                reference.answer.approx_eq(&eval.answer, 1e-9),
                "batch disagrees with basic on {}",
                query.name()
            );
            let sef = crate::evaluate(
                query,
                &mappings,
                &catalog,
                Algorithm::OSharing(Strategy::Sef),
            )
            .unwrap();
            assert!(
                sef.answer.approx_eq(&eval.answer, 1e-9),
                "batch disagrees with o-sharing(SEF) on {}",
                query.name()
            );
        }
    }

    #[test]
    fn batch_shares_subplans_across_queries() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        // q0 and q1 both select on Customer through overlapping correspondences.
        let queries = vec![testkit::q0(), testkit::q1(), testkit::q0()];
        let mut cache = SharedPlanCache::new();
        let batch = evaluate_batch(&queries, &mappings, &catalog, &mut cache).unwrap();
        assert!(batch.plan_hits > 0, "no cross-query sub-plan sharing");
        // The duplicated q0 finds *all* of its sub-plans in the cache.
        let repeat = &batch.evaluations[2].metrics;
        assert_eq!(repeat.shared_plan_misses, 0);
        assert!(repeat.shared_plan_hits > 0);
    }

    #[test]
    fn batch_is_deterministic_across_runs() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let queries = paper_queries();
        let mut cache_a = SharedPlanCache::new();
        let a = evaluate_batch(&queries, &mappings, &catalog, &mut cache_a).unwrap();
        let mut cache_b = SharedPlanCache::new();
        let b = evaluate_batch(&queries, &mappings, &catalog, &mut cache_b).unwrap();
        for (x, y) in a.evaluations.iter().zip(&b.evaluations) {
            assert_eq!(x.answer.sorted(), y.answer.sorted());
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let mut cache = SharedPlanCache::new();
        let batch = evaluate_batch(&[], &mappings, &catalog, &mut cache).unwrap();
        assert!(batch.evaluations.is_empty());
        assert_eq!(batch.plan_hits + batch.plan_misses, 0);
        assert_eq!(batch.source_operators(), 0);
    }
}
