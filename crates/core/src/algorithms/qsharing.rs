//! The `q-sharing` algorithm (Section IV, Algorithm 1).
//!
//! Instead of reformulating the query through every mapping and then deduplicating the results
//! (e-basic), q-sharing first partitions the mapping set with the partition tree: two mappings
//! land in the same partition exactly when they translate every query attribute identically,
//! hence produce the same source query.  Only one *representative* mapping per partition is then
//! reformulated and executed, carrying the partition's total probability.
//!
//! Execution goes through the bound physical path: every representative's plan is bound and
//! merged into one [`DagExecutor`] DAG, so representatives that still overlap structurally
//! (shared scans, shared selection prefixes — sharing *below* query granularity, which the
//! partition tree cannot see) execute each distinct bound operator once.

use crate::answer::ProbabilisticAnswer;
use crate::metrics::{EvalMetrics, Evaluation};
use crate::partition::{partition_mappings, representatives};
use crate::query::TargetQuery;
use crate::reformulate::{extract_answers, reformulate, Reformulated};
use crate::CoreResult;
use std::time::Instant;
use urm_engine::{optimize::optimize, DagExecutor, Executor};
use urm_matching::MappingSet;
use urm_storage::Catalog;

/// Evaluates the query with query-level sharing.
pub fn evaluate(
    query: &TargetQuery,
    mappings: &MappingSet,
    catalog: &Catalog,
) -> CoreResult<Evaluation> {
    let total_start = Instant::now();
    let mut metrics = EvalMetrics::new("q-sharing");

    // Step 1-2: partition the mappings and pick representatives (Algorithm 1).
    let partition_start = Instant::now();
    let partitions = partition_mappings(query, mappings)?;
    let reps = representatives(&partitions, mappings);
    metrics.rewrite_time += partition_start.elapsed();
    metrics.representative_mappings = reps.len();

    // Step 3: reformulate and execute one source query per representative, all lowered onto
    // one merged shared-operator DAG.
    let mut answer = ProbabilisticAnswer::new();
    let mut exec = Executor::new(catalog);
    let mut dag = DagExecutor::new();
    let mut distinct = std::collections::HashSet::new();
    for (mapping, probability) in &reps {
        let rewrite_start = Instant::now();
        let reformulated = reformulate(query, mapping, catalog)?;
        metrics.rewrite_time += rewrite_start.elapsed();

        match reformulated {
            Reformulated::Empty => {
                let agg_start = Instant::now();
                answer.add_empty(*probability);
                metrics.aggregation_time += agg_start.elapsed();
            }
            Reformulated::Query(sq) => {
                distinct.insert(sq.clone());
                let plan_start = Instant::now();
                let plan = optimize(&sq.plan, catalog)?;
                metrics.plan_time += plan_start.elapsed();

                let result = dag.run_shared(&plan, &mut exec)?;
                exec.stats_mut().record_source_query();

                let agg_start = Instant::now();
                let tuples = extract_answers(&result, &sq.extraction);
                answer.add_distinct(tuples, *probability);
                metrics.aggregation_time += agg_start.elapsed();
            }
        }
    }

    metrics.exec = exec.into_stats();
    metrics.distinct_source_queries = distinct.len();
    metrics.shared_plan_hits = dag.hits();
    metrics.shared_plan_misses = dag.executed();
    metrics.total_time = total_start.elapsed();
    Ok(Evaluation { answer, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::basic;
    use crate::testkit;

    #[test]
    fn qsharing_matches_basic_on_every_paper_query() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        for query in [
            testkit::q0(),
            testkit::q1(),
            testkit::basic_example_query(),
            testkit::q2_product(),
            testkit::count_query(),
            testkit::sum_query(),
        ] {
            let a = basic::evaluate(&query, &mappings, &catalog).unwrap();
            let b = evaluate(&query, &mappings, &catalog).unwrap();
            assert!(
                a.answer.approx_eq(&b.answer, 1e-9),
                "answers differ for {}:\nbasic: {}\nq-sharing: {}",
                query.name(),
                a.answer,
                b.answer
            );
        }
    }

    #[test]
    fn qsharing_uses_representative_mappings_only() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        // q1 partitions the 5 mappings into 3 groups (Section IV's example).
        let eval = evaluate(&testkit::q1(), &mappings, &catalog).unwrap();
        assert_eq!(eval.metrics.representative_mappings, 3);
        let basic_eval = basic::evaluate(&testkit::q1(), &mappings, &catalog).unwrap();
        assert!(
            eval.metrics.exec.source_queries < basic_eval.metrics.exec.source_queries,
            "q-sharing should run fewer source queries"
        );
    }

    #[test]
    fn probabilities_of_representatives_sum_to_one() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let eval = evaluate(&testkit::q0(), &mappings, &catalog).unwrap();
        // Answers plus empty mass account for the whole distribution on q0 (every mapping maps
        // phone and addr, so nothing is empty).
        assert!(eval.answer.empty_probability() < 1e-9);
        assert!(
            (eval
                .answer
                .probability_of(&urm_storage::Tuple::new(vec![urm_storage::Value::from(
                    "aaa"
                )]))
                - 0.5)
                .abs()
                < 1e-9
        );
    }
}
