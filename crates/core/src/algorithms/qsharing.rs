//! The `q-sharing` algorithm (Section IV, Algorithm 1).
//!
//! Instead of reformulating the query through every mapping and then deduplicating the results
//! (e-basic), q-sharing first partitions the mapping set with the partition tree: two mappings
//! land in the same partition exactly when they translate every query attribute identically,
//! hence produce the same source query.  Only one *representative* mapping per partition is then
//! reformulated and executed, carrying the partition's total probability.

use crate::metrics::Evaluation;
use crate::partition::{partition_mappings, representatives};
use crate::query::TargetQuery;
use crate::CoreResult;
use std::time::Instant;
use urm_matching::MappingSet;
use urm_storage::Catalog;

/// Evaluates the query with query-level sharing.
pub fn evaluate(
    query: &TargetQuery,
    mappings: &MappingSet,
    catalog: &Catalog,
) -> CoreResult<Evaluation> {
    let total_start = Instant::now();

    // Step 1-2: partition the mappings and pick representatives (Algorithm 1).
    let partition_start = Instant::now();
    let partitions = partition_mappings(query, mappings)?;
    let reps = representatives(&partitions, mappings);
    let partition_time = partition_start.elapsed();

    // Step 3: evaluate the representatives with `basic`.
    let mut evaluation = super::basic::evaluate_weighted(query, &reps, catalog, "q-sharing")?;
    evaluation.metrics.rewrite_time += partition_time;
    evaluation.metrics.representative_mappings = reps.len();
    evaluation.metrics.total_time = total_start.elapsed();
    Ok(evaluation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::basic;
    use crate::testkit;

    #[test]
    fn qsharing_matches_basic_on_every_paper_query() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        for query in [
            testkit::q0(),
            testkit::q1(),
            testkit::basic_example_query(),
            testkit::q2_product(),
            testkit::count_query(),
            testkit::sum_query(),
        ] {
            let a = basic::evaluate(&query, &mappings, &catalog).unwrap();
            let b = evaluate(&query, &mappings, &catalog).unwrap();
            assert!(
                a.answer.approx_eq(&b.answer, 1e-9),
                "answers differ for {}:\nbasic: {}\nq-sharing: {}",
                query.name(),
                a.answer,
                b.answer
            );
        }
    }

    #[test]
    fn qsharing_uses_representative_mappings_only() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        // q1 partitions the 5 mappings into 3 groups (Section IV's example).
        let eval = evaluate(&testkit::q1(), &mappings, &catalog).unwrap();
        assert_eq!(eval.metrics.representative_mappings, 3);
        let basic_eval = basic::evaluate(&testkit::q1(), &mappings, &catalog).unwrap();
        assert!(
            eval.metrics.exec.source_queries < basic_eval.metrics.exec.source_queries,
            "q-sharing should run fewer source queries"
        );
    }

    #[test]
    fn probabilities_of_representatives_sum_to_one() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let eval = evaluate(&testkit::q0(), &mappings, &catalog).unwrap();
        // Answers plus empty mass account for the whole distribution on q0 (every mapping maps
        // phone and addr, so nothing is empty).
        assert!(eval.answer.empty_probability() < 1e-9);
        assert!(
            (eval
                .answer
                .probability_of(&urm_storage::Tuple::new(vec![urm_storage::Value::from(
                    "aaa"
                )]))
                - 0.5)
                .abs()
                < 1e-9
        );
    }
}
