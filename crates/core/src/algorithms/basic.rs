//! The `basic` algorithm: one source query per possible mapping (Section III-B.1).

use crate::answer::ProbabilisticAnswer;
use crate::metrics::{EvalMetrics, Evaluation};
use crate::query::TargetQuery;
use crate::reformulate::{extract_answers, reformulate, Reformulated};
use crate::CoreResult;
use std::time::Instant;
use urm_engine::{optimize::optimize, Executor};
use urm_matching::{Mapping, MappingSet};
use urm_storage::Catalog;

/// Evaluates the query by reformulating and executing it once for every mapping in `mappings`.
pub fn evaluate(
    query: &TargetQuery,
    mappings: &MappingSet,
    catalog: &Catalog,
) -> CoreResult<Evaluation> {
    let weighted: Vec<(Mapping, f64)> = mappings
        .iter()
        .map(|m| (m.clone(), m.probability()))
        .collect();
    evaluate_weighted(query, &weighted, catalog, "basic")
}

/// The work-horse shared with q-sharing: evaluates the query once per `(mapping, probability)`
/// pair and aggregates duplicate answers.
pub(crate) fn evaluate_weighted(
    query: &TargetQuery,
    mappings: &[(Mapping, f64)],
    catalog: &Catalog,
    algorithm: &str,
) -> CoreResult<Evaluation> {
    let total_start = Instant::now();
    let mut metrics = EvalMetrics::new(algorithm);
    metrics.representative_mappings = mappings.len();
    let mut answer = ProbabilisticAnswer::new();
    let mut exec = Executor::new(catalog);
    let mut distinct = std::collections::HashSet::new();

    for (mapping, probability) in mappings {
        let rewrite_start = Instant::now();
        let reformulated = reformulate(query, mapping, catalog)?;
        metrics.rewrite_time += rewrite_start.elapsed();

        match reformulated {
            Reformulated::Empty => {
                let agg_start = Instant::now();
                answer.add_empty(*probability);
                metrics.aggregation_time += agg_start.elapsed();
            }
            Reformulated::Query(sq) => {
                distinct.insert(sq.clone());
                let plan_start = Instant::now();
                let plan = optimize(&sq.plan, catalog)?;
                metrics.plan_time += plan_start.elapsed();

                let result = exec.run(&plan)?;

                let agg_start = Instant::now();
                let tuples = extract_answers(&result, &sq.extraction);
                answer.add_distinct(tuples, *probability);
                metrics.aggregation_time += agg_start.elapsed();
            }
        }
    }

    metrics.exec = exec.into_stats();
    metrics.distinct_source_queries = distinct.len();
    metrics.total_time = total_start.elapsed();
    Ok(Evaluation { answer, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use urm_storage::{Tuple, Value};

    fn tuple(s: &str) -> Tuple {
        Tuple::new(vec![Value::from(s)])
    }

    #[test]
    fn basic_reproduces_the_papers_running_example() {
        // π_phone σ_addr='aaa' Person → (123, 0.5), (456, 0.8), (789, 0.2).
        let catalog = testkit::figure2_catalog();
        let query = testkit::basic_example_query();
        let mappings = testkit::figure3_mappings();
        let eval = evaluate(&query, &mappings, &catalog).unwrap();
        assert_eq!(eval.answer.len(), 3);
        assert!((eval.answer.probability_of(&tuple("123")) - 0.5).abs() < 1e-9);
        assert!((eval.answer.probability_of(&tuple("456")) - 0.8).abs() < 1e-9);
        assert!((eval.answer.probability_of(&tuple("789")) - 0.2).abs() < 1e-9);
        // basic runs one source query per mapping.
        assert_eq!(eval.metrics.exec.source_queries, 5);
        assert_eq!(eval.metrics.representative_mappings, 5);
    }

    #[test]
    fn basic_reproduces_q0_from_the_introduction() {
        // q0 = π_addr σ_phone='123' Person → (aaa, 0.5), (hk, 0.5).
        let catalog = testkit::figure2_catalog();
        let eval = evaluate(&testkit::q0(), &testkit::figure3_mappings(), &catalog).unwrap();
        assert_eq!(eval.answer.len(), 2);
        assert!((eval.answer.probability_of(&tuple("aaa")) - 0.5).abs() < 1e-9);
        assert!((eval.answer.probability_of(&tuple("hk")) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn count_queries_return_counts_per_mapping_group() {
        let catalog = testkit::figure2_catalog();
        let eval = evaluate(
            &testkit::count_query(),
            &testkit::figure3_mappings(),
            &catalog,
        )
        .unwrap();
        // σ_addr='aaa': m1,m2 (oaddr) → 2 rows; m3,m4,m5 (haddr) → 1 row.
        let two = Tuple::new(vec![Value::from(2i64)]);
        let one = Tuple::new(vec![Value::from(1i64)]);
        assert!((eval.answer.probability_of(&two) - 0.5).abs() < 1e-9);
        assert!((eval.answer.probability_of(&one) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sum_queries_aggregate_prices() {
        let catalog = testkit::figure2_catalog();
        let eval = evaluate(
            &testkit::sum_query(),
            &testkit::figure3_mappings(),
            &catalog,
        )
        .unwrap();
        // Every mapping with phone→ophone selects Alice; the product with C_Order yields both
        // orders so SUM(amount) = 111.5.  m4 (phone→hphone) selects Bob, same product, 111.5.
        // m5 maps Order.price to C_Order.total which does not exist … but C_Order.amount is the
        // only numeric column mapped, m5 maps price→total (unknown) so m5 is Empty.
        let sum = Tuple::new(vec![Value::from(111.5)]);
        assert!(eval.answer.probability_of(&sum) > 0.8);
    }

    #[test]
    fn metrics_record_rewrite_and_execution_work() {
        let catalog = testkit::figure2_catalog();
        let eval = evaluate(&testkit::q0(), &testkit::figure3_mappings(), &catalog).unwrap();
        assert!(eval.metrics.exec.operators_executed > 0);
        assert!(eval.metrics.exec.scans > 0);
        assert!(eval.metrics.distinct_source_queries <= 5);
        assert!(eval.metrics.distinct_source_queries >= 2);
    }
}
