//! The probabilistic-query evaluation algorithms of the paper.
//!
//! * [`basic`] — reformulate and run one source query per mapping (Section III-B.1);
//! * [`ebasic`] — deduplicate identical source queries first (Section III-B.2);
//! * [`emqo`] — evaluate the distinct source queries through a shared global plan built by a
//!   multi-query optimiser (Section III-B.3);
//! * [`qsharing`] — partition the mappings with the partition tree and evaluate one source
//!   query per representative mapping (Section IV);
//! * [`osharing`] — interleave reformulation and execution operator by operator, sharing work
//!   whenever mappings agree on the correspondences an operator needs (Sections V–VI);
//! * [`topk`] — the probabilistic top-k algorithm built on the o-sharing u-trace (Section VII);
//! * [`batch`] — batch evaluation of many queries over one mapping set, lowered onto one
//!   merged shared-operator DAG with optional parallel scheduling (the entry point of the
//!   `urm-service` serving layer);
//! * [`sharded`] — scatter-gather batch evaluation over N partitioned shard runtimes, with
//!   answers byte-identical to the single-node batch path.

pub mod basic;
pub mod batch;
pub mod ebasic;
pub mod emqo;
pub mod osharing;
pub mod qsharing;
pub mod sharded;
pub mod topk;

use crate::metrics::Evaluation;
use crate::query::TargetQuery;
use crate::strategy::Strategy;
use crate::CoreResult;
use urm_matching::MappingSet;
use urm_storage::Catalog;

/// Which evaluation algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// One source query per mapping.
    Basic,
    /// One source query per *distinct* reformulation.
    EBasic,
    /// Distinct source queries evaluated through a shared (MQO) global plan.
    EMqo,
    /// Query-level sharing via the partition tree.
    QSharing,
    /// Operator-level sharing with the given operator-selection strategy.
    OSharing(Strategy),
}

impl Algorithm {
    /// Short human-readable name (matches the labels used in the paper's figures).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Basic => "basic",
            Algorithm::EBasic => "e-basic",
            Algorithm::EMqo => "e-MQO",
            Algorithm::QSharing => "q-sharing",
            Algorithm::OSharing(Strategy::Random { .. }) => "o-sharing(Random)",
            Algorithm::OSharing(Strategy::Snf) => "o-sharing(SNF)",
            Algorithm::OSharing(Strategy::Sef) => "o-sharing(SEF)",
        }
    }
}

/// Evaluates a probabilistic query with the chosen algorithm.
///
/// All algorithms return identical probabilistic answers (that is the correctness claim the
/// integration tests verify); they differ in the amount of reformulation and execution work,
/// reported in [`Evaluation::metrics`].
pub fn evaluate(
    query: &TargetQuery,
    mappings: &MappingSet,
    catalog: &Catalog,
    algorithm: Algorithm,
) -> CoreResult<Evaluation> {
    match algorithm {
        Algorithm::Basic => basic::evaluate(query, mappings, catalog),
        Algorithm::EBasic => ebasic::evaluate(query, mappings, catalog),
        Algorithm::EMqo => emqo::evaluate(query, mappings, catalog),
        Algorithm::QSharing => qsharing::evaluate(query, mappings, catalog),
        Algorithm::OSharing(strategy) => osharing::evaluate(query, mappings, catalog, strategy),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::Basic.name(), "basic");
        assert_eq!(Algorithm::EBasic.name(), "e-basic");
        assert_eq!(Algorithm::EMqo.name(), "e-MQO");
        assert_eq!(Algorithm::QSharing.name(), "q-sharing");
        assert_eq!(Algorithm::OSharing(Strategy::Sef).name(), "o-sharing(SEF)");
        assert_eq!(
            Algorithm::OSharing(Strategy::Random { seed: 7 }).name(),
            "o-sharing(Random)"
        );
    }
}
