//! The `e-basic` algorithm: deduplicate identical source queries before executing them
//! (Section III-B.2).

use crate::answer::ProbabilisticAnswer;
use crate::metrics::{EvalMetrics, Evaluation};
use crate::query::TargetQuery;
use crate::reformulate::{clustered_reformulations, extract_answers};
use crate::CoreResult;
use std::time::Instant;
use urm_engine::{optimize::optimize, Executor};
use urm_matching::MappingSet;
use urm_storage::Catalog;

/// Reformulates the query through every mapping (like `basic`), but clusters identical source
/// queries and executes each distinct one exactly once with the summed probability.
pub fn evaluate(
    query: &TargetQuery,
    mappings: &MappingSet,
    catalog: &Catalog,
) -> CoreResult<Evaluation> {
    let total_start = Instant::now();
    let mut metrics = EvalMetrics::new("e-basic");
    metrics.representative_mappings = mappings.len();
    let mut answer = ProbabilisticAnswer::new();

    // Phase 1 (rewriting): a source query is still produced for every mapping — this is the
    // cost e-basic does NOT save, which is why q-sharing beats it.
    let rewrite_start = Instant::now();
    let (ordered, empty_probability) = clustered_reformulations(query, mappings, catalog)?;
    metrics.rewrite_time = rewrite_start.elapsed();
    metrics.distinct_source_queries = ordered.len();

    // Phase 2 (evaluation): run each distinct source query once.
    let mut exec = Executor::new(catalog);
    for (sq, probability) in ordered {
        let plan_start = Instant::now();
        let plan = optimize(&sq.plan, catalog)?;
        metrics.plan_time += plan_start.elapsed();

        let result = exec.run(&plan)?;

        let agg_start = Instant::now();
        answer.add_distinct(extract_answers(&result, &sq.extraction), probability);
        metrics.aggregation_time += agg_start.elapsed();
    }
    if empty_probability > 0.0 {
        answer.add_empty(empty_probability);
    }

    metrics.exec = exec.into_stats();
    metrics.total_time = total_start.elapsed();
    Ok(Evaluation { answer, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::basic;
    use crate::testkit;

    #[test]
    fn ebasic_matches_basic_on_every_paper_query() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        for query in [
            testkit::q0(),
            testkit::q1(),
            testkit::basic_example_query(),
            testkit::q2_product(),
            testkit::count_query(),
            testkit::sum_query(),
        ] {
            let a = basic::evaluate(&query, &mappings, &catalog).unwrap();
            let b = evaluate(&query, &mappings, &catalog).unwrap();
            assert!(
                a.answer.approx_eq(&b.answer, 1e-9),
                "answers differ for {}:\nbasic: {}\ne-basic: {}",
                query.name(),
                a.answer,
                b.answer
            );
        }
    }

    #[test]
    fn ebasic_executes_fewer_source_queries_than_basic() {
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let query = testkit::q0();
        let b = basic::evaluate(&query, &mappings, &catalog).unwrap();
        let e = evaluate(&query, &mappings, &catalog).unwrap();
        assert_eq!(b.metrics.exec.source_queries, 5);
        // q0 has 3 distinct translations (ophone/oaddr, ophone/haddr, hphone/haddr).
        assert_eq!(e.metrics.distinct_source_queries, 3);
        assert_eq!(e.metrics.exec.source_queries, 3);
        assert!(e.metrics.exec.operators_executed < b.metrics.exec.operators_executed);
    }

    #[test]
    fn q1_has_two_runnable_groups_plus_an_empty_one() {
        // q1's partitions are {m1,m2}, {m3,m4}, {m5}; m5 does not map pname so it is empty.
        let catalog = testkit::figure2_catalog();
        let mappings = testkit::figure3_mappings();
        let e = evaluate(&testkit::q1(), &mappings, &catalog).unwrap();
        assert_eq!(e.metrics.distinct_source_queries, 2);
        assert!((e.answer.empty_probability() - 0.1).abs() < 1e-9);
    }
}
