//! Probabilistic query answers.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use urm_storage::Tuple;

/// The answer of a probabilistic query: a set of `(tuple, probability)` pairs, where duplicate
/// tuples produced under different mappings have had their probabilities summed
/// (Section III-B, the `aggregate` step).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProbabilisticAnswer {
    entries: HashMap<Tuple, f64>,
    /// Probability mass of mappings whose source query returned no tuples (the paper's null
    /// tuple `θ`).  Kept for diagnostics; not part of the reported answers.
    empty_probability: f64,
}

impl ProbabilisticAnswer {
    /// Creates an empty answer.
    #[must_use]
    pub fn new() -> Self {
        ProbabilisticAnswer::default()
    }

    /// Adds `probability` mass to a tuple (summing with any existing mass).
    pub fn add(&mut self, tuple: Tuple, probability: f64) {
        if probability <= 0.0 {
            return;
        }
        *self.entries.entry(tuple).or_insert(0.0) += probability;
    }

    /// Adds every tuple of an iterator with the same probability.
    pub fn add_all<I: IntoIterator<Item = Tuple>>(&mut self, tuples: I, probability: f64) {
        for t in tuples {
            self.add(t, probability);
        }
    }

    /// Adds the *distinct* tuples of one source-query result with the same probability.
    ///
    /// Within a single mapping a tuple is either in the answer or not — producing it twice does
    /// not make it more likely — so duplicates inside one result contribute the mapping's
    /// probability only once (this mirrors the "remove duplicate tuples" step of the paper's
    /// Algorithm 4).
    pub fn add_distinct<I: IntoIterator<Item = Tuple>>(&mut self, tuples: I, probability: f64) {
        let mut seen = std::collections::HashSet::new();
        for t in tuples {
            if seen.insert(t.clone()) {
                self.add(t, probability);
            }
        }
    }

    /// Records that a mapping group with total probability `probability` produced no tuples.
    pub fn add_empty(&mut self, probability: f64) {
        self.empty_probability += probability.max(0.0);
    }

    /// Merges another answer into this one.
    pub fn merge(&mut self, other: &ProbabilisticAnswer) {
        for (t, p) in &other.entries {
            self.add(t.clone(), *p);
        }
        self.empty_probability += other.empty_probability;
    }

    /// The probability of a specific tuple (0 if absent).
    #[must_use]
    pub fn probability_of(&self, tuple: &Tuple) -> f64 {
        self.entries.get(tuple).copied().unwrap_or(0.0)
    }

    /// Probability mass that produced no answer tuples.
    #[must_use]
    pub fn empty_probability(&self) -> f64 {
        self.empty_probability
    }

    /// Number of distinct answer tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no answer tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The answers sorted by descending probability (ties broken by tuple order, so the result
    /// is deterministic).
    #[must_use]
    pub fn sorted(&self) -> Vec<(Tuple, f64)> {
        let mut v: Vec<(Tuple, f64)> = self.entries.iter().map(|(t, p)| (t.clone(), *p)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// The `k` most probable answers (exact semantics a top-k query must reproduce).
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<(Tuple, f64)> {
        let mut v = self.sorted();
        v.truncate(k);
        v
    }

    /// Iterates over `(tuple, probability)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, f64)> {
        self.entries.iter().map(|(t, p)| (t, *p))
    }

    /// The maximum probability of any answer tuple.
    #[must_use]
    pub fn max_probability(&self) -> f64 {
        self.entries.values().copied().fold(0.0, f64::max)
    }

    /// Total probability mass assigned to answers (can exceed 1: a single mapping may produce
    /// many tuples, each inheriting the full mapping probability).
    #[must_use]
    pub fn total_mass(&self) -> f64 {
        self.entries.values().sum()
    }

    /// Checks equality with another answer up to a probability tolerance; used by the tests
    /// that verify all evaluation algorithms agree.
    #[must_use]
    pub fn approx_eq(&self, other: &ProbabilisticAnswer, tolerance: f64) -> bool {
        if self.entries.len() != other.entries.len() {
            return false;
        }
        self.entries.iter().all(|(t, p)| {
            other
                .entries
                .get(t)
                .map(|q| (p - q).abs() <= tolerance)
                .unwrap_or(false)
        })
    }
}

impl fmt::Display for ProbabilisticAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} answer tuple(s):", self.len())?;
        for (t, p) in self.sorted() {
            writeln!(f, "  {t}  (p = {p:.4})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urm_storage::Value;

    fn t(s: &str) -> Tuple {
        Tuple::new(vec![Value::from(s)])
    }

    #[test]
    fn duplicates_accumulate_probability() {
        // The paper's basic example: (123, 0.5), (456, 0.8), (789, 0.2).
        let mut ans = ProbabilisticAnswer::new();
        // m1 (0.3): 123, 456 — m2 (0.2): 123, 456 — m3 (0.2): 456 — m4 (0.2): 789 — m5 (0.1): 456
        ans.add_all([t("123"), t("456")], 0.3);
        ans.add_all([t("123"), t("456")], 0.2);
        ans.add(t("456"), 0.2);
        ans.add(t("789"), 0.2);
        ans.add(t("456"), 0.1);
        assert_eq!(ans.len(), 3);
        assert!((ans.probability_of(&t("123")) - 0.5).abs() < 1e-9);
        assert!((ans.probability_of(&t("456")) - 0.8).abs() < 1e-9);
        assert!((ans.probability_of(&t("789")) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn sorted_and_top_k_follow_probability() {
        let mut ans = ProbabilisticAnswer::new();
        ans.add(t("a"), 0.2);
        ans.add(t("b"), 0.5);
        ans.add(t("c"), 0.3);
        let sorted = ans.sorted();
        assert_eq!(sorted[0].0, t("b"));
        assert_eq!(sorted[2].0, t("a"));
        let top2 = ans.top_k(2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[1].0, t("c"));
        assert_eq!(ans.max_probability(), 0.5);
    }

    #[test]
    fn zero_probability_additions_are_ignored() {
        let mut ans = ProbabilisticAnswer::new();
        ans.add(t("a"), 0.0);
        ans.add(t("b"), -0.1);
        assert!(ans.is_empty());
    }

    #[test]
    fn merge_combines_answers_and_empty_mass() {
        let mut a = ProbabilisticAnswer::new();
        a.add(t("x"), 0.4);
        a.add_empty(0.1);
        let mut b = ProbabilisticAnswer::new();
        b.add(t("x"), 0.2);
        b.add(t("y"), 0.3);
        b.add_empty(0.2);
        a.merge(&b);
        assert!((a.probability_of(&t("x")) - 0.6).abs() < 1e-9);
        assert!((a.probability_of(&t("y")) - 0.3).abs() < 1e-9);
        assert!((a.empty_probability() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let mut a = ProbabilisticAnswer::new();
        a.add(t("x"), 0.5);
        let mut b = ProbabilisticAnswer::new();
        b.add(t("x"), 0.5 + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        let mut c = ProbabilisticAnswer::new();
        c.add(t("x"), 0.7);
        assert!(!a.approx_eq(&c, 1e-9));
        let mut d = ProbabilisticAnswer::new();
        d.add(t("y"), 0.5);
        assert!(!a.approx_eq(&d, 1e-9));
    }

    #[test]
    fn ties_are_broken_deterministically() {
        let mut ans = ProbabilisticAnswer::new();
        ans.add(t("b"), 0.5);
        ans.add(t("a"), 0.5);
        let sorted = ans.sorted();
        assert_eq!(sorted[0].0, t("a"));
    }

    #[test]
    fn display_lists_answers() {
        let mut ans = ProbabilisticAnswer::new();
        ans.add(t("aaa"), 0.5);
        assert!(ans.to_string().contains("aaa"));
        assert!(ans.to_string().contains("0.5"));
    }
}
