//! # urm-core
//!
//! Probabilistic query evaluation over **uncertain schema matching** — a from-scratch Rust
//! implementation of the algorithms of R. Cheng, J. Gong, D. W. Cheung and J. Cheng,
//! *Evaluating Probabilistic Queries over Uncertain Matching*, ICDE 2012.
//!
//! ## The problem
//!
//! A schema matcher produces an *uncertain* matching between a source schema (with data) and a
//! target schema (queried by the user): a set of possible mappings `m_1 … m_h`, each a set of
//! attribute correspondences with a probability of being the correct one.  A probabilistic
//! query issued on the target schema returns every tuple that some mapping produces, weighted
//! by the total probability of the mappings that produce it.
//!
//! ## What this crate provides
//!
//! * a normalized [`TargetQuery`] model (selections, joins/products, projection, COUNT/SUM);
//! * [`reformulate`](reformulate::reformulate) — translation of a target query into a source
//!   query through one mapping, following the rules of Section VI-B;
//! * the three baseline evaluation strategies — [`basic`](algorithms::basic),
//!   [`e-basic`](algorithms::ebasic) and [`e-MQO`](algorithms::emqo);
//! * the paper's contributions — [`q-sharing`](algorithms::qsharing) (partition tree,
//!   Section IV), [`o-sharing`](algorithms::osharing) (e-units / u-trace with the Random, SNF
//!   and SEF operator-selection strategies, Sections V–VI) and the probabilistic
//!   [`top-k`](algorithms::topk) algorithm (Section VII);
//! * [`testkit`] — the paper's worked examples (Figures 1–3, queries q0/q1/q2) as reusable
//!   fixtures.
//!
//! ## Quick start
//!
//! ```
//! use urm_core::prelude::*;
//!
//! // The paper's running example: Figure 2's Customer data, Figure 3's five mappings.
//! let catalog = urm_core::testkit::figure2_catalog();
//! let mappings = urm_core::testkit::figure3_mappings();
//!
//! // q0 : π_addr σ_phone='123' Person
//! let q0 = TargetQuery::builder("q0")
//!     .relation("Person")
//!     .filter_eq("Person.phone", "123")
//!     .returning(["Person.addr"])
//!     .build()
//!     .unwrap();
//!
//! let eval = evaluate(&q0, &mappings, &catalog, Algorithm::OSharing(Strategy::Sef)).unwrap();
//! assert_eq!(eval.answer.len(), 2); // {(aaa, 0.5), (hk, 0.5)}
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod algorithms;
pub mod answer;
pub mod error;
pub mod eunit;
pub mod metrics;
pub mod partition;
pub mod query;
pub mod reformulate;
pub mod strategy;
pub mod testkit;

pub use algorithms::batch::{
    evaluate_batch, evaluate_batch_epoch, execute_prepared_batch, prepare_batch_epoch,
    prepare_batch_epoch_traced, BatchEvaluation, BatchOptions, PreparedBatchEvaluation,
};
pub use algorithms::sharded::{
    evaluate_batch_sharded, slice_relation_name, ShardSet, ShardStats, ShardedBatchEvaluation,
};
pub use algorithms::{evaluate, topk::top_k, topk::TopKEvaluation, Algorithm};
pub use answer::ProbabilisticAnswer;
pub use error::{CoreError, CoreResult};
pub use metrics::{EvalMetrics, Evaluation};
pub use query::{QueryOutput, TargetOp, TargetPredicate, TargetQuery};
pub use strategy::Strategy;
pub use urm_engine::{EpochDag, PinPolicy, DEFAULT_PIN_BUDGET_BYTES};

/// Convenience re-exports for downstream code and examples.
pub mod prelude {
    pub use crate::algorithms::{evaluate, topk::top_k, Algorithm};
    pub use crate::answer::ProbabilisticAnswer;
    pub use crate::metrics::Evaluation;
    pub use crate::query::{QueryOutput, TargetQuery};
    pub use crate::strategy::Strategy;
    pub use urm_engine::CompareOp;
    pub use urm_matching::{Mapping, MappingSet};
    pub use urm_storage::{Catalog, Tuple, Value};
}
