//! Execution units (e-units) — the state of a partially executed target query (Section V).
//!
//! An e-unit captures: which target operators have already been executed, the materialised
//! intermediate source relations they produced, and the set of mappings that share the
//! correspondences those operators used.  The u-trace of the paper is the tree of e-units that
//! the recursive evaluation (`run_qt`) produces; in this implementation the tree is implicit in
//! the recursion of [`crate::algorithms::osharing`], and `EUnit` is the node payload.

use crate::query::{QueryOutput, TargetOp, TargetPredicate, TargetQuery};
use std::collections::BTreeSet;
use std::sync::Arc;
use urm_storage::{AttrRef, Relation};

/// One connected group of target aliases whose (partial) result has been materialised together.
#[derive(Debug, Clone)]
pub struct Component {
    /// The target aliases folded into this component.
    pub aliases: BTreeSet<String>,
    /// The materialised intermediate relation, if any operator has touched the component yet.
    pub data: Option<Arc<Relation>>,
    /// The `(target alias, source relation)` scans already folded into `data`.
    pub scans: BTreeSet<(String, String)>,
}

impl Component {
    fn single(alias: &str) -> Self {
        Component {
            aliases: std::iter::once(alias.to_string()).collect(),
            data: None,
            scans: BTreeSet::new(),
        }
    }

    /// Whether the component has been materialised to an empty relation.
    #[must_use]
    pub fn is_materialised_empty(&self) -> bool {
        self.data.as_ref().map(|d| d.is_empty()).unwrap_or(false)
    }
}

/// The state of a partially executed target query shared by a set of mappings.
#[derive(Debug, Clone)]
pub struct EUnit {
    /// Indices (into the representative-mapping list) of the mappings sharing this state.
    pub mapping_indices: Vec<usize>,
    /// Total probability of those mappings.
    pub probability: f64,
    /// Connected components of the query's aliases.
    pub components: Vec<Component>,
    /// Indices of the predicates already executed.
    pub executed_predicates: BTreeSet<usize>,
    /// Whether the output operator (projection / aggregate) has been executed.
    pub output_done: bool,
}

impl EUnit {
    /// The initial e-unit: every alias in its own component, nothing executed.
    #[must_use]
    pub fn initial(query: &TargetQuery, mapping_indices: Vec<usize>, probability: f64) -> Self {
        EUnit {
            mapping_indices,
            probability,
            components: query
                .relations()
                .iter()
                .map(|b| Component::single(&b.alias))
                .collect(),
            executed_predicates: BTreeSet::new(),
            output_done: false,
        }
    }

    /// Index of the component containing `alias`.
    #[must_use]
    pub fn component_of(&self, alias: &str) -> Option<usize> {
        self.components
            .iter()
            .position(|c| c.aliases.contains(alias))
    }

    /// Whether every predicate of the query has been executed.
    #[must_use]
    pub fn predicates_done(&self, query: &TargetQuery) -> bool {
        self.executed_predicates.len() == query.predicates().len()
    }

    /// Whether the whole query has been executed for this e-unit.
    #[must_use]
    pub fn is_complete(&self, query: &TargetQuery) -> bool {
        self.predicates_done(query) && self.output_done
    }

    /// Whether any component has been materialised to an empty relation (the pruning condition
    /// of `run_qt` Case 2).
    #[must_use]
    pub fn has_empty_component(&self) -> bool {
        self.components.iter().any(Component::is_materialised_empty)
    }

    /// The target operators that may legally be executed next (`next()`'s correctness filter,
    /// Section VI-A):
    ///
    /// * a comparison selection is always executable;
    /// * an attribute-equality selection requires both attributes to live in the same component
    ///   (otherwise the connecting product must run first);
    /// * a product requires two distinct components;
    /// * the output operator requires all predicates done and a single remaining component.
    #[must_use]
    pub fn valid_operators(&self, query: &TargetQuery) -> Vec<TargetOp> {
        let mut ops = Vec::new();
        for (i, pred) in query.predicates().iter().enumerate() {
            if self.executed_predicates.contains(&i) {
                continue;
            }
            match pred {
                TargetPredicate::Compare { .. } => ops.push(TargetOp::Predicate(i)),
                TargetPredicate::AttrEq { left, right } => {
                    if let (Some(a), Some(b)) = (
                        self.component_of(&left.alias),
                        self.component_of(&right.alias),
                    ) {
                        if a == b {
                            ops.push(TargetOp::Predicate(i));
                        }
                    }
                }
            }
        }
        // Products between every pair of distinct components (represented by their first alias).
        for i in 0..self.components.len() {
            for j in (i + 1)..self.components.len() {
                let left_alias = self.components[i]
                    .aliases
                    .iter()
                    .next()
                    .expect("components are never empty")
                    .clone();
                let right_alias = self.components[j]
                    .aliases
                    .iter()
                    .next()
                    .expect("components are never empty")
                    .clone();
                ops.push(TargetOp::Product {
                    left_alias,
                    right_alias,
                });
            }
        }
        if !self.output_done && self.predicates_done(query) && self.components.len() == 1 {
            ops.push(TargetOp::Output);
        }
        ops
    }

    /// The target attributes whose correspondences are needed to execute `op` — the attributes
    /// the mapping set is partitioned on before the operator is reformulated.
    ///
    /// A product only needs correspondences for the side(s) that have not been materialised yet
    /// (Case 1 of the binary reformulation rule needs none at all).
    #[must_use]
    pub fn used_attributes(&self, query: &TargetQuery, op: &TargetOp) -> Vec<AttrRef> {
        match op {
            TargetOp::Predicate(i) => query.predicates()[*i]
                .attributes()
                .into_iter()
                .cloned()
                .collect(),
            TargetOp::Product {
                left_alias,
                right_alias,
            } => {
                let mut attrs = Vec::new();
                for alias in [left_alias, right_alias] {
                    if let Some(ci) = self.component_of(alias) {
                        let comp = &self.components[ci];
                        if comp.data.is_none() {
                            for a in &comp.aliases {
                                attrs.extend(query.attributes_of_alias(a));
                            }
                        }
                    }
                }
                // The product also consumes the correspondences of any still-pending join
                // predicate that connects the two components: executing the product rearranges
                // those predicates into the join (the paper's `reorder_op`), so the partition
                // must respect them as well.
                for (i, pred) in query.predicates().iter().enumerate() {
                    if self.executed_predicates.contains(&i) {
                        continue;
                    }
                    if let TargetPredicate::AttrEq { left, right } = pred {
                        if self.spans_components(left_alias, right_alias, left, right) {
                            attrs.push(left.clone());
                            attrs.push(right.clone());
                        }
                    }
                }
                attrs
            }
            TargetOp::Output => match query.output() {
                QueryOutput::Count => Vec::new(),
                QueryOutput::Sum(attr) => vec![attr.clone()],
                QueryOutput::Tuples(attrs) => attrs.clone(),
            },
        }
    }

    /// Whether the given attribute pair connects the components of `left_alias` and
    /// `right_alias` (in either direction).
    #[must_use]
    pub fn spans_components(
        &self,
        left_alias: &str,
        right_alias: &str,
        a: &AttrRef,
        b: &AttrRef,
    ) -> bool {
        let (Some(lc), Some(rc)) = (
            self.component_of(left_alias),
            self.component_of(right_alias),
        ) else {
            return false;
        };
        let (Some(ac), Some(bc)) = (self.component_of(&a.alias), self.component_of(&b.alias))
        else {
            return false;
        };
        (ac == lc && bc == rc) || (ac == rc && bc == lc)
    }

    /// The indices of the still-pending join predicates that connect the components of the two
    /// aliases — the predicates a product execution folds into its join condition.
    #[must_use]
    pub fn spanning_join_predicates(
        &self,
        query: &TargetQuery,
        left_alias: &str,
        right_alias: &str,
    ) -> Vec<usize> {
        query
            .predicates()
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.executed_predicates.contains(i))
            .filter_map(|(i, pred)| match pred {
                TargetPredicate::AttrEq { left, right }
                    if self.spans_components(left_alias, right_alias, left, right) =>
                {
                    Some(i)
                }
                _ => None,
            })
            .collect()
    }

    /// Marks a predicate as executed (used by the o-sharing driver when building children).
    pub fn mark_predicate(&mut self, index: usize) {
        self.executed_predicates.insert(index);
    }

    /// Merges component `b` into component `a`, replacing the data with `data`.
    pub fn merge_components(&mut self, a: usize, b: usize, data: Arc<Relation>) {
        assert_ne!(a, b, "cannot merge a component with itself");
        let (keep, remove) = if a < b { (a, b) } else { (b, a) };
        let removed = self.components.remove(remove);
        let target = &mut self.components[keep];
        target.aliases.extend(removed.aliases);
        target.scans.extend(removed.scans);
        target.data = Some(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use urm_storage::{Attribute, DataType, Schema};

    fn empty_relation() -> Arc<Relation> {
        Arc::new(Relation::empty(Schema::new(
            "tmp",
            vec![Attribute::new("x", DataType::Int)],
        )))
    }

    #[test]
    fn initial_state_has_one_component_per_alias() {
        let q = testkit::q2_product();
        let u = EUnit::initial(&q, vec![0, 1, 2], 0.7);
        assert_eq!(u.components.len(), 2);
        assert_eq!(u.component_of("Person"), Some(0));
        assert_eq!(u.component_of("Order"), Some(1));
        assert_eq!(u.component_of("Ghost"), None);
        assert!(!u.is_complete(&q));
        assert!(!u.has_empty_component());
    }

    #[test]
    fn valid_operators_initially_exclude_output() {
        let q = testkit::q2_product();
        let u = EUnit::initial(&q, vec![0], 1.0);
        let ops = u.valid_operators(&q);
        // Two comparison predicates plus the product; output not yet valid.
        assert_eq!(ops.len(), 3);
        assert!(!ops.contains(&TargetOp::Output));
        assert!(ops.iter().any(|o| matches!(o, TargetOp::Product { .. })));
    }

    #[test]
    fn output_becomes_valid_after_predicates_and_merge() {
        let q = testkit::q2_product();
        let mut u = EUnit::initial(&q, vec![0], 1.0);
        u.mark_predicate(0);
        u.mark_predicate(1);
        assert!(u.predicates_done(&q));
        // Still two components → output not valid yet.
        assert!(!u.valid_operators(&q).contains(&TargetOp::Output));
        u.merge_components(0, 1, empty_relation());
        assert_eq!(u.components.len(), 1);
        let ops = u.valid_operators(&q);
        assert!(ops.contains(&TargetOp::Output));
        // The merged-in empty data is detected.
        assert!(u.has_empty_component());
    }

    #[test]
    fn join_predicate_requires_same_component() {
        let q = TargetQuery::builder("join-q")
            .relation("PO")
            .relation("Item")
            .join("PO.orderNum", "Item.orderNum")
            .returning(["Item.itemNum"])
            .build()
            .unwrap();
        let mut u = EUnit::initial(&q, vec![0], 1.0);
        // Before the product, the join predicate is not a valid operator.
        assert!(!u.valid_operators(&q).contains(&TargetOp::Predicate(0)));
        u.merge_components(0, 1, empty_relation());
        assert!(u.valid_operators(&q).contains(&TargetOp::Predicate(0)));
    }

    #[test]
    fn used_attributes_for_each_operator_kind() {
        let q = testkit::q2_product();
        let u = EUnit::initial(&q, vec![0], 1.0);
        // Predicate 0 = Person.phone comparison.
        let attrs = u.used_attributes(&q, &TargetOp::Predicate(0));
        assert_eq!(attrs, vec![AttrRef::new("Person", "phone")]);
        // Product with both sides unmaterialised uses the query attributes of both aliases.
        let product = TargetOp::Product {
            left_alias: "Person".into(),
            right_alias: "Order".into(),
        };
        let attrs = u.used_attributes(&q, &product);
        assert!(attrs.contains(&AttrRef::new("Person", "phone")));
        assert!(attrs.contains(&AttrRef::new("Order", "price")));
        // Output of a tuple query uses its projection attributes.
        let attrs = u.used_attributes(&q, &TargetOp::Output);
        assert_eq!(attrs.len(), 2);
        // COUNT output uses no attributes.
        let count_q = testkit::count_query();
        let cu = EUnit::initial(&count_q, vec![0], 1.0);
        assert!(cu.used_attributes(&count_q, &TargetOp::Output).is_empty());
    }

    #[test]
    fn product_with_materialised_side_needs_no_attributes_for_it() {
        let q = testkit::q2_product();
        let mut u = EUnit::initial(&q, vec![0], 1.0);
        u.components[0].data = Some(empty_relation());
        let product = TargetOp::Product {
            left_alias: "Person".into(),
            right_alias: "Order".into(),
        };
        let attrs = u.used_attributes(&q, &product);
        assert!(attrs.iter().all(|a| a.alias == "Order"));
    }
}
