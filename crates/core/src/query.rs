//! The normalized target-query model.
//!
//! The paper's query model (Section III-A, Table III) consists of selections, projections,
//! Cartesian products and COUNT/SUM aggregates over target relations.  Queries are held here in
//! a normalized form — a set of aliased target relations, a conjunction of predicates, and an
//! output specification — which is exactly the shape the partition tree (q-sharing) and the
//! operator-at-a-time evaluation (o-sharing) reason about.  Lowering to executable
//! [`urm_engine::Plan`]s happens during reformulation.

use crate::{CoreError, CoreResult};
use serde::{Deserialize, Serialize};
use std::fmt;
use urm_engine::CompareOp;
use urm_storage::{AttrRef, Value};

/// Binding of an alias to a target relation (`PO1 → PurchaseOrder`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RelationBinding {
    /// Alias used by attribute references in the query.
    pub alias: String,
    /// Target relation name the alias stands for.
    pub relation: String,
}

/// A predicate of the target query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TargetPredicate {
    /// `alias.attr op constant`.
    Compare {
        /// Target attribute (alias-qualified).
        attr: AttrRef,
        /// Comparison operator.
        op: CompareOp,
        /// Constant operand.
        value: Value,
    },
    /// `left = right` between two target attributes (a join condition).
    AttrEq {
        /// Left target attribute.
        left: AttrRef,
        /// Right target attribute.
        right: AttrRef,
    },
}

impl TargetPredicate {
    /// The target attributes referenced by this predicate.
    #[must_use]
    pub fn attributes(&self) -> Vec<&AttrRef> {
        match self {
            TargetPredicate::Compare { attr, .. } => vec![attr],
            TargetPredicate::AttrEq { left, right } => vec![left, right],
        }
    }

    /// The aliases referenced by this predicate.
    #[must_use]
    pub fn aliases(&self) -> Vec<&str> {
        self.attributes().iter().map(|a| a.alias.as_str()).collect()
    }
}

impl fmt::Display for TargetPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetPredicate::Compare { attr, op, value } => write!(f, "{attr} {op} {value}"),
            TargetPredicate::AttrEq { left, right } => write!(f, "{left} = {right}"),
        }
    }
}

/// What the query returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryOutput {
    /// The listed target attributes of every qualifying tuple (an explicit projection; the
    /// normalized model requires `SELECT *` queries to spell out the attributes of interest).
    Tuples(Vec<AttrRef>),
    /// `COUNT(*)` over the qualifying tuples.
    Count,
    /// `SUM(attr)` over the qualifying tuples.
    Sum(AttrRef),
}

impl QueryOutput {
    /// Target attributes referenced by the output clause.
    #[must_use]
    pub fn attributes(&self) -> Vec<&AttrRef> {
        match self {
            QueryOutput::Tuples(attrs) => attrs.iter().collect(),
            QueryOutput::Count => Vec::new(),
            QueryOutput::Sum(attr) => vec![attr],
        }
    }

    /// Whether the output is an aggregate.
    #[must_use]
    pub fn is_aggregate(&self) -> bool {
        matches!(self, QueryOutput::Count | QueryOutput::Sum(_))
    }
}

/// A single target-query operator, as enumerated by o-sharing's `next()` function.
///
/// The normalized query corresponds to the operator tree
/// `output( σ_preds ( alias_1 × alias_2 × … ) )`; this enum names each of those operators so
/// that the selection strategies (Random / SNF / SEF) can choose among them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetOp {
    /// The `i`-th predicate of the query.
    Predicate(usize),
    /// The Cartesian product that merges the components containing the two aliases.
    Product {
        /// An alias inside the left component.
        left_alias: String,
        /// An alias inside the right component.
        right_alias: String,
    },
    /// The output operator (projection or aggregate).
    Output,
}

impl fmt::Display for TargetOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetOp::Predicate(i) => write!(f, "σ#{i}"),
            TargetOp::Product {
                left_alias,
                right_alias,
            } => write!(f, "{left_alias} × {right_alias}"),
            TargetOp::Output => write!(f, "output"),
        }
    }
}

/// A normalized target query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetQuery {
    name: String,
    relations: Vec<RelationBinding>,
    predicates: Vec<TargetPredicate>,
    output: QueryOutput,
}

impl TargetQuery {
    /// Starts building a query with the given name (e.g. `"Q4"`).
    #[must_use]
    pub fn builder(name: impl Into<String>) -> TargetQueryBuilder {
        TargetQueryBuilder {
            name: name.into(),
            relations: Vec::new(),
            predicates: Vec::new(),
            output: None,
        }
    }

    /// The query's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The aliased target relations.
    #[must_use]
    pub fn relations(&self) -> &[RelationBinding] {
        &self.relations
    }

    /// The conjunctive predicates.
    #[must_use]
    pub fn predicates(&self) -> &[TargetPredicate] {
        &self.predicates
    }

    /// The output clause.
    #[must_use]
    pub fn output(&self) -> &QueryOutput {
        &self.output
    }

    /// Resolves an alias to its target relation name.
    #[must_use]
    pub fn relation_of(&self, alias: &str) -> Option<&str> {
        self.relations
            .iter()
            .find(|b| b.alias == alias)
            .map(|b| b.relation.as_str())
    }

    /// Converts an alias-qualified attribute reference into a schema-level one
    /// (`Item1.price → Item.price`), which is the level at which mapping correspondences live.
    pub fn schema_attr(&self, attr: &AttrRef) -> CoreResult<AttrRef> {
        let relation = self.relation_of(&attr.alias).ok_or_else(|| {
            CoreError::InvalidQuery(format!("attribute {attr} references unbound alias"))
        })?;
        Ok(AttrRef::new(relation, attr.attr.clone()))
    }

    /// All distinct target attributes the query mentions (predicates first, then output), in a
    /// deterministic order.  These are the `l` attributes of the paper's partition tree.
    #[must_use]
    pub fn attributes_used(&self) -> Vec<AttrRef> {
        let mut seen = Vec::new();
        let mut push = |a: &AttrRef| {
            if !seen.contains(a) {
                seen.push(a.clone());
            }
        };
        for p in &self.predicates {
            for a in p.attributes() {
                push(a);
            }
        }
        for a in self.output.attributes() {
            push(a);
        }
        seen
    }

    /// The attributes of a particular alias that the query references.
    #[must_use]
    pub fn attributes_of_alias(&self, alias: &str) -> Vec<AttrRef> {
        self.attributes_used()
            .into_iter()
            .filter(|a| a.alias == alias)
            .collect()
    }

    /// The full list of target operators (predicates, the products that connect the aliases,
    /// and the output operator).  The number of operators is the `l` of the paper's analysis.
    #[must_use]
    pub fn operators(&self) -> Vec<TargetOp> {
        let mut ops: Vec<TargetOp> = (0..self.predicates.len())
            .map(TargetOp::Predicate)
            .collect();
        // One product per additional relation, linking it to the first alias by default; the
        // o-sharing state machine re-derives the actual component pairs dynamically.
        for binding in self.relations.iter().skip(1) {
            ops.push(TargetOp::Product {
                left_alias: self.relations[0].alias.clone(),
                right_alias: binding.alias.clone(),
            });
        }
        ops.push(TargetOp::Output);
        ops
    }

    /// Number of target operators.
    #[must_use]
    pub fn operator_count(&self) -> usize {
        self.predicates.len() + self.relations.len().saturating_sub(1) + 1
    }

    /// Number of selection (and join) predicates.
    #[must_use]
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// Number of Cartesian products implied by the relation list.
    #[must_use]
    pub fn product_count(&self) -> usize {
        self.relations.len().saturating_sub(1)
    }

    fn validate(&self) -> CoreResult<()> {
        if self.relations.is_empty() {
            return Err(CoreError::InvalidQuery("query binds no relations".into()));
        }
        let mut aliases = std::collections::BTreeSet::new();
        for b in &self.relations {
            if !aliases.insert(b.alias.clone()) {
                return Err(CoreError::InvalidQuery(format!(
                    "alias '{}' bound more than once",
                    b.alias
                )));
            }
        }
        for p in &self.predicates {
            for a in p.attributes() {
                if self.relation_of(&a.alias).is_none() {
                    return Err(CoreError::InvalidQuery(format!(
                        "predicate references unbound alias '{}'",
                        a.alias
                    )));
                }
            }
        }
        match &self.output {
            QueryOutput::Tuples(attrs) if attrs.is_empty() => {
                return Err(CoreError::InvalidQuery(
                    "tuple output must list at least one attribute".into(),
                ));
            }
            QueryOutput::Tuples(attrs) => {
                for a in attrs {
                    if self.relation_of(&a.alias).is_none() {
                        return Err(CoreError::InvalidQuery(format!(
                            "output references unbound alias '{}'",
                            a.alias
                        )));
                    }
                }
            }
            QueryOutput::Sum(a) => {
                if self.relation_of(&a.alias).is_none() {
                    return Err(CoreError::InvalidQuery(format!(
                        "SUM references unbound alias '{}'",
                        a.alias
                    )));
                }
            }
            QueryOutput::Count => {}
        }
        Ok(())
    }
}

impl fmt::Display for TargetQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        match &self.output {
            QueryOutput::Tuples(attrs) => {
                let cols: Vec<String> = attrs.iter().map(|a| a.qualified()).collect();
                write!(f, "π[{}] ", cols.join(", "))?;
            }
            QueryOutput::Count => write!(f, "COUNT ")?,
            QueryOutput::Sum(a) => write!(f, "SUM({a}) ")?,
        }
        for p in &self.predicates {
            write!(f, "σ[{p}] ")?;
        }
        let rels: Vec<String> = self
            .relations
            .iter()
            .map(|b| {
                if b.alias == b.relation {
                    b.relation.clone()
                } else {
                    format!("{} AS {}", b.relation, b.alias)
                }
            })
            .collect();
        write!(f, "({})", rels.join(" × "))
    }
}

/// Builder for [`TargetQuery`].
#[derive(Debug, Clone)]
pub struct TargetQueryBuilder {
    name: String,
    relations: Vec<RelationBinding>,
    predicates: Vec<TargetPredicate>,
    output: Option<QueryOutput>,
}

impl TargetQueryBuilder {
    /// Binds a target relation under its own name.
    #[must_use]
    pub fn relation(self, relation: impl Into<String>) -> Self {
        let relation = relation.into();
        self.relation_as(relation.clone(), relation)
    }

    /// Binds a target relation under an explicit alias.
    #[must_use]
    pub fn relation_as(mut self, relation: impl Into<String>, alias: impl Into<String>) -> Self {
        self.relations.push(RelationBinding {
            alias: alias.into(),
            relation: relation.into(),
        });
        self
    }

    /// Adds an equality selection `alias.attr = value`.
    #[must_use]
    pub fn filter_eq(self, attr: &str, value: impl Into<Value>) -> Self {
        self.filter(attr, CompareOp::Eq, value)
    }

    /// Adds a comparison selection `alias.attr op value`.
    #[must_use]
    pub fn filter(mut self, attr: &str, op: CompareOp, value: impl Into<Value>) -> Self {
        self.predicates.push(TargetPredicate::Compare {
            attr: AttrRef::parse(attr),
            op,
            value: value.into(),
        });
        self
    }

    /// Adds a join predicate `left = right`.
    #[must_use]
    pub fn join(mut self, left: &str, right: &str) -> Self {
        self.predicates.push(TargetPredicate::AttrEq {
            left: AttrRef::parse(left),
            right: AttrRef::parse(right),
        });
        self
    }

    /// Sets the output to a projection of target attributes (given as `alias.attr` strings).
    #[must_use]
    pub fn returning<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.output = Some(QueryOutput::Tuples(
            attrs
                .into_iter()
                .map(|s| AttrRef::parse(s.as_ref()))
                .collect(),
        ));
        self
    }

    /// Sets the output to `COUNT(*)`.
    #[must_use]
    pub fn count(mut self) -> Self {
        self.output = Some(QueryOutput::Count);
        self
    }

    /// Sets the output to `SUM(alias.attr)`.
    #[must_use]
    pub fn sum(mut self, attr: &str) -> Self {
        self.output = Some(QueryOutput::Sum(AttrRef::parse(attr)));
        self
    }

    /// Finishes and validates the query.
    pub fn build(self) -> CoreResult<TargetQuery> {
        let output = self
            .output
            .ok_or_else(|| CoreError::InvalidQuery("query has no output clause".into()))?;
        let q = TargetQuery {
            name: self.name,
            relations: self.relations,
            predicates: self.predicates,
            output,
        };
        q.validate()?;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `q0 : π_addr σ_phone='123' Person` from the paper's introduction.
    fn q0() -> TargetQuery {
        TargetQuery::builder("q0")
            .relation("Person")
            .filter_eq("Person.phone", "123")
            .returning(["Person.addr"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_constructs_q0() {
        let q = q0();
        assert_eq!(q.name(), "q0");
        assert_eq!(q.relations().len(), 1);
        assert_eq!(q.predicate_count(), 1);
        assert_eq!(q.product_count(), 0);
        assert_eq!(q.operator_count(), 2);
        assert!(!q.output().is_aggregate());
    }

    #[test]
    fn attributes_used_in_order_and_deduplicated() {
        let q = TargetQuery::builder("q")
            .relation("PO")
            .relation("Item")
            .filter_eq("PO.telephone", "335-1736")
            .join("PO.orderNum", "Item.orderNum")
            .returning(["Item.itemNum", "PO.telephone"])
            .build()
            .unwrap();
        let attrs = q.attributes_used();
        assert_eq!(
            attrs,
            vec![
                AttrRef::new("PO", "telephone"),
                AttrRef::new("PO", "orderNum"),
                AttrRef::new("Item", "orderNum"),
                AttrRef::new("Item", "itemNum"),
            ]
        );
        assert_eq!(q.attributes_of_alias("Item").len(), 2);
    }

    #[test]
    fn schema_attr_resolves_aliases() {
        let q = TargetQuery::builder("q")
            .relation_as("Item", "Item1")
            .relation_as("Item", "Item2")
            .join("Item1.orderNum", "Item2.orderNum")
            .returning(["Item1.itemNum"])
            .build()
            .unwrap();
        let schema_level = q.schema_attr(&AttrRef::new("Item1", "orderNum")).unwrap();
        assert_eq!(schema_level, AttrRef::new("Item", "orderNum"));
        assert!(q.schema_attr(&AttrRef::new("Ghost", "x")).is_err());
    }

    #[test]
    fn operators_enumerate_predicates_products_and_output() {
        let q = TargetQuery::builder("q")
            .relation("PO")
            .relation("Item")
            .filter_eq("PO.priority", 2i64)
            .filter_eq("Item.quantity", 10i64)
            .returning(["PO.orderNum"])
            .build()
            .unwrap();
        let ops = q.operators();
        assert_eq!(ops.len(), 4); // 2 predicates + 1 product + output
        assert!(ops.contains(&TargetOp::Predicate(0)));
        assert!(ops.contains(&TargetOp::Output));
        assert!(matches!(ops[2], TargetOp::Product { .. }));
    }

    #[test]
    fn validation_rejects_bad_queries() {
        // No relations.
        assert!(matches!(
            TargetQuery::builder("bad").returning(["R.a"]).build(),
            Err(CoreError::InvalidQuery(_))
        ));
        // Duplicate alias.
        assert!(TargetQuery::builder("bad")
            .relation("PO")
            .relation("PO")
            .returning(["PO.a"])
            .build()
            .is_err());
        // Unbound alias in predicate.
        assert!(TargetQuery::builder("bad")
            .relation("PO")
            .filter_eq("Item.quantity", 1i64)
            .returning(["PO.a"])
            .build()
            .is_err());
        // Missing output.
        assert!(TargetQuery::builder("bad").relation("PO").build().is_err());
        // Empty projection list.
        assert!(TargetQuery::builder("bad")
            .relation("PO")
            .returning(Vec::<String>::new())
            .build()
            .is_err());
        // Unbound alias in SUM.
        assert!(TargetQuery::builder("bad")
            .relation("PO")
            .sum("Item.price")
            .build()
            .is_err());
    }

    #[test]
    fn aggregates_are_flagged() {
        let q = TargetQuery::builder("q5")
            .relation("PO")
            .filter_eq("PO.telephone", "335-1736")
            .count()
            .build()
            .unwrap();
        assert!(q.output().is_aggregate());
        assert_eq!(q.output().attributes().len(), 0);

        let q9 = TargetQuery::builder("q9")
            .relation("PO")
            .relation("Item")
            .sum("Item.price")
            .build()
            .unwrap();
        assert_eq!(q9.output().attributes().len(), 1);
    }

    #[test]
    fn display_is_informative() {
        let q = q0();
        let s = q.to_string();
        assert!(s.contains("q0"));
        assert!(s.contains("Person.addr"));
        assert!(s.contains("Person.phone = 123"));
    }
}
