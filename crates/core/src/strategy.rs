//! Operator-selection strategies for o-sharing (Section VI-A).
//!
//! When an e-unit has several valid target operators, o-sharing must pick which one to execute
//! next.  The paper studies three strategies: **Random**, **SNF** (Smallest Number of partitions
//! First) and **SEF** (Smallest Entropy First).  SNF looks only at how many mapping partitions
//! an operator induces; SEF additionally weighs how the mappings are spread across those
//! partitions through the Shannon entropy of the partition-size distribution, preferring
//! operators whose result can be shared by a large fraction of the mappings.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An operator-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Strategy {
    /// Pick a valid operator pseudo-randomly (deterministic for a given seed).
    Random {
        /// Seed for the internal xorshift generator.
        seed: u64,
    },
    /// Smallest Number of partitions First.
    Snf,
    /// Smallest Entropy First (the paper's best-performing strategy; the default).
    #[default]
    Sef,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Random { .. } => f.write_str("Random"),
            Strategy::Snf => f.write_str("SNF"),
            Strategy::Sef => f.write_str("SEF"),
        }
    }
}

/// The Shannon entropy (base 2) of a partition of `total = Σ sizes` mappings, as in
/// Definition 1 of the paper.  An empty partition list has entropy 0.
#[must_use]
pub fn entropy(partition_sizes: &[usize]) -> f64 {
    let total: usize = partition_sizes.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut e = 0.0;
    for &size in partition_sizes {
        if size == 0 {
            continue;
        }
        let p = size as f64 / total as f64;
        e -= p * p.log2();
    }
    e
}

/// A deterministic xorshift step used by the Random strategy (keeps the core crate free of the
/// `rand` dependency while staying reproducible).
#[must_use]
pub fn xorshift(state: u64) -> u64 {
    let mut x = state.max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// Chooses the index of the next operator among `candidates`, where each candidate carries the
/// sizes of the mapping partitions it would induce.  `rng_state` is only consulted (and
/// advanced) by the Random strategy.
#[must_use]
pub fn select_operator(
    strategy: Strategy,
    rng_state: &mut u64,
    candidates: &[Vec<usize>],
) -> usize {
    assert!(!candidates.is_empty(), "no candidate operators");
    match strategy {
        Strategy::Random { .. } => {
            *rng_state = xorshift(*rng_state);
            (*rng_state as usize) % candidates.len()
        }
        Strategy::Snf => {
            let mut best = 0usize;
            let mut best_count = usize::MAX;
            for (i, sizes) in candidates.iter().enumerate() {
                let count = sizes.iter().filter(|&&s| s > 0).count();
                if count < best_count {
                    best_count = count;
                    best = i;
                }
            }
            best
        }
        Strategy::Sef => {
            let mut best = 0usize;
            let mut best_entropy = f64::INFINITY;
            for (i, sizes) in candidates.iter().enumerate() {
                let e = entropy(sizes);
                if e < best_entropy - 1e-12 {
                    best_entropy = e;
                    best = i;
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_matches_the_papers_figure7_example() {
        // Figure 7: o1 splits the mappings 30/30/40 (entropy ≈ 1.57… — the paper rounds to
        // 1.53 with its exact fractions 30/10/… illustration); o2 splits them 10/70/10/10.
        // We check the ordering property the paper relies on: E(o2) < E(o1).
        let e_o1 = entropy(&[30, 30, 40]);
        let e_o2 = entropy(&[10, 70, 10, 10]);
        assert!(e_o2 < e_o1);
        assert!((e_o2 - 1.3567796494470394).abs() < 1e-9);
    }

    #[test]
    fn entropy_edge_cases() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[5]), 0.0);
        assert!((entropy(&[1, 1]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        // Zero-sized partitions are ignored.
        assert_eq!(entropy(&[4, 0, 0]), 0.0);
    }

    #[test]
    fn snf_prefers_fewer_partitions() {
        // Candidate 0: 3 partitions, candidate 1: 4 partitions → SNF picks 0 (the paper's o1).
        let mut rng = 1;
        let choice = select_operator(
            Strategy::Snf,
            &mut rng,
            &[vec![30, 30, 40], vec![10, 70, 10, 10]],
        );
        assert_eq!(choice, 0);
    }

    #[test]
    fn sef_prefers_lower_entropy() {
        // Same candidates: SEF picks o2, reversing SNF's decision — the paper's key example.
        let mut rng = 1;
        let choice = select_operator(
            Strategy::Sef,
            &mut rng,
            &[vec![30, 30, 40], vec![10, 70, 10, 10]],
        );
        assert_eq!(choice, 1);
    }

    #[test]
    fn ties_are_broken_by_position() {
        let mut rng = 1;
        assert_eq!(
            select_operator(Strategy::Snf, &mut rng, &[vec![2, 2], vec![2, 2]]),
            0
        );
        assert_eq!(
            select_operator(Strategy::Sef, &mut rng, &[vec![2, 2], vec![2, 2]]),
            0
        );
    }

    #[test]
    fn random_is_deterministic_for_a_seed() {
        let mut a = 42;
        let mut b = 42;
        let candidates = vec![vec![1], vec![1], vec![1], vec![1]];
        let first: Vec<usize> = (0..10)
            .map(|_| select_operator(Strategy::Random { seed: 42 }, &mut a, &candidates))
            .collect();
        let second: Vec<usize> = (0..10)
            .map(|_| select_operator(Strategy::Random { seed: 42 }, &mut b, &candidates))
            .collect();
        assert_eq!(first, second);
        // And it does explore more than one candidate.
        assert!(first.iter().any(|&c| c != first[0]));
    }

    #[test]
    fn default_strategy_is_sef() {
        assert_eq!(Strategy::default(), Strategy::Sef);
        assert_eq!(Strategy::Sef.to_string(), "SEF");
        assert_eq!(Strategy::Snf.to_string(), "SNF");
        assert_eq!(Strategy::Random { seed: 1 }.to_string(), "Random");
    }
}
