//! Worked examples from the paper, usable as fixtures in tests, examples and documentation.
//!
//! The fixtures reproduce Figures 1–3 of the paper: the `Customer` source instance, the
//! `Person`/`Order` target schema, the five possible mappings `m1 … m5` with probabilities
//! `0.3, 0.2, 0.2, 0.2, 0.1`, and the example queries (`q0`, `q1`, the running example of the
//! `basic` algorithm, and the product query `q2`).  Every algorithm in this crate is tested
//! against the answers the paper derives by hand for these inputs.

use crate::query::TargetQuery;
use urm_matching::{Correspondence, Mapping, MappingSet};
use urm_storage::{Attribute, Catalog, DataType, Relation, Schema, Tuple, Value};

/// The source instance of Figure 2 (relation `Customer`), extended with the `C_Order` and
/// `Nation` relations sketched in Figure 1 so that product queries have data to join.
#[must_use]
pub fn figure2_catalog() -> Catalog {
    let customer = Relation::new(
        Schema::new(
            "Customer",
            vec![
                Attribute::new("cid", DataType::Int),
                Attribute::new("cname", DataType::Text),
                Attribute::new("ophone", DataType::Text),
                Attribute::new("hphone", DataType::Text),
                Attribute::new("mobile", DataType::Text),
                Attribute::new("oaddr", DataType::Text),
                Attribute::new("haddr", DataType::Text),
                Attribute::new("nid", DataType::Int),
            ],
        ),
        vec![
            Tuple::new(vec![
                Value::from(1i64),
                Value::from("Alice"),
                Value::from("123"),
                Value::from("789"),
                Value::from("555"),
                Value::from("aaa"),
                Value::from("hk"),
                Value::from(1i64),
            ]),
            Tuple::new(vec![
                Value::from(2i64),
                Value::from("Bob"),
                Value::from("456"),
                Value::from("123"),
                Value::from("556"),
                Value::from("bbb"),
                Value::from("hk"),
                Value::from(2i64),
            ]),
            Tuple::new(vec![
                Value::from(3i64),
                Value::from("Cindy"),
                Value::from("456"),
                Value::from("789"),
                Value::from("557"),
                Value::from("aaa"),
                Value::from("aaa"),
                Value::from(1i64),
            ]),
        ],
    )
    .expect("valid Customer relation");

    let c_order = Relation::new(
        Schema::new(
            "C_Order",
            vec![
                Attribute::new("oid", DataType::Int),
                Attribute::new("ocid", DataType::Int),
                Attribute::new("amount", DataType::Float),
            ],
        ),
        vec![
            Tuple::new(vec![
                Value::from(10i64),
                Value::from(1i64),
                Value::from(99.5),
            ]),
            Tuple::new(vec![
                Value::from(11i64),
                Value::from(3i64),
                Value::from(12.0),
            ]),
        ],
    )
    .expect("valid C_Order relation");

    let nation = Relation::new(
        Schema::new(
            "Nation",
            vec![
                Attribute::new("nationid", DataType::Int),
                Attribute::new("name", DataType::Text),
            ],
        ),
        vec![
            Tuple::new(vec![Value::from(1i64), Value::from("HK")]),
            Tuple::new(vec![Value::from(2i64), Value::from("CN")]),
        ],
    )
    .expect("valid Nation relation");

    let mut catalog = Catalog::new();
    catalog.insert(customer);
    catalog.insert(c_order);
    catalog.insert(nation);
    catalog
}

fn corr(source: (&str, &str), target: (&str, &str), score: f64) -> Correspondence {
    Correspondence::from_parts(source, target, score)
}

/// The five possible mappings of Figure 3, with probabilities 0.3, 0.2, 0.2, 0.2, 0.1.
#[must_use]
pub fn figure3_mappings() -> MappingSet {
    let m1 = Mapping::new(
        1,
        vec![
            corr(("Customer", "cname"), ("Person", "pname"), 0.85),
            corr(("Customer", "ophone"), ("Person", "phone"), 0.85),
            corr(("Customer", "oaddr"), ("Person", "addr"), 0.81),
            corr(("Nation", "name"), ("Person", "nation"), 0.65),
            corr(("C_Order", "amount"), ("Order", "price"), 0.63),
        ],
        0.3,
    );
    let m2 = Mapping::new(
        2,
        vec![
            corr(("Customer", "cname"), ("Person", "pname"), 0.85),
            corr(("Customer", "ophone"), ("Person", "phone"), 0.85),
            corr(("Customer", "oaddr"), ("Person", "addr"), 0.81),
            corr(("Customer", "nid"), ("Person", "nation"), 0.45),
            corr(("C_Order", "amount"), ("Order", "price"), 0.63),
        ],
        0.2,
    );
    let m3 = Mapping::new(
        3,
        vec![
            corr(("Customer", "cname"), ("Person", "pname"), 0.85),
            corr(("Customer", "ophone"), ("Person", "phone"), 0.85),
            corr(("Customer", "haddr"), ("Person", "addr"), 0.75),
            corr(("Nation", "name"), ("Person", "nation"), 0.65),
            corr(("C_Order", "amount"), ("Order", "price"), 0.63),
        ],
        0.2,
    );
    let m4 = Mapping::new(
        4,
        vec![
            corr(("Customer", "cname"), ("Person", "pname"), 0.85),
            corr(("Customer", "hphone"), ("Person", "phone"), 0.83),
            corr(("Customer", "haddr"), ("Person", "addr"), 0.75),
            corr(("Nation", "name"), ("Person", "nation"), 0.65),
            corr(("C_Order", "amount"), ("Order", "price"), 0.63),
        ],
        0.2,
    );
    let m5 = Mapping::new(
        5,
        vec![
            corr(("Customer", "cname"), ("Order", "sname"), 0.4),
            corr(("Customer", "ophone"), ("Person", "phone"), 0.85),
            corr(("Customer", "haddr"), ("Person", "addr"), 0.75),
            corr(("Nation", "name"), ("Order", "item"), 0.3),
            corr(("C_Order", "amount"), ("Order", "total"), 0.3),
        ],
        0.1,
    );
    MappingSet::from_explicit(vec![m1, m2, m3, m4, m5]).expect("probabilities sum to 1")
}

/// `q0 : π_addr σ_phone='123' Person` — the introduction's example.
/// Expected answer over [`figure2_catalog`] and [`figure3_mappings`]: `{(aaa, 0.5), (hk, 0.5)}`.
#[must_use]
pub fn q0() -> TargetQuery {
    TargetQuery::builder("q0")
        .relation("Person")
        .filter_eq("Person.phone", "123")
        .returning(["Person.addr"])
        .build()
        .expect("q0 is well-formed")
}

/// `π_phone σ_addr='aaa' Person` — the running example of Section III-B.
/// Expected answer: `{(123, 0.5), (456, 0.8), (789, 0.2)}`.
#[must_use]
pub fn basic_example_query() -> TargetQuery {
    TargetQuery::builder("basic-example")
        .relation("Person")
        .filter_eq("Person.addr", "aaa")
        .returning(["Person.phone"])
        .build()
        .expect("well-formed")
}

/// `q1 : π_pname σ_addr='abc' Person` — the q-sharing example of Section IV.
/// Its partition tree groups the mappings into `{m1, m2}`, `{m3, m4}` and `{m5}`.
#[must_use]
pub fn q1() -> TargetQuery {
    TargetQuery::builder("q1")
        .relation("Person")
        .filter_eq("Person.addr", "abc")
        .returning(["Person.pname"])
        .build()
        .expect("well-formed")
}

/// A product query in the spirit of `q2` (Section V): selections on `Person` joined with
/// `Order`, returning the person's address and the order price.
#[must_use]
pub fn q2_product() -> TargetQuery {
    TargetQuery::builder("q2")
        .relation("Person")
        .relation("Order")
        .filter_eq("Person.phone", "123")
        .filter_eq("Person.addr", "hk")
        .returning(["Person.addr", "Order.price"])
        .build()
        .expect("well-formed")
}

/// A COUNT aggregate over `Person`, used to exercise the aggregate code paths.
#[must_use]
pub fn count_query() -> TargetQuery {
    TargetQuery::builder("count-q")
        .relation("Person")
        .filter_eq("Person.addr", "aaa")
        .count()
        .build()
        .expect("well-formed")
}

/// A SUM aggregate over `Order.price` for people whose phone is `'123'`.
#[must_use]
pub fn sum_query() -> TargetQuery {
    TargetQuery::builder("sum-q")
        .relation("Person")
        .relation("Order")
        .filter_eq("Person.phone", "123")
        .sum("Order.price")
        .build()
        .expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_figure2() {
        let cat = figure2_catalog();
        assert_eq!(cat.len(), 3);
        assert_eq!(cat.get("Customer").unwrap().len(), 3);
        assert_eq!(cat.get("C_Order").unwrap().len(), 2);
    }

    #[test]
    fn mappings_match_figure3() {
        let m = figure3_mappings();
        assert_eq!(m.len(), 5);
        m.validate().unwrap();
        assert!((m.mappings()[0].probability() - 0.3).abs() < 1e-9);
        assert!((m.mappings()[4].probability() - 0.1).abs() < 1e-9);
        // m1..m4 share (cname, pname); m5 does not.
        let pname = urm_storage::AttrRef::new("Person", "pname");
        assert!(m.mappings()[..4]
            .iter()
            .all(|mi| mi.source_for(&pname).is_some()));
        assert!(m.mappings()[4].source_for(&pname).is_none());
    }

    #[test]
    fn queries_build() {
        assert_eq!(q0().operator_count(), 2);
        assert_eq!(q1().operator_count(), 2);
        assert_eq!(q2_product().operator_count(), 4);
        assert_eq!(count_query().operator_count(), 2);
        assert_eq!(sum_query().operator_count(), 3);
    }

    #[test]
    fn mapping_overlap_is_high_as_in_the_paper() {
        let m = figure3_mappings();
        assert!(m.o_ratio() > 0.3);
    }
}
