//! The partition tree (Section IV-A, Algorithm 3).
//!
//! q-sharing groups the possible mappings so that every group translates the target query into
//! the same source query.  Two mappings belong to the same group exactly when they map every
//! *query attribute* to the same source attribute (or both leave it unmapped).  The partition
//! tree realises that grouping level by level: level `k` branches on the source attribute that
//! a mapping assigns to the `k`-th query attribute, and each leaf bucket is one partition.

use crate::query::TargetQuery;
use crate::CoreResult;
use std::collections::BTreeMap;
use urm_matching::{Mapping, MappingSet};
use urm_storage::AttrRef;

/// One partition of the mapping set: the mappings that agree on every query attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingPartition {
    /// For each query attribute (in [`TargetQuery::attributes_used`] order) the source attribute
    /// the partition's mappings assign to it (`None` = unmapped).
    pub signature: Vec<Option<AttrRef>>,
    /// Indices into the mapping list this partition was built from.
    pub mapping_indices: Vec<usize>,
    /// Total probability of the partition's mappings.
    pub probability: f64,
}

/// A node of the partition tree.
#[derive(Debug, Default)]
struct Node {
    /// Outgoing edges, labelled by the source attribute assigned to the current query attribute
    /// (`None` = the mapping leaves it unmapped).
    children: BTreeMap<Option<AttrRef>, usize>,
    /// Mapping indices stored at this node when it is a leaf bucket.
    bucket: Vec<usize>,
}

/// The partition tree of Algorithm 3.
#[derive(Debug)]
pub struct PartitionTree {
    attrs: Vec<AttrRef>,
    nodes: Vec<Node>,
}

impl PartitionTree {
    /// Creates an empty partition tree over the given (schema-level) query attributes.
    #[must_use]
    pub fn new(attrs: Vec<AttrRef>) -> Self {
        PartitionTree {
            attrs,
            nodes: vec![Node::default()],
        }
    }

    /// Number of nodes currently in the tree (including the root and the leaf buckets).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree: one level per query attribute, plus the bucket level.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.attrs.len() + 1
    }

    /// Inserts a mapping (identified by `index`) into the tree — the `put` routine of
    /// Algorithm 3.
    pub fn insert(&mut self, index: usize, mapping: &Mapping) {
        let mut node = 0usize;
        for level in 0..self.attrs.len() {
            let label = mapping.source_for(&self.attrs[level]).cloned();
            let next = match self.nodes[node].children.get(&label) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(Node::default());
                    self.nodes[node].children.insert(label, n);
                    n
                }
            };
            node = next;
        }
        self.nodes[node].bucket.push(index);
    }

    /// All leaf buckets with their signatures, in a deterministic order.
    #[must_use]
    pub fn buckets(&self) -> Vec<(Vec<Option<AttrRef>>, Vec<usize>)> {
        let mut out = Vec::new();
        let mut stack: Vec<(usize, Vec<Option<AttrRef>>)> = vec![(0, Vec::new())];
        while let Some((node, signature)) = stack.pop() {
            let n = &self.nodes[node];
            if signature.len() == self.attrs.len() {
                if !n.bucket.is_empty() {
                    out.push((signature, n.bucket.clone()));
                }
                continue;
            }
            for (label, &child) in n.children.iter().rev() {
                let mut sig = signature.clone();
                sig.push(label.clone());
                stack.push((child, sig));
            }
        }
        out.sort_by(|a, b| a.1.cmp(&b.1));
        out
    }
}

/// Partitions `mappings` by how they translate the given query attributes (alias-qualified);
/// the signature is built from the schema-level correspondences.
pub fn partition_by_attrs(
    query: &TargetQuery,
    attrs: &[AttrRef],
    mappings: &[(Mapping, f64)],
) -> CoreResult<Vec<MappingPartition>> {
    let schema_attrs: Vec<AttrRef> = attrs
        .iter()
        .map(|a| query.schema_attr(a))
        .collect::<CoreResult<_>>()?;
    let mut tree = PartitionTree::new(schema_attrs);
    for (i, (mapping, _)) in mappings.iter().enumerate() {
        tree.insert(i, mapping);
    }
    Ok(tree
        .buckets()
        .into_iter()
        .map(|(signature, mapping_indices)| {
            let probability = mapping_indices.iter().map(|&i| mappings[i].1).sum();
            MappingPartition {
                signature,
                mapping_indices,
                probability,
            }
        })
        .collect())
}

/// Partitions a whole [`MappingSet`] on every attribute used by the query — the `partition`
/// call of Algorithms 1, 2 and 4.
pub fn partition_mappings(
    query: &TargetQuery,
    mappings: &MappingSet,
) -> CoreResult<Vec<MappingPartition>> {
    let weighted: Vec<(Mapping, f64)> = mappings
        .iter()
        .map(|m| (m.clone(), m.probability()))
        .collect();
    partition_by_attrs(query, &query.attributes_used(), &weighted)
}

/// Selects one representative mapping per partition, carrying the partition's total
/// probability — the `represent` routine of Algorithm 1.
#[must_use]
pub fn representatives(
    partitions: &[MappingPartition],
    mappings: &MappingSet,
) -> Vec<(Mapping, f64)> {
    partitions
        .iter()
        .filter_map(|p| {
            p.mapping_indices
                .first()
                .map(|&i| (mappings.mappings()[i].clone(), p.probability))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn q1_partitions_match_the_paper() {
        // Section IV: q1 partitions Figure 3's mappings into {m1,m2}, {m3,m4}, {m5}.
        let query = testkit::q1();
        let mappings = testkit::figure3_mappings();
        let partitions = partition_mappings(&query, &mappings).unwrap();
        assert_eq!(partitions.len(), 3);
        let mut groups: Vec<Vec<usize>> = partitions
            .iter()
            .map(|p| p.mapping_indices.clone())
            .collect();
        groups.sort();
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3], vec![4]]);
        // Probabilities 0.5, 0.4, 0.1 (in the paper's order).
        let mut probs: Vec<f64> = partitions.iter().map(|p| p.probability).collect();
        probs.sort_by(f64::total_cmp);
        assert!((probs[0] - 0.1).abs() < 1e-9);
        assert!((probs[1] - 0.4).abs() < 1e-9);
        assert!((probs[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn q0_partitions_by_phone_and_addr() {
        // q0 uses phone and addr; signatures: (ophone,oaddr) ×2, (ophone,haddr) ×2, (hphone,haddr).
        let query = testkit::q0();
        let mappings = testkit::figure3_mappings();
        let partitions = partition_mappings(&query, &mappings).unwrap();
        assert_eq!(partitions.len(), 3);
        let sizes: Vec<usize> = {
            let mut v: Vec<usize> = partitions.iter().map(|p| p.mapping_indices.len()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sizes, vec![1, 2, 2]);
    }

    #[test]
    fn representatives_carry_group_probability() {
        let query = testkit::q1();
        let mappings = testkit::figure3_mappings();
        let partitions = partition_mappings(&query, &mappings).unwrap();
        let reps = representatives(&partitions, &mappings);
        assert_eq!(reps.len(), 3);
        let total: f64 = reps.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tree_structure_has_expected_shape() {
        let query = testkit::q1();
        let mappings = testkit::figure3_mappings();
        let schema_attrs: Vec<AttrRef> = query
            .attributes_used()
            .iter()
            .map(|a| query.schema_attr(a).unwrap())
            .collect();
        let mut tree = PartitionTree::new(schema_attrs);
        for (i, m) in mappings.iter().enumerate() {
            tree.insert(i, m);
        }
        // Depth = 2 attributes + bucket level.
        assert_eq!(tree.depth(), 3);
        // Root + 2 addr-level nodes + 3 buckets = 6 nodes (pname unmapped for m5 creates its own
        // branch at the pname level).
        assert!(tree.node_count() >= 5);
        assert_eq!(tree.buckets().len(), 3);
    }

    #[test]
    fn single_attribute_partitioning() {
        let query = testkit::basic_example_query();
        let mappings = testkit::figure3_mappings();
        // Partition only on Person.phone: m1,m2,m3,m5 map it to ophone; m4 to hphone.
        let attrs = vec![AttrRef::new("Person", "phone")];
        let weighted: Vec<(Mapping, f64)> = mappings
            .iter()
            .map(|m| (m.clone(), m.probability()))
            .collect();
        let partitions = partition_by_attrs(&query, &attrs, &weighted).unwrap();
        assert_eq!(partitions.len(), 2);
        let sizes: Vec<usize> = {
            let mut v: Vec<usize> = partitions.iter().map(|p| p.mapping_indices.len()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sizes, vec![1, 4]);
    }

    #[test]
    fn partition_probabilities_sum_to_one() {
        for query in [testkit::q0(), testkit::q1(), testkit::q2_product()] {
            let mappings = testkit::figure3_mappings();
            let partitions = partition_mappings(&query, &mappings).unwrap();
            let total: f64 = partitions.iter().map(|p| p.probability).sum();
            assert!((total - 1.0).abs() < 1e-9, "query {}", query.name());
        }
    }
}
