//! Query reformulation: translating a target query into a source query through a mapping.
//!
//! This is the machinery every evaluation algorithm shares (Section III-B and the reformulation
//! rules of Section VI-B).  Given a mapping `m`, each target attribute used by the query is
//! replaced by its corresponding source attribute; each target relation is replaced by the
//! minimal set of source relations covering the mapped attributes (joined by a Cartesian
//! product); and the output clause determines how answer tuples are extracted so that answers
//! produced under *different* mappings can be compared and aggregated.

use crate::query::{QueryOutput, TargetPredicate, TargetQuery};
use crate::{CoreError, CoreResult};
use serde::{Deserialize, Serialize};
use urm_engine::{AggFunc, Plan, Predicate};
use urm_matching::Mapping;
use urm_storage::{AttrRef, Catalog, Relation, Tuple, Value};

/// How answer tuples are read out of the result of a reformulated source query.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Extraction {
    /// The result rows are the answer tuples (aggregates).
    Raw,
    /// Build each answer tuple from the named columns of the result, in this order; `None`
    /// entries become `NULL` (an output attribute the mapping does not cover).
    Columns(Vec<Option<String>>),
}

/// A reformulated source query: an executable plan plus the answer-extraction rule.
///
/// Two mappings that translate the target query identically produce equal `SourceQuery` values;
/// that equality is what e-basic deduplicates and what q-sharing's partitions guarantee.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SourceQuery {
    /// The executable source plan (canonical, un-optimised form).
    pub plan: Plan,
    /// How to turn result rows into answer tuples.
    pub extraction: Extraction,
}

/// The outcome of reformulating a target query through one mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum Reformulated {
    /// A runnable source query.
    Query(SourceQuery),
    /// The mapping cannot produce any answer (a predicate or aggregate attribute has no
    /// corresponding source attribute under this mapping).
    Empty,
}

/// Reformulates `query` through every mapping of the set, clustering identical source queries
/// with their summed probabilities.  Returns the distinct source queries in deterministic order
/// (descending probability, plan fingerprint as tie-break) plus the probability mass of
/// mappings the query cannot be reformulated through.
///
/// This is the shared "rewrite and deduplicate" phase of `e-basic`, `e-MQO` and batch
/// evaluation; only the execution step differs between them.
pub(crate) fn clustered_reformulations(
    query: &TargetQuery,
    mappings: &urm_matching::MappingSet,
    catalog: &Catalog,
) -> CoreResult<(Vec<(SourceQuery, f64)>, f64)> {
    let mut groups: std::collections::HashMap<SourceQuery, f64> = std::collections::HashMap::new();
    let mut empty_probability = 0.0;
    for mapping in mappings.iter() {
        match reformulate(query, mapping, catalog)? {
            Reformulated::Empty => empty_probability += mapping.probability(),
            Reformulated::Query(sq) => *groups.entry(sq).or_insert(0.0) += mapping.probability(),
        }
    }
    let mut ordered: Vec<(SourceQuery, f64)> = groups.into_iter().collect();
    // HashMap iteration order must not leak into answer aggregation: order deterministically.
    ordered.sort_by(|a, b| {
        b.1.total_cmp(&a.1)
            .then_with(|| a.0.plan.fingerprint().cmp(&b.0.plan.fingerprint()))
    });
    Ok((ordered, empty_probability))
}

/// The deterministic scan alias used when target alias `target_alias` pulls in source relation
/// `source_relation`.
#[must_use]
pub fn scan_alias(target_alias: &str, source_relation: &str) -> String {
    if target_alias == source_relation {
        source_relation.to_string()
    } else {
        format!("{target_alias}__{source_relation}")
    }
}

/// The qualified source column that a target attribute reference resolves to under `mapping`,
/// or `None` when the mapping does not cover the attribute.
pub fn source_column_for(
    query: &TargetQuery,
    mapping: &Mapping,
    attr: &AttrRef,
) -> CoreResult<Option<String>> {
    let schema_attr = query.schema_attr(attr)?;
    Ok(mapping
        .source_for(&schema_attr)
        .map(|src| format!("{}.{}", scan_alias(&attr.alias, &src.alias), src.attr)))
}

/// The source relations (with their scan aliases) that cover the mapped attributes of one
/// target alias — the "minimal set of source relations" of the Section VI-B rules.
///
/// Attribute names in the generated source schemas are unique to one relation, so the minimal
/// cover is simply the set of relations owning the mapped attributes.
pub fn covering_relations(
    query: &TargetQuery,
    mapping: &Mapping,
    alias: &str,
    catalog: &Catalog,
) -> CoreResult<Vec<(String, String)>> {
    let mut out: Vec<(String, String)> = Vec::new();
    for attr in query.attributes_of_alias(alias) {
        let schema_attr = query.schema_attr(&attr)?;
        if let Some(src) = mapping.source_for(&schema_attr) {
            let relation = catalog
                .get(&src.alias)
                .map(|_| src.alias.clone())
                .or_else(|| catalog.relation_of_attribute(&src.attr).map(String::from))
                .ok_or_else(|| CoreError::UnknownSourceAttribute {
                    attribute: src.qualified(),
                })?;
            let pair = (scan_alias(alias, &relation), relation);
            if !out.contains(&pair) {
                out.push(pair);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Reformulates a target query through a single mapping.
pub fn reformulate(
    query: &TargetQuery,
    mapping: &Mapping,
    catalog: &Catalog,
) -> CoreResult<Reformulated> {
    // 1. Every predicate attribute must be mapped, otherwise the predicate can never be
    //    satisfied and the whole query is empty under this mapping.
    for pred in query.predicates() {
        for attr in pred.attributes() {
            if source_column_for(query, mapping, attr)?.is_none() {
                return Ok(Reformulated::Empty);
            }
        }
    }
    // A SUM over an unmapped attribute likewise cannot produce a value.
    if let QueryOutput::Sum(attr) = query.output() {
        if source_column_for(query, mapping, attr)?.is_none() {
            return Ok(Reformulated::Empty);
        }
    }

    // 2. Scans: for each alias, the covering source relations under this mapping.
    let mut scans: Vec<Plan> = Vec::new();
    for binding in query.relations() {
        let cover = covering_relations(query, mapping, &binding.alias, catalog)?;
        if cover.is_empty() {
            // No attribute of this alias is mapped; the alias contributes nothing that any
            // operator or the output can observe, so it is dropped from the product.  (The
            // paper's partial mappings behave the same way: unmatched relations cannot be
            // queried.)
            continue;
        }
        for (alias, relation) in cover {
            scans.push(Plan::scan_as(relation, alias));
        }
    }
    if scans.is_empty() {
        return Ok(Reformulated::Empty);
    }

    // 3. Product of all scans, in deterministic order.
    let mut plan = scans
        .clone()
        .into_iter()
        .reduce(Plan::product)
        .expect("at least one scan");

    // 4. Selections, in query order.
    for pred in query.predicates() {
        let engine_pred = match pred {
            TargetPredicate::Compare { attr, op, value } => {
                let col = source_column_for(query, mapping, attr)?
                    .expect("predicate attributes checked above");
                Predicate::compare(col, *op, value.clone())
            }
            TargetPredicate::AttrEq { left, right } => {
                let l = source_column_for(query, mapping, left)?
                    .expect("predicate attributes checked above");
                let r = source_column_for(query, mapping, right)?
                    .expect("predicate attributes checked above");
                Predicate::column_eq(l, r)
            }
        };
        plan = plan.select(engine_pred);
    }

    // 5. Output clause.
    let (plan, extraction) = match query.output() {
        QueryOutput::Count => (plan.aggregate(AggFunc::Count), Extraction::Raw),
        QueryOutput::Sum(attr) => {
            let col = source_column_for(query, mapping, attr)?.expect("checked above");
            (plan.aggregate(AggFunc::Sum(col)), Extraction::Raw)
        }
        QueryOutput::Tuples(attrs) => {
            let mut columns: Vec<Option<String>> = Vec::with_capacity(attrs.len());
            for attr in attrs {
                columns.push(source_column_for(query, mapping, attr)?);
            }
            let mut project: Vec<String> = Vec::new();
            for col in columns.iter().flatten() {
                if !project.contains(col) {
                    project.push(col.clone());
                }
            }
            if project.is_empty() {
                // No output attribute is covered by this mapping: nothing observable.
                return Ok(Reformulated::Empty);
            }
            (plan.project(project), Extraction::Columns(columns))
        }
    };

    Ok(Reformulated::Query(SourceQuery { plan, extraction }))
}

/// Extracts answer tuples from the materialised result of a source query.
#[must_use]
pub fn extract_answers(result: &Relation, extraction: &Extraction) -> Vec<Tuple> {
    match extraction {
        Extraction::Raw => result.rows().to_vec(),
        Extraction::Columns(columns) => {
            let positions: Vec<Option<usize>> = columns
                .iter()
                .map(|c| c.as_ref().and_then(|name| result.schema().position(name)))
                .collect();
            result
                .iter()
                .map(|row| {
                    Tuple::new(
                        positions
                            .iter()
                            .map(|p| match p {
                                Some(i) => row.get(*i).cloned().unwrap_or(Value::Null),
                                None => Value::Null,
                            })
                            .collect(),
                    )
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use urm_engine::Executor;

    #[test]
    fn q0_reformulates_through_m1_like_the_paper() {
        // q0 = π_addr σ_phone='123' Person; m1 maps phone→ophone, addr→oaddr.
        let catalog = testkit::figure2_catalog();
        let query = testkit::q0();
        let mappings = testkit::figure3_mappings();
        let m1 = &mappings.mappings()[0];
        let reformulated = reformulate(&query, m1, &catalog).unwrap();
        let Reformulated::Query(sq) = reformulated else {
            panic!("expected a runnable source query");
        };
        // The plan selects on Customer.ophone and projects Customer.oaddr.
        let rendered = sq.plan.to_string();
        assert!(rendered.contains("Customer.ophone = 123"), "{rendered}");
        assert!(rendered.contains("Customer.oaddr"), "{rendered}");

        let result = Executor::new(&catalog).run(&sq.plan).unwrap();
        let answers = extract_answers(&result, &sq.extraction);
        assert_eq!(answers, vec![Tuple::new(vec![Value::from("aaa")])]);
    }

    #[test]
    fn q0_through_m4_uses_hphone_and_haddr() {
        let catalog = testkit::figure2_catalog();
        let query = testkit::q0();
        let mappings = testkit::figure3_mappings();
        let m4 = mappings.by_id(4).unwrap();
        let Reformulated::Query(sq) = reformulate(&query, m4, &catalog).unwrap() else {
            panic!("expected a query");
        };
        let result = Executor::new(&catalog).run(&sq.plan).unwrap();
        let answers = extract_answers(&result, &sq.extraction);
        // m4: phone→hphone, addr→haddr; hphone='123' matches Bob, whose haddr is 'hk'.
        assert_eq!(answers, vec![Tuple::new(vec![Value::from("hk")])]);
    }

    #[test]
    fn identical_translations_yield_equal_source_queries() {
        // m1 and m2 of Figure 3 agree on phone and addr, so q0 translates identically.
        let catalog = testkit::figure2_catalog();
        let query = testkit::q0();
        let mappings = testkit::figure3_mappings();
        let a = reformulate(&query, &mappings.mappings()[0], &catalog).unwrap();
        let b = reformulate(&query, &mappings.mappings()[1], &catalog).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unmapped_predicate_attribute_means_empty() {
        let catalog = testkit::figure2_catalog();
        let query = TargetQuery::builder("q")
            .relation("Person")
            .filter_eq("Person.gender", "F")
            .returning(["Person.pname"])
            .build()
            .unwrap();
        // No mapping of Figure 3 covers Person.gender.
        let mappings = testkit::figure3_mappings();
        for m in mappings.iter() {
            assert_eq!(
                reformulate(&query, m, &catalog).unwrap(),
                Reformulated::Empty
            );
        }
    }

    #[test]
    fn unmapped_projection_attribute_becomes_null_column() {
        let catalog = testkit::figure2_catalog();
        let query = TargetQuery::builder("q")
            .relation("Person")
            .filter_eq("Person.phone", "123")
            .returning(["Person.addr", "Person.gender"])
            .build()
            .unwrap();
        let mappings = testkit::figure3_mappings();
        let Reformulated::Query(sq) =
            reformulate(&query, &mappings.mappings()[0], &catalog).unwrap()
        else {
            panic!("expected query");
        };
        let result = Executor::new(&catalog).run(&sq.plan).unwrap();
        let answers = extract_answers(&result, &sq.extraction);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].get(0), Some(&Value::from("aaa")));
        assert_eq!(answers[0].get(1), Some(&Value::Null));
    }

    #[test]
    fn cross_relation_queries_take_the_product_of_covering_relations() {
        // q2-like query touching Person and Order; Order's price maps into C_Order.amount, so
        // the product Customer × C_Order is generated.
        let catalog = testkit::figure2_catalog();
        let query = testkit::q2_product();
        let mappings = testkit::figure3_mappings();

        // Under m1 (addr → oaddr) the selection addr='hk' matches nothing — exactly the empty
        // intermediate relation R2 of the paper's Figure 5.
        let Reformulated::Query(sq) =
            reformulate(&query, &mappings.mappings()[0], &catalog).unwrap()
        else {
            panic!("expected query");
        };
        let scans = sq.plan.scanned_relations();
        assert!(scans.contains(&"Customer"));
        assert!(scans.contains(&"C_Order"));
        let result = Executor::new(&catalog).run(&sq.plan).unwrap();
        assert!(result.is_empty());

        // Under m3 (addr → haddr) Alice qualifies and joins with both of her orders.
        let Reformulated::Query(sq) =
            reformulate(&query, &mappings.mappings()[2], &catalog).unwrap()
        else {
            panic!("expected query");
        };
        let result = Executor::new(&catalog).run(&sq.plan).unwrap();
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn scan_alias_is_stable() {
        assert_eq!(scan_alias("PO", "Customer"), "PO__Customer");
        assert_eq!(scan_alias("Customer", "Customer"), "Customer");
    }

    #[test]
    fn covering_relations_are_sorted_and_deduplicated() {
        let catalog = testkit::figure2_catalog();
        let query = testkit::q0();
        let mappings = testkit::figure3_mappings();
        let cover =
            covering_relations(&query, &mappings.mappings()[0], "Person", &catalog).unwrap();
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].1, "Customer");
    }
}
