//! Evaluation metrics reported by every algorithm.

use crate::answer::ProbabilisticAnswer;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use urm_engine::ExecStats;

/// Work and time accounting for one probabilistic-query evaluation.
///
/// The paper reports wall-clock query time (`t_q`), its breakdown into query evaluation and
/// answer aggregation (Figure 10(a)), and the number of source operators executed (Table IV);
/// all of those are derivable from this struct.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EvalMetrics {
    /// Name of the algorithm that produced the metrics (`basic`, `e-basic`, …).
    pub algorithm: String,
    /// Time spent reformulating target queries / operators into source form.
    #[serde(skip)]
    pub rewrite_time: Duration,
    /// Time spent building shared/global plans (e-MQO) or optimising plans before execution.
    #[serde(skip)]
    pub plan_time: Duration,
    /// Time spent aggregating answer tuples (summing probabilities of duplicates).
    #[serde(skip)]
    pub aggregation_time: Duration,
    /// Executor statistics (operators executed, tuples moved, execution time).
    pub exec: ExecStats,
    /// Number of distinct source queries that were executed.
    pub distinct_source_queries: usize,
    /// Number of representative mappings (q-sharing / o-sharing) or mappings considered.
    pub representative_mappings: usize,
    /// Number of e-units created (o-sharing and top-k only).
    pub eunits: usize,
    /// Sub-plan cache hits observed while evaluating this query (batch evaluation only).
    pub shared_plan_hits: u64,
    /// Sub-plan cache misses observed while evaluating this query (batch evaluation only).
    pub shared_plan_misses: u64,
    /// Total wall-clock time of the evaluation.
    #[serde(skip)]
    pub total_time: Duration,
}

impl EvalMetrics {
    /// Creates zeroed metrics for an algorithm.
    #[must_use]
    pub fn new(algorithm: &str) -> Self {
        EvalMetrics {
            algorithm: algorithm.to_string(),
            ..EvalMetrics::default()
        }
    }

    /// Number of source operators executed (the Table IV metric).
    #[must_use]
    pub fn source_operators(&self) -> u64 {
        self.exec.operators_executed + self.exec.scans
    }

    /// Time spent evaluating source queries (the "evaluation" slice of Figure 10(a)).
    #[must_use]
    pub fn evaluation_time(&self) -> Duration {
        self.exec.exec_time
    }
}

/// The result of evaluating a probabilistic query: the answer plus metrics.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The probabilistic answer.
    pub answer: ProbabilisticAnswer,
    /// Work and time accounting.
    pub metrics: EvalMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_operators_counts_scans_and_operators() {
        let mut m = EvalMetrics::new("basic");
        m.exec.record_scan(10);
        m.exec.record_operator(10, 5);
        m.exec.record_operator(5, 5);
        assert_eq!(m.source_operators(), 3);
        assert_eq!(m.algorithm, "basic");
    }

    #[test]
    fn evaluation_time_mirrors_exec_time() {
        let mut m = EvalMetrics::new("x");
        m.exec.exec_time = Duration::from_millis(250);
        assert_eq!(m.evaluation_time(), Duration::from_millis(250));
    }
}
