//! Error types for probabilistic query evaluation.

use std::fmt;
use urm_engine::EngineError;
use urm_matching::MatchingError;
use urm_storage::StorageError;

/// Result alias used throughout the core crate.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors raised while reformulating or evaluating probabilistic queries.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An engine error (execution, schema inference, …).
    Engine(EngineError),
    /// A matching error (invalid mapping set, …).
    Matching(MatchingError),
    /// A storage error.
    Storage(StorageError),
    /// No source relation in the catalog declares the source attribute a mapping points at.
    UnknownSourceAttribute {
        /// The source attribute that could not be located.
        attribute: String,
    },
    /// The query is malformed (no relations, empty output list, predicate over an unbound
    /// alias, …).
    InvalidQuery(String),
    /// The mapping set is empty or otherwise unusable.
    InvalidMappingSet(String),
    /// A top-k request with `k = 0`.
    InvalidK,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Engine(e) => write!(f, "engine error: {e}"),
            CoreError::Matching(e) => write!(f, "matching error: {e}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::UnknownSourceAttribute { attribute } => {
                write!(f, "no source relation declares attribute '{attribute}'")
            }
            CoreError::InvalidQuery(msg) => write!(f, "invalid target query: {msg}"),
            CoreError::InvalidMappingSet(msg) => write!(f, "invalid mapping set: {msg}"),
            CoreError::InvalidK => write!(f, "top-k queries require k >= 1"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Engine(e) => Some(e),
            CoreError::Matching(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<MatchingError> for CoreError {
    fn from(e: MatchingError) -> Self {
        CoreError::Matching(e)
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = EngineError::InvalidPlan("x".into()).into();
        assert!(matches!(e, CoreError::Engine(_)));
        assert!(e.to_string().contains("engine"));

        let e: CoreError = MatchingError::EmptySimilarity.into();
        assert!(matches!(e, CoreError::Matching(_)));

        let e: CoreError = StorageError::UnknownRelation("R".into()).into();
        assert!(matches!(e, CoreError::Storage(_)));
        assert!(std::error::Error::source(&e).is_some());

        assert!(CoreError::InvalidK.to_string().contains("k >= 1"));
        assert!(CoreError::UnknownSourceAttribute {
            attribute: "Customer.ghost".into()
        }
        .to_string()
        .contains("Customer.ghost"));
    }
}
