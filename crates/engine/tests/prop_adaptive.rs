//! Property tests: the adaptive feedback loop is invisible in answers.
//!
//! For randomly generated (catalog, join-heavy plan batch, worker count) triples, run the same
//! batch for several rounds against two epochs — one with the observed-cardinality feedback
//! loop on, one with it off — re-executing each round (a 1-byte pin budget keeps nothing warm
//! except the epoch's `CardinalityStore`):
//!
//! * every round of the adaptive epoch returns, for every plan, exactly the rows of the
//!   row-at-a-time [`ReferenceExecutor`] — same schema, same rows, same row order — and the
//!   same bytes as the static epoch, no matter what the feedback reordered or re-prioritised;
//! * the static epoch never consumes feedback (`observed_nodes` and `reordered_joins` stay 0),
//!   and the adaptive epoch's *cold* round is bit-for-bit the static schedule (an empty store
//!   must reproduce the optimizer's estimates exactly);
//! * a deterministic unit case holds the loop to its point: a hash join whose build side the
//!   static plan mis-sizes flips to the smaller observed side after one batch of history,
//!   without changing a byte of the answer.

use proptest::prelude::*;
use proptest::TestRng;
use urm_engine::optimize::fingerprint;
use urm_engine::{CompareOp, EpochDag, EpochRun, Executor, Plan, Predicate, ReferenceExecutor};
use urm_storage::{Attribute, Catalog, DataType, Relation, Schema, Tuple, Value};

/// A tiny value domain so joins and selections actually hit; nulls included so null-key
/// handling is exercised on the flipped build path.
fn random_value(rng: &mut TestRng, dt: DataType) -> Value {
    if rng.index(8) == 0 {
        return Value::Null;
    }
    match dt {
        DataType::Int => Value::from(rng.index(4) as i64),
        DataType::Float => Value::from([0.0, 1.5, 2.5][rng.index(3)]),
        DataType::Text => Value::from(["a", "b", "c"][rng.index(3)]),
        DataType::Bool => Value::from(rng.index(2) == 0),
        _ => Value::Null,
    }
}

/// Random relations with *asymmetric* row counts (0–25) so observed build/probe sides
/// genuinely differ and build-side flips trigger.
fn random_catalog(rng: &mut TestRng) -> Catalog {
    let mut cat = Catalog::new();
    let types = [DataType::Int, DataType::Text, DataType::Float];
    for r in 0..2 + rng.index(2) {
        let arity = 1 + rng.index(3);
        let attrs: Vec<Attribute> = (0..arity)
            .map(|i| Attribute::new(format!("c{i}"), types[rng.index(types.len())]))
            .collect();
        let schema = Schema::new(format!("R{r}"), attrs.clone());
        let rows = (0..rng.index(26))
            .map(|_| {
                Tuple::new(
                    attrs
                        .iter()
                        .map(|a| random_value(rng, a.data_type))
                        .collect(),
                )
            })
            .collect();
        cat.insert(Relation::new(schema, rows).unwrap());
    }
    cat
}

fn random_column(rng: &mut TestRng, schema: &Schema) -> String {
    let names: Vec<&str> = schema.attribute_names().collect();
    names[rng.index(names.len())].to_string()
}

/// A join-heavy plan: two uniquely aliased scans (optionally pre-filtered, so join inputs can
/// be intermediates that miss the columnar leaf fast path and exercise the flipped row join)
/// joined on random columns, with an optional selection on top.
fn random_join_plan(rng: &mut TestRng, catalog: &Catalog, alias_seq: &mut usize) -> Plan {
    let names: Vec<String> = catalog.relation_names().map(String::from).collect();
    let mut scan = |rng: &mut TestRng| {
        *alias_seq += 1;
        let plan = Plan::scan_as(
            names[rng.index(names.len())].clone(),
            format!("J{alias_seq}"),
        );
        if rng.index(2) == 0 {
            let schema = plan.output_schema(catalog).expect("scan schema");
            let column = random_column(rng, &schema);
            let dt = schema
                .position(&column)
                .map(|p| schema.attributes()[p].data_type)
                .unwrap_or(DataType::Int);
            let op = [CompareOp::Eq, CompareOp::Ne, CompareOp::Gt][rng.index(3)];
            return plan.select(Predicate::compare(column, op, random_value(rng, dt)));
        }
        plan
    };
    let left = scan(rng);
    let right = scan(rng);
    let ls = left.output_schema(catalog).expect("input schema");
    let rs = right.output_schema(catalog).expect("input schema");
    let mut on = vec![(random_column(rng, &ls), random_column(rng, &rs))];
    if rng.index(3) == 0 {
        // Multi-key joins take the composite-key path of both build orders.
        on.push((random_column(rng, &ls), random_column(rng, &rs)));
    }
    let mut plan = left.hash_join(right, on);
    if rng.index(2) == 0 {
        let schema = plan.output_schema(catalog).expect("join schema");
        let column = random_column(rng, &schema);
        let dt = schema
            .position(&column)
            .map(|p| schema.attributes()[p].data_type)
            .unwrap_or(DataType::Int);
        let op = [CompareOp::Eq, CompareOp::Ne, CompareOp::Gt][rng.index(3)];
        plan = plan.select(Predicate::compare(column, op, random_value(rng, dt)));
    }
    plan
}

fn random_batch(rng: &mut TestRng, catalog: &Catalog) -> Vec<(Plan, Relation)> {
    let mut alias_seq = 0usize;
    let mut batch = Vec::new();
    for _ in 0..1 + rng.index(3) {
        let plan = random_join_plan(rng, catalog, &mut alias_seq);
        if let Ok(expected) = ReferenceExecutor::new(catalog).run(&plan) {
            batch.push((plan, expected));
        }
    }
    batch
}

/// Submits the whole batch and executes the pending snapshot on `workers` threads.
fn run_round(
    epoch: &mut EpochDag,
    exec: &mut Executor<'_>,
    batch: &[(Plan, Relation)],
    workers: usize,
) -> EpochRun {
    for (plan, _) in batch {
        epoch
            .submit_with(fingerprint(plan), || exec.bind(plan))
            .expect("reference-accepted plan binds");
    }
    epoch
        .execute_pending(exec, workers)
        .expect("batch executes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Adaptive rounds — cold and fed-back — are byte-identical to the static epoch and the
    /// reference evaluator, for every plan, on 1–3 scheduler workers.
    #[test]
    fn adaptive_execution_is_byte_identical_to_static_and_reference(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let catalog = random_catalog(&mut rng);
        let batch = random_batch(&mut rng, &catalog);
        if batch.is_empty() {
            return;
        }
        let workers = 1 + rng.index(3);

        // A 1-byte pin budget: warm rounds re-execute (nothing worth pinning survives) while
        // the epoch-owned CardinalityStore persists — the shape the feedback loop feeds on.
        let mut adaptive_epoch = EpochDag::with_pin_budget(1);
        prop_assert!(adaptive_epoch.adaptive(), "the loop must default on");
        let mut static_epoch = EpochDag::with_pin_budget(1);
        static_epoch.set_adaptive(false);

        let mut adaptive_exec = Executor::new(&catalog);
        let mut static_exec = Executor::new(&catalog);
        for round in 0..3 {
            let a = run_round(&mut adaptive_epoch, &mut adaptive_exec, &batch, workers);
            let s = run_round(&mut static_epoch, &mut static_exec, &batch, workers);
            prop_assert_eq!(s.report.observed_nodes, 0, "static run consumed feedback");
            prop_assert_eq!(s.report.reordered_joins, 0, "static run flipped a join");
            if round == 0 {
                // Cold adaptive ≡ static: an empty store must reproduce the estimates.
                prop_assert_eq!(a.report.observed_nodes, 0, "cold round had observations");
                prop_assert_eq!(a.report.reordered_joins, 0, "cold round flipped a join");
            } else if a.report.nodes_executed > 0 {
                // Everything executed in round 0, so every re-executed node is observed.
                prop_assert!(a.report.observed_nodes > 0, "warm round ignored the store");
            }
            for (((plan, expected), got_a), got_s) in
                batch.iter().zip(&a.root_results).zip(&s.root_results)
            {
                let want_cols: Vec<&str> = expected.schema().attribute_names().collect();
                let got_cols: Vec<&str> = got_a.schema().attribute_names().collect();
                prop_assert_eq!(want_cols, got_cols, "round {round} schemas diverge:\n{plan}");
                prop_assert_eq!(
                    expected.rows(),
                    got_a.rows(),
                    "round {round} adaptive diverged from reference:\n{plan}"
                );
                prop_assert_eq!(
                    got_s.rows(),
                    got_a.rows(),
                    "round {round} adaptive diverged from static:\n{plan}"
                );
            }
        }
        prop_assert!(
            !adaptive_epoch.cardinalities().is_empty(),
            "three executed rounds recorded nothing"
        );
    }
}

/// The loop's point, deterministically: a join whose probe (left) side is tiny and whose build
/// (right) side is big.  The canonical join builds on the right — the wrong side here — and
/// one observed batch is enough for the feedback pass to flip it, byte-identically.
#[test]
fn mis_estimated_build_side_flips_after_one_observed_batch() {
    let mut cat = Catalog::new();
    let small = Schema::new("S", vec![Attribute::new("k", DataType::Int)]);
    let small_rows = (0..3)
        .map(|i| Tuple::new(vec![Value::from(i as i64 % 2)]))
        .collect();
    cat.insert(Relation::new(small, small_rows).unwrap());
    let big = Schema::new(
        "B",
        vec![
            Attribute::new("k", DataType::Int),
            Attribute::new("v", DataType::Int),
        ],
    );
    let big_rows = (0..200)
        .map(|i| Tuple::new(vec![Value::from(i as i64 % 2), Value::from(i as i64)]))
        .collect();
    cat.insert(Relation::new(big, big_rows).unwrap());

    // Selections under the join keep both inputs off the columnar leaf fast path, so the warm
    // batch genuinely runs the flipped row join rather than just deciding to.
    let plan = Plan::scan("S")
        .select(Predicate::compare("S.k", CompareOp::Ge, Value::from(0i64)))
        .hash_join(
            Plan::scan("B").select(Predicate::compare("B.v", CompareOp::Ge, Value::from(0i64))),
            vec![("S.k".into(), "B.k".into())],
        );
    let reference = ReferenceExecutor::new(&cat).run(&plan).unwrap();
    assert!(reference.len() >= 200, "the join must have real fan-out");

    let batch = vec![(plan, reference)];
    let mut exec = Executor::new(&cat);
    let mut epoch = EpochDag::with_pin_budget(1);

    let cold = run_round(&mut epoch, &mut exec, &batch, 1);
    assert_eq!(
        cold.report.reordered_joins, 0,
        "cold batch had no history to flip on"
    );
    assert_eq!(cold.report.observed_nodes, 0);
    let cold_rows = cold.root_results[0].rows().to_vec();
    assert_eq!(cold_rows, batch[0].1.rows());
    drop(cold);

    let warm = run_round(&mut epoch, &mut exec, &batch, 1);
    assert!(warm.report.nodes_executed > 0, "warm batch must re-execute");
    assert!(
        warm.report.observed_nodes > 0,
        "warm batch ignored the store"
    );
    assert!(
        warm.report.reordered_joins >= 1,
        "one observed batch did not flip the mis-sized build side"
    );
    assert_eq!(
        warm.root_results[0].rows().to_vec(),
        cold_rows,
        "the flipped build side changed the answer bytes"
    );
}
