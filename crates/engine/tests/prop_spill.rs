//! Property tests: execution under a spill pool — any byte budget, including the budget-0
//! spill-everything extreme — is byte-identical to in-memory execution.
//!
//! For randomly generated (catalog, join-heavy plan batch, budget) triples:
//!
//! * a budgeted [`Executor`] (grace hash joins, spill-pool staging) returns, for every plan,
//!   exactly the rows of the row-at-a-time [`ReferenceExecutor`] — same schema, same rows,
//!   same row order;
//! * an [`EpochDag`] under a memory budget (spill-backed pins) answers warm batches with the
//!   same bytes the cold batch produced, without re-executing a node;
//! * an *unbounded* pool is the never-spill fast path: zero segment files, zero reloads, zero
//!   grace partitions.

use proptest::prelude::*;
use proptest::TestRng;
use urm_engine::optimize::fingerprint;
use urm_engine::{
    CompareOp, DagScheduler, EpochDag, Executor, OperatorDag, Plan, Predicate, ReferenceExecutor,
};
use urm_storage::{Attribute, BufferPool, Catalog, DataType, Relation, Schema, Tuple, Value};

/// A tiny value domain so joins and selections actually hit; nulls included so null-key
/// handling is exercised on the grace path.
fn random_value(rng: &mut TestRng, dt: DataType) -> Value {
    if rng.index(8) == 0 {
        return Value::Null;
    }
    match dt {
        DataType::Int => Value::from(rng.index(4) as i64),
        DataType::Float => Value::from([0.0, 1.5, 2.5][rng.index(3)]),
        DataType::Text => Value::from(["a", "b", "c"][rng.index(3)]),
        DataType::Bool => Value::from(rng.index(2) == 0),
        _ => Value::Null,
    }
}

fn random_catalog(rng: &mut TestRng) -> Catalog {
    let mut cat = Catalog::new();
    let types = [DataType::Int, DataType::Text, DataType::Float];
    for r in 0..2 + rng.index(2) {
        let arity = 1 + rng.index(3);
        let attrs: Vec<Attribute> = (0..arity)
            .map(|i| Attribute::new(format!("c{i}"), types[rng.index(types.len())]))
            .collect();
        let schema = Schema::new(format!("R{r}"), attrs.clone());
        let rows = (0..rng.index(14))
            .map(|_| {
                Tuple::new(
                    attrs
                        .iter()
                        .map(|a| random_value(rng, a.data_type))
                        .collect(),
                )
            })
            .collect();
        cat.insert(Relation::new(schema, rows).unwrap());
    }
    cat
}

fn random_column(rng: &mut TestRng, schema: &Schema) -> String {
    let names: Vec<&str> = schema.attribute_names().collect();
    names[rng.index(names.len())].to_string()
}

/// A join-heavy plan: two uniquely aliased scans (optionally pre-filtered) joined on random
/// columns, with an optional selection on top — the shape whose build side the grace path
/// partitions.
fn random_join_plan(rng: &mut TestRng, catalog: &Catalog, alias_seq: &mut usize) -> Plan {
    let names: Vec<String> = catalog.relation_names().map(String::from).collect();
    let scan = |rng: &mut TestRng, alias_seq: &mut usize| {
        *alias_seq += 1;
        Plan::scan_as(
            names[rng.index(names.len())].clone(),
            format!("J{alias_seq}"),
        )
    };
    let left = scan(rng, alias_seq);
    let right = scan(rng, alias_seq);
    let ls = left.output_schema(catalog).expect("scan schema");
    let rs = right.output_schema(catalog).expect("scan schema");
    let mut on = vec![(random_column(rng, &ls), random_column(rng, &rs))];
    if rng.index(3) == 0 {
        // Multi-key joins take the composite-key path on both join implementations.
        on.push((random_column(rng, &ls), random_column(rng, &rs)));
    }
    let mut plan = left.hash_join(right, on);
    if rng.index(2) == 0 {
        let schema = plan.output_schema(catalog).expect("join schema");
        let column = random_column(rng, &schema);
        let dt = schema
            .position(&column)
            .map(|p| schema.attributes()[p].data_type)
            .unwrap_or(DataType::Int);
        let op = [CompareOp::Eq, CompareOp::Ne, CompareOp::Gt][rng.index(3)];
        plan = plan.select(Predicate::compare(column, op, random_value(rng, dt)));
    }
    plan
}

fn random_batch(rng: &mut TestRng, catalog: &Catalog) -> Vec<(Plan, Relation)> {
    let mut alias_seq = 0usize;
    let mut batch = Vec::new();
    for _ in 0..1 + rng.index(3) {
        let plan = random_join_plan(rng, catalog, &mut alias_seq);
        if let Ok(expected) = ReferenceExecutor::new(catalog).run(&plan) {
            batch.push((plan, expected));
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Budgeted DAG execution — budget 0 (spill everything), a random small budget, and an
    /// unbounded pool — is byte-identical to the reference evaluator, per plan and per row.
    #[test]
    fn spilled_execution_is_byte_identical_to_in_memory(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let catalog = random_catalog(&mut rng);
        let batch = random_batch(&mut rng, &catalog);
        if batch.is_empty() {
            return;
        }
        let budgets = [Some(0usize), Some(1 + rng.index(4096)), None];
        for budget in budgets {
            let pool = match budget {
                Some(bytes) => BufferPool::with_budget(bytes),
                None => BufferPool::unbounded(),
            };
            let mut exec = Executor::with_pool(&catalog, pool.clone());
            let mut dag = OperatorDag::new();
            for (plan, _) in &batch {
                dag.add_root(&exec.bind(plan).expect("reference-accepted plan binds"));
            }
            let run = DagScheduler::sequential()
                .execute(&dag, &mut exec)
                .expect("budgeted batch executes");
            for ((plan, expected), got) in batch.iter().zip(&run.root_results) {
                let want_cols: Vec<&str> = expected.schema().attribute_names().collect();
                let got_cols: Vec<&str> = got.schema().attribute_names().collect();
                prop_assert_eq!(want_cols, got_cols, "schemas diverge for plan:\n{}", plan);
                prop_assert_eq!(
                    expected.rows(),
                    got.rows(),
                    "budget {:?} changed rows for plan:\n{}",
                    budget,
                    plan
                );
            }
            let stats = pool.stats();
            if budget.is_none() {
                // The never-spill fast path: no segment is ever written.
                prop_assert_eq!(stats.segments_written, 0);
                prop_assert_eq!(stats.spill_reloads, 0);
                prop_assert_eq!(exec.stats().grace_partitions, 0);
            } else if budget == Some(0) {
                // Budget 0 keeps nothing resident: whatever was staged went to segments.
                prop_assert_eq!(stats.cached_bytes, 0);
            }
        }
    }

    /// An epoch under a memory budget answers warm batches from spill-backed pins with the
    /// cold batch's exact bytes, executing nothing.
    #[test]
    fn budgeted_epoch_warm_batches_are_byte_identical(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let catalog = random_catalog(&mut rng);
        let batch = random_batch(&mut rng, &catalog);
        if batch.is_empty() {
            return;
        }
        let mut exec = Executor::new(&catalog);
        let mut epoch = EpochDag::with_memory_budget(rng.index(2048));
        let run_once = |epoch: &mut EpochDag, exec: &mut Executor<'_>| {
            for (plan, _) in &batch {
                epoch
                    .submit_with(fingerprint(plan), || exec.bind(plan))
                    .expect("plan binds");
            }
            epoch.execute_pending(exec, 1).expect("batch executes")
        };
        let cold = run_once(&mut epoch, &mut exec);
        let cold_rows: Vec<Vec<Tuple>> = cold
            .root_results
            .iter()
            .map(|r| r.rows().to_vec())
            .collect();
        for ((_, expected), got) in batch.iter().zip(&cold.root_results) {
            prop_assert_eq!(expected.rows(), got.rows());
        }
        drop(cold); // drop every external Arc so warm answers must come through the pin set

        let warm = run_once(&mut epoch, &mut exec);
        prop_assert_eq!(warm.report.nodes_executed, 0, "warm batch re-executed");
        for (want, got) in cold_rows.iter().zip(&warm.root_results) {
            prop_assert_eq!(want, &got.rows().to_vec(), "warm reload changed rows");
        }
    }
}
