//! Property tests: shared-operator DAG execution is byte-identical to the row-at-a-time
//! [`ReferenceExecutor`].
//!
//! For every randomly generated (catalog, plan batch) — random schemas, random data, random
//! operator trees with deliberately overlapping sub-plans — the merged batch DAG must return,
//! for every root, exactly the relation the reference evaluator computes for that plan alone:
//! same schema, same rows, same row order.  Sequential and parallel scheduling must agree with
//! each other *and* with the reference, and every distinct bound operator must execute exactly
//! once no matter how many roots share it.

use proptest::prelude::*;
use proptest::TestRng;
use urm_engine::optimize::fingerprint;
use urm_engine::{
    AggFunc, CompareOp, DagScheduler, EpochDag, Executor, OperatorDag, Plan, Predicate,
    ReferenceExecutor,
};
use urm_storage::{Attribute, Catalog, DataType, Relation, Schema, Tuple, Value};

/// The value domain is deliberately tiny so selections and joins actually hit.
fn random_value(rng: &mut TestRng, dt: DataType) -> Value {
    if rng.index(10) == 0 {
        return Value::Null;
    }
    match dt {
        DataType::Int => Value::from(rng.index(5) as i64),
        DataType::Float => Value::from([0.0, 1.5, 2.5][rng.index(3)]),
        DataType::Text => Value::from(["a", "b", "c"][rng.index(3)]),
        DataType::Bool => Value::from(rng.index(2) == 0),
        _ => Value::Null,
    }
}

fn random_type(rng: &mut TestRng) -> DataType {
    [
        DataType::Int,
        DataType::Float,
        DataType::Text,
        DataType::Bool,
    ][rng.index(4)]
}

fn random_catalog(rng: &mut TestRng) -> Catalog {
    let mut cat = Catalog::new();
    let nrels = 2 + rng.index(2);
    for r in 0..nrels {
        let arity = 1 + rng.index(4);
        let attrs: Vec<Attribute> = (0..arity)
            .map(|i| Attribute::new(format!("c{i}"), random_type(rng)))
            .collect();
        let schema = Schema::new(format!("R{r}"), attrs.clone());
        let nrows = rng.index(9);
        let rows = (0..nrows)
            .map(|_| {
                Tuple::new(
                    attrs
                        .iter()
                        .map(|a| random_value(rng, a.data_type))
                        .collect(),
                )
            })
            .collect();
        cat.insert(Relation::new(schema, rows).unwrap());
    }
    cat
}

fn random_column(rng: &mut TestRng, schema: Option<&Schema>) -> String {
    if let Some(schema) = schema {
        if schema.arity() > 0 {
            let names: Vec<&str> = schema.attribute_names().collect();
            return names[rng.index(names.len())].to_string();
        }
    }
    "ghost.column".to_string()
}

fn random_predicate(rng: &mut TestRng, schema: Option<&Schema>) -> Predicate {
    if rng.index(3) == 0 {
        Predicate::column_eq(random_column(rng, schema), random_column(rng, schema))
    } else {
        let column = random_column(rng, schema);
        let dt = schema
            .and_then(|s| s.position(&column))
            .map(|p| schema.unwrap().attributes()[p].data_type)
            .unwrap_or(DataType::Int);
        let op = [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ][rng.index(6)];
        Predicate::compare(column, op, random_value(rng, dt))
    }
}

/// A random plan built *bottom-up from a shared pool of sub-plans*: later plans pick earlier
/// sub-plans as building blocks, which is what gives the merged DAG genuine cross-root sharing.
/// Every scan is uniquely aliased so products never collide on attribute names; products of
/// pooled sub-plans are additionally guarded against overlapping schemas.
fn random_plan(
    rng: &mut TestRng,
    catalog: &Catalog,
    pool: &mut Vec<Plan>,
    alias_seq: &mut usize,
    depth: usize,
) -> Plan {
    let names: Vec<String> = catalog.relation_names().map(String::from).collect();
    let fresh_scan = |rng: &mut TestRng, alias_seq: &mut usize| {
        *alias_seq += 1;
        Plan::scan_as(
            names[rng.index(names.len())].clone(),
            format!("A{alias_seq}"),
        )
    };
    let mut plan = if !pool.is_empty() && rng.index(2) == 0 {
        pool[rng.index(pool.len())].clone()
    } else {
        fresh_scan(rng, alias_seq)
    };
    for _ in 0..depth {
        let schema = plan.output_schema(catalog).ok();
        plan = match rng.index(4) {
            0 => plan.select(random_predicate(rng, schema.as_ref())),
            1 => {
                let Some(schema) = schema.as_ref().filter(|s| s.arity() > 0) else {
                    continue;
                };
                let mut columns: Vec<String> = Vec::new();
                for _ in 0..1 + rng.index(2) {
                    let c = random_column(rng, Some(schema));
                    if !columns.contains(&c) {
                        columns.push(c);
                    }
                }
                plan.project(columns)
            }
            2 => {
                let other = if !pool.is_empty() && rng.index(2) == 0 {
                    pool[rng.index(pool.len())].clone()
                } else {
                    fresh_scan(rng, alias_seq)
                };
                // A product of overlapping schemas (e.g. a pooled sub-plan multiplied with
                // itself) would panic on duplicate attribute names; skip those pairings.
                let overlaps = match (&schema, other.output_schema(catalog).ok()) {
                    (Some(ls), Some(rs)) => {
                        let left: std::collections::HashSet<&str> = ls.attribute_names().collect();
                        rs.attribute_names().any(|n| left.contains(n))
                    }
                    _ => true,
                };
                if overlaps {
                    plan.select(random_predicate(rng, schema.as_ref()))
                } else {
                    plan.product(other)
                }
            }
            _ => {
                if rng.index(2) == 0 {
                    plan.aggregate(AggFunc::Count)
                } else {
                    plan.select(random_predicate(rng, schema.as_ref()))
                }
            }
        };
        pool.push(plan.clone());
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Merged-DAG execution (sequential and parallel) returns, per root, byte-identical
    /// results to the reference evaluator running each plan independently.
    #[test]
    fn dag_execution_matches_reference(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let catalog = random_catalog(&mut rng);
        let mut pool: Vec<Plan> = Vec::new();
        let mut alias_seq = 0usize;
        let nplans = 2 + rng.index(4);
        // Keep only plans the reference evaluator accepts; the merged DAG fails the whole
        // batch on any failing node, so error plans are covered by their own test below.
        let mut batch: Vec<(Plan, Relation)> = Vec::new();
        for _ in 0..nplans {
            let depth = 1 + rng.index(3);
            let plan = random_plan(&mut rng, &catalog, &mut pool, &mut alias_seq, depth);
            if let Ok(expected) = ReferenceExecutor::new(&catalog).run(&plan) {
                batch.push((plan, expected));
            }
        }
        // Duplicate one plan so the DAG always has at least one fully shared root.
        if let Some((plan, expected)) = batch.first().cloned() {
            batch.push((plan, expected));
        }
        if batch.is_empty() {
            return;
        }

        for workers in [1usize, 3] {
            let mut exec = Executor::new(&catalog);
            let mut dag = OperatorDag::new();
            for (plan, _) in &batch {
                let physical = exec.bind(plan).expect("reference-accepted plan binds");
                dag.add_root(&physical);
            }
            let run = DagScheduler::with_workers(workers)
                .execute(&dag, &mut exec)
                .expect("batch executes");
            prop_assert_eq!(run.root_results.len(), batch.len());
            for ((plan, expected), got) in batch.iter().zip(&run.root_results) {
                let want_cols: Vec<&str> = expected.schema().attribute_names().collect();
                let got_cols: Vec<&str> = got.schema().attribute_names().collect();
                prop_assert_eq!(want_cols, got_cols, "schemas diverge for plan:\n{}", plan);
                prop_assert_eq!(expected.rows(), got.rows(), "rows diverge for plan:\n{}", plan);
            }
            // Exactly-once: the executor ran one operator (or scan) per distinct DAG node.
            prop_assert_eq!(
                exec.stats().operators_executed + exec.stats().scans,
                dag.node_count() as u64
            );
            // The duplicated root never added nodes.
            prop_assert!(dag.operators_reused() > 0);
        }
    }

    /// Per-epoch persistent DAG: cold and warm batches on one [`EpochDag`] return, for every
    /// root and any worker count, exactly the rows of the rebuild-every-batch path and of the
    /// reference evaluator — and the warm repeat neither rebinds nor executes anything.
    #[test]
    fn epoch_warm_batches_match_rebuild_every_batch(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let catalog = random_catalog(&mut rng);
        let mut pool: Vec<Plan> = Vec::new();
        let mut alias_seq = 0usize;
        let nplans = 2 + rng.index(4);
        let mut batch: Vec<(Plan, Relation)> = Vec::new();
        for _ in 0..nplans {
            let depth = 1 + rng.index(3);
            let plan = random_plan(&mut rng, &catalog, &mut pool, &mut alias_seq, depth);
            if let Ok(expected) = ReferenceExecutor::new(&catalog).run(&plan) {
                batch.push((plan, expected));
            }
        }
        if batch.is_empty() {
            return;
        }

        for workers in [1usize, 3] {
            let mut exec = Executor::new(&catalog);
            let mut epoch = EpochDag::new();
            for round in 0..3 {
                for (plan, _) in &batch {
                    // Bind the raw plan (no optimiser pass) so expectations stay row-exact.
                    epoch
                        .submit_with(fingerprint(plan), || exec.bind(plan))
                        .expect("reference-accepted plan binds");
                }
                let run = epoch.execute_pending(&mut exec, workers).expect("batch executes");
                prop_assert_eq!(run.root_results.len(), batch.len());
                for ((plan, expected), got) in batch.iter().zip(&run.root_results) {
                    prop_assert_eq!(
                        expected.rows(),
                        got.rows(),
                        "round {} (workers={}) diverges for plan:\n{}",
                        round,
                        workers,
                        plan
                    );
                }
                if round > 0 {
                    prop_assert_eq!(run.report.bind_misses, 0, "warm round rebound a plan");
                    prop_assert_eq!(run.report.nodes_executed, 0, "warm round executed a node");
                    // Duplicate plans in the batch dedup onto one root node, so the reuse
                    // count is per distinct root.
                    prop_assert!(run.report.results_reused >= 1);
                    prop_assert!(run.report.results_reused <= batch.len() as u64);
                }
            }

            // The rebuild-every-batch path over the same plans agrees bit-for-bit.
            let mut rebuild_exec = Executor::new(&catalog);
            let mut dag = OperatorDag::new();
            for (plan, _) in &batch {
                dag.add_root(&rebuild_exec.bind(plan).expect("plan binds"));
            }
            let rebuilt = DagScheduler::with_workers(workers)
                .execute(&dag, &mut rebuild_exec)
                .expect("rebuild batch executes");
            for ((plan, expected), got) in batch.iter().zip(&rebuilt.root_results) {
                prop_assert_eq!(expected.rows(), got.rows(), "rebuild diverges for plan:\n{}", plan);
            }
        }
    }

    /// Plans the reference evaluator rejects are rejected by the DAG path too (at bind or at
    /// execution), never silently mis-evaluated.
    #[test]
    fn dag_execution_rejects_what_the_reference_rejects(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let catalog = random_catalog(&mut rng);
        let mut pool: Vec<Plan> = Vec::new();
        let mut alias_seq = 0usize;
        let depth = 1 + rng.index(3);
        let plan = random_plan(&mut rng, &catalog, &mut pool, &mut alias_seq, depth);
        let reference = ReferenceExecutor::new(&catalog).run(&plan);
        if reference.is_ok() {
            return;
        }
        let mut exec = Executor::new(&catalog);
        let outcome = exec.bind(&plan).and_then(|physical| {
            let mut dag = OperatorDag::new();
            dag.add_root(&physical);
            DagScheduler::sequential().execute(&dag, &mut exec)
        });
        prop_assert!(outcome.is_err(), "DAG accepted a plan the reference rejects:\n{}", plan);
    }
}
