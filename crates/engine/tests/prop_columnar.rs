//! Property tests: the vectorized columnar execution mode is observationally identical to
//! both the row-mode physical executor and the row-at-a-time reference evaluator.
//!
//! For every randomly generated (catalog, plan) pair — random schemas, random data, random
//! operator trees including deliberately invalid column references — all three engines must
//! either fail alike or produce byte-identical relations (schema, rows *and* row order) with
//! identical operator accounting.  Deterministic tests pin the columnar edge cases: all-null
//! columns, empty selections, dictionary overflow (Mixed fallback), and grace hash joins
//! whose build side pages through spill segments while the columnar mode is on.

use proptest::prelude::*;
use proptest::TestRng;
use std::sync::Arc;
use urm_engine::{
    AggFunc, Batch, ColsBatch, CompareOp, EpochDag, Executor, Plan, Predicate, ReferenceExecutor,
};
use urm_storage::{
    Attribute, Catalog, Column, ColumnarRelation, DataType, Relation, Schema, Tuple, Value,
};

/// The value domain is deliberately tiny so selections and joins actually hit; the null rate
/// is higher than `prop_physical`'s so small relations regularly produce all-null columns.
fn random_value(rng: &mut TestRng, dt: DataType) -> Value {
    if rng.index(4) == 0 {
        return Value::Null;
    }
    match dt {
        DataType::Int => Value::from(rng.index(5) as i64),
        DataType::Float => Value::from([0.0, 1.5, 2.5][rng.index(3)]),
        DataType::Text => Value::from(["a", "b", "c"][rng.index(3)]),
        DataType::Bool => Value::from(rng.index(2) == 0),
        _ => Value::Null,
    }
}

fn random_type(rng: &mut TestRng) -> DataType {
    [
        DataType::Int,
        DataType::Float,
        DataType::Text,
        DataType::Bool,
    ][rng.index(4)]
}

fn random_catalog(rng: &mut TestRng) -> Catalog {
    let mut cat = Catalog::new();
    let nrels = 2 + rng.index(2);
    for r in 0..nrels {
        let arity = 1 + rng.index(4);
        let attrs: Vec<Attribute> = (0..arity)
            .map(|i| Attribute::new(format!("c{i}"), random_type(rng)))
            .collect();
        let schema = Schema::new(format!("R{r}"), attrs.clone());
        let nrows = rng.index(9);
        let rows = (0..nrows)
            .map(|_| {
                Tuple::new(
                    attrs
                        .iter()
                        .map(|a| random_value(rng, a.data_type))
                        .collect(),
                )
            })
            .collect();
        cat.insert(Relation::new(schema, rows).unwrap());
    }
    cat
}

/// A column name from the plan's output schema — or, rarely, a bogus one.
fn random_column(rng: &mut TestRng, schema: Option<&Schema>) -> String {
    if let Some(schema) = schema {
        if schema.arity() > 0 && rng.index(8) != 0 {
            let names: Vec<&str> = schema.attribute_names().collect();
            return names[rng.index(names.len())].to_string();
        }
    }
    "ghost.column".to_string()
}

fn random_plan(rng: &mut TestRng, catalog: &Catalog, depth: usize, alias_seq: &mut usize) -> Plan {
    let names: Vec<String> = catalog.relation_names().map(String::from).collect();
    if depth == 0 || rng.index(4) == 0 {
        return match rng.index(4) {
            0 => {
                *alias_seq += 1;
                Plan::scan_as(
                    names[rng.index(names.len())].clone(),
                    format!("A{alias_seq}"),
                )
            }
            1 => {
                *alias_seq += 1;
                let n = *alias_seq;
                let arity = 1 + rng.index(2);
                let attrs: Vec<Attribute> = (0..arity)
                    .map(|i| Attribute::new(format!("V{n}.c{i}"), random_type(rng)))
                    .collect();
                let schema = Schema::new(format!("V{n}"), attrs.clone());
                let rows = (0..rng.index(4))
                    .map(|_| {
                        Tuple::new(
                            attrs
                                .iter()
                                .map(|a| random_value(rng, a.data_type))
                                .collect(),
                        )
                    })
                    .collect();
                Plan::values(Relation::new(schema, rows).unwrap())
            }
            _ => Plan::scan(names[rng.index(names.len())].clone()),
        };
    }
    match rng.index(6) {
        0 => {
            let input = random_plan(rng, catalog, depth - 1, alias_seq);
            let schema = input.output_schema(catalog).ok();
            let pred = random_predicate(rng, schema.as_ref(), 0);
            input.select(pred)
        }
        1 => {
            let input = random_plan(rng, catalog, depth - 1, alias_seq);
            let schema = input.output_schema(catalog).ok();
            let mut columns: Vec<String> = Vec::new();
            for _ in 0..rng.index(3) + usize::from(rng.index(10) != 0) {
                let c = random_column(rng, schema.as_ref());
                if !columns.contains(&c) {
                    columns.push(c);
                }
            }
            input.project(columns)
        }
        2 => {
            let left = random_plan(rng, catalog, depth - 1, alias_seq);
            let right = random_plan(rng, catalog, depth - 1, alias_seq);
            left.product(right)
        }
        3 => {
            let left = random_plan(rng, catalog, depth - 1, alias_seq);
            let right = random_plan(rng, catalog, depth - 1, alias_seq);
            let ls = left.output_schema(catalog).ok();
            let rs = right.output_schema(catalog).ok();
            let mut on = Vec::new();
            for _ in 0..rng.index(3) {
                let a = random_column(rng, ls.as_ref());
                let b = random_column(rng, rs.as_ref());
                if rng.index(2) == 0 {
                    on.push((a, b));
                } else {
                    on.push((b, a));
                }
            }
            left.hash_join(right, on)
        }
        _ => {
            let input = random_plan(rng, catalog, depth - 1, alias_seq);
            let schema = input.output_schema(catalog).ok();
            let func = if rng.index(2) == 0 {
                AggFunc::Count
            } else {
                AggFunc::Sum(random_column(rng, schema.as_ref()))
            };
            input.aggregate(func)
        }
    }
}

fn random_predicate(rng: &mut TestRng, schema: Option<&Schema>, depth: usize) -> Predicate {
    if depth < 2 && rng.index(4) == 0 {
        let parts = (0..1 + rng.index(3))
            .map(|_| random_predicate(rng, schema, depth + 1))
            .collect();
        return Predicate::And(parts);
    }
    if rng.index(3) == 0 {
        Predicate::column_eq(random_column(rng, schema), random_column(rng, schema))
    } else {
        let column = random_column(rng, schema);
        let dt = schema
            .and_then(|s| s.position(&column))
            .map(|p| schema.unwrap().attributes()[p].data_type)
            .unwrap_or(DataType::Int);
        let op = [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ][rng.index(6)];
        Predicate::compare(column, op, random_value(rng, dt))
    }
}

/// Asserts two successful results agree on schema, rows and row order.
fn assert_same_relation(want: &Relation, got: &Relation, plan: &Plan, label: &str) {
    let want_cols: Vec<&str> = want.schema().attribute_names().collect();
    let got_cols: Vec<&str> = got.schema().attribute_names().collect();
    assert_eq!(
        want_cols, got_cols,
        "{label} schemas diverge for plan:\n{plan}"
    );
    assert_eq!(
        want.rows(),
        got.rows(),
        "{label} rows diverge for plan:\n{plan}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Columnar mode ≡ row mode ≡ reference, including the operator accounting (the paper's
    /// Table IV metric) — so the vectorized kernels can never silently change what a query
    /// reports having done.
    #[test]
    fn columnar_mode_is_byte_identical_to_row_mode_and_reference(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let catalog = random_catalog(&mut rng);
        let mut alias_seq = 0usize;
        let depth = 1 + rng.index(3);
        let plan = random_plan(&mut rng, &catalog, depth, &mut alias_seq);

        let mut reference = ReferenceExecutor::new(&catalog);
        let mut columnar = Executor::new(&catalog); // columnar is the default
        let mut row_mode = Executor::new(&catalog).with_columnar(false);
        prop_assert!(columnar.columnar_enabled());
        prop_assert!(!row_mode.columnar_enabled());

        let expected = reference.run(&plan);
        let col = columnar.run(&plan);
        let row = row_mode.run(&plan);

        match (&expected, &col, &row) {
            (Ok(want), Ok(got_col), Ok(got_row)) => {
                assert_same_relation(want, got_col, &plan, "columnar");
                assert_same_relation(want, got_row, &plan, "row-mode");
                for (stats, label) in [(columnar.stats(), "columnar"), (row_mode.stats(), "row")] {
                    prop_assert_eq!(
                        reference.stats().operators_executed,
                        stats.operators_executed,
                        "{} operator count diverges for plan:\n{}", label, &plan
                    );
                    prop_assert_eq!(reference.stats().scans, stats.scans);
                    prop_assert_eq!(reference.stats().tuples_read, stats.tuples_read);
                    prop_assert_eq!(reference.stats().tuples_output, stats.tuples_output);
                }
                prop_assert_eq!(
                    row_mode.stats().columnar_rows, 0,
                    "row mode must never touch the vectorized kernels"
                );
            }
            (Err(_), Err(_), Err(_)) => {
                // All three reject the plan (error classes may differ — see prop_physical).
            }
            _ => prop_assert!(
                false,
                "outcome diverges for plan:\n{}\nreference: {:?}\ncolumnar: {:?}\nrow: {:?}",
                plan,
                expected.as_ref().map(|r| r.len()),
                col.as_ref().map(|r| r.len()),
                row.as_ref().map(|r| r.len())
            ),
        }
    }

    /// Dictionary overflow: a text column with more distinct strings than the dictionary
    /// limit converts to the generic `Mixed` fallback — and the vectorized kernels over it
    /// still agree with the row path, row for row.
    #[test]
    fn dictionary_overflow_falls_back_without_changing_answers(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let nrows = 4 + rng.index(12);
        let schema = Schema::new(
            "T",
            vec![
                Attribute::new("s", DataType::Text),
                Attribute::new("k", DataType::Int),
            ],
        );
        let rows: Vec<Tuple> = (0..nrows)
            .map(|i| {
                let s = if rng.index(6) == 0 {
                    Value::Null
                } else {
                    // More distinct strings than the forced dictionary limit below.
                    Value::from(format!("s{}", rng.index(8)))
                };
                Tuple::new(vec![s, Value::from((i % 3) as i64)])
            })
            .collect();
        let rel = Arc::new(Relation::new(schema.clone(), rows).unwrap());

        // Limit 2 guarantees overflow whenever ≥ 3 distinct strings appear.
        let conv = ColumnarRelation::from_relation_with_limit(&rel, 2);
        let distinct: std::collections::BTreeSet<&Tuple> = rel.rows().iter().collect();
        let _ = distinct; // silence when the assertion below is vacuous at tiny sizes
        let batch = ColsBatch::from_leaf(conv.columns().to_vec(), Arc::clone(&rel));

        // Filter on the (possibly Mixed) text column, then materialise.
        let predicate = urm_engine::physical::BoundPredicate::Compare {
            pos: 0,
            op: CompareOp::Ge,
            value: Value::from("s3"),
        };
        let filtered = Batch::Cols(batch.filter(&predicate)).materialize(rel.schema());
        let expected: Vec<&Tuple> = rel
            .rows()
            .iter()
            .filter(|t| {
                t.get(0).is_some_and(|v| !v.is_null() && CompareOp::Ge.eval(v, &Value::from("s3")))
            })
            .collect();
        prop_assert_eq!(
            expected.len(),
            filtered.len(),
            "overflowed filter changed the survivor count"
        );
        for (want, got) in expected.iter().zip(filtered.rows()) {
            prop_assert_eq!(*want, got, "overflowed filter changed rows");
        }
    }
}

/// A catalog whose relations force the columnar edge cases deterministically.
fn edge_catalog() -> Catalog {
    let mut cat = Catalog::new();
    // An entirely-null Int column, an entirely-null Text column, and a live key.
    let schema = Schema::new(
        "N",
        vec![
            Attribute::new("dead_int", DataType::Int),
            Attribute::new("dead_text", DataType::Text),
            Attribute::new("k", DataType::Int),
        ],
    );
    let rows = (0..6)
        .map(|i| Tuple::new(vec![Value::Null, Value::Null, Value::from(i % 3)]))
        .collect();
    cat.insert(Relation::new(schema, rows).unwrap());

    let schema = Schema::new(
        "M",
        vec![
            Attribute::new("k", DataType::Int),
            Attribute::new("v", DataType::Float),
        ],
    );
    let rows = (0..5)
        .map(|i| Tuple::new(vec![Value::from(i % 3), Value::from(i as f64 / 2.0)]))
        .collect();
    cat.insert(Relation::new(schema, rows).unwrap());
    cat
}

/// Runs a plan in both executor modes and against the reference, asserting byte-identity.
fn assert_modes_agree(catalog: &Catalog, plan: &Plan) {
    let expected = ReferenceExecutor::new(catalog).run(plan);
    let col = Executor::new(catalog).run(plan);
    let row = Executor::new(catalog).with_columnar(false).run(plan);
    match (expected, col, row) {
        (Ok(want), Ok(got_col), Ok(got_row)) => {
            assert_eq!(want.rows(), got_col.rows(), "columnar diverges: {plan}");
            assert_eq!(want.rows(), got_row.rows(), "row mode diverges: {plan}");
        }
        (Err(_), Err(_), Err(_)) => {}
        other => panic!("outcome diverges for {plan}: {other:?}"),
    }
}

#[test]
fn all_null_columns_select_join_and_aggregate_identically() {
    let catalog = edge_catalog();
    // Predicates over all-null columns match nothing in either mode.
    assert_modes_agree(
        &catalog,
        &Plan::scan("N").select(Predicate::compare(
            "N.dead_int",
            CompareOp::Le,
            Value::from(3i64),
        )),
    );
    // Joins keyed on an all-null column produce no rows; nulls never match keys.
    assert_modes_agree(
        &catalog,
        &Plan::scan("N").hash_join(Plan::scan("M"), vec![("N.dead_int".into(), "M.k".into())]),
    );
    // SUM over an all-null numeric column folds nothing (0.0); over an all-null text column
    // the classifier stores Int-under-full-mask, so it folds nothing too — both modes agree.
    assert_modes_agree(
        &catalog,
        &Plan::scan("N").aggregate(AggFunc::Sum("N.dead_int".into())),
    );
    assert_modes_agree(
        &catalog,
        &Plan::scan("N").aggregate(AggFunc::Sum("N.dead_text".into())),
    );
}

#[test]
fn empty_selections_propagate_identically() {
    let catalog = edge_catalog();
    let none = Predicate::compare("N.k", CompareOp::Gt, Value::from(100i64));
    // Nothing survives the filter; downstream join, aggregate and projection must agree on
    // the empty output (schema intact, zero rows) in both modes.
    assert_modes_agree(&catalog, &Plan::scan("N").select(none.clone()));
    assert_modes_agree(
        &catalog,
        &Plan::scan("N")
            .select(none.clone())
            .hash_join(Plan::scan("M"), vec![("N.k".into(), "M.k".into())])
            .project(vec!["M.v".into()]),
    );
    assert_modes_agree(
        &catalog,
        &Plan::scan("N").select(none).aggregate(AggFunc::Count),
    );
}

#[test]
fn dictionary_overflow_produces_mixed_columns() {
    let schema = Schema::new("T", vec![Attribute::new("s", DataType::Text)]);
    let rows: Vec<Tuple> = (0..8)
        .map(|i| Tuple::new(vec![Value::from(format!("s{i}"))]))
        .collect();
    let rel = Arc::new(Relation::new(schema, rows).unwrap());
    let conv = ColumnarRelation::from_relation_with_limit(&rel, 4);
    assert!(
        matches!(conv.columns()[0].as_ref(), Column::Mixed(_)),
        "8 distinct strings over a 4-entry dictionary limit must fall back to Mixed"
    );
    // The fallback still reconstructs every value exactly.
    for (i, tuple) in rel.rows().iter().enumerate() {
        assert_eq!(conv.columns()[0].value_at(i), tuple.get(0).unwrap().clone());
    }
}

/// Satellite regression: a grace hash join whose build side both converts to columnar (the
/// scan warms the catalog cache) and pages through spill segments must stay byte-identical
/// with columnar mode on — cold and warm.
#[test]
fn grace_join_over_spilled_columnar_build_side_is_byte_identical() {
    let mut cat = Catalog::new();
    let schema = Schema::new(
        "Probe",
        vec![
            Attribute::new("k", DataType::Int),
            Attribute::new("tag", DataType::Text),
        ],
    );
    let rows = (0..40)
        .map(|i| {
            Tuple::new(vec![
                Value::from(i % 16),
                Value::from(format!("p{}", i % 4)),
            ])
        })
        .collect();
    cat.insert(Relation::new(schema, rows).unwrap());
    let schema = Schema::new(
        "Build",
        vec![
            Attribute::new("k", DataType::Int),
            Attribute::new("payload", DataType::Text),
        ],
    );
    let rows = (0..120)
        .map(|i| {
            Tuple::new(vec![
                Value::from(i % 16),
                Value::from(format!("payload-{}", i % 10)),
            ])
        })
        .collect();
    cat.insert(Relation::new(schema, rows).unwrap());

    let plan = Plan::scan("Probe")
        .select(Predicate::compare(
            "Probe.k",
            CompareOp::Lt,
            Value::from(12i64),
        ))
        .hash_join(
            Plan::scan("Build"),
            vec![("Probe.k".into(), "Build.k".into())],
        );
    let expected = ReferenceExecutor::new(&cat).run(&plan).unwrap();

    // Budget 0: every staged relation spills, and any non-empty build side exceeds
    // budget/2 — the grace path is forced while columnar mode stays on (the default).
    let mut epoch = EpochDag::with_memory_budget(0);
    let pool = epoch.pool().unwrap().clone();
    let mut exec = Executor::with_pool(&cat, pool.clone());
    assert!(exec.columnar_enabled());
    let run_once = |epoch: &mut EpochDag, exec: &mut Executor<'_>| {
        epoch.submit(&plan, exec).expect("plan submits");
        epoch
            .execute_pending(exec, 1)
            .expect("budgeted batch runs")
            .root_results
            .remove(0)
    };
    let cold = run_once(&mut epoch, &mut exec);
    assert_eq!(expected.rows(), cold.rows(), "cold grace join diverged");
    assert!(
        exec.stats().grace_partitions >= 2,
        "budget 0 must force the grace path (got {} partitions)",
        exec.stats().grace_partitions
    );
    assert!(
        exec.stats().columnar_rows > 0,
        "the pre-join selection should still run through the columnar kernels"
    );
    assert!(
        pool.stats().segments_written > 0,
        "budget 0 must write spill segments"
    );

    drop(cold); // warm answers must come back through the spilled pins
    let warm = run_once(&mut epoch, &mut exec);
    assert_eq!(expected.rows(), warm.rows(), "warm spilled reload diverged");
    assert!(
        pool.stats().spill_reloads > 0,
        "the warm batch should reload from segments"
    );
}
