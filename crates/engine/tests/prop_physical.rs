//! Property tests: the bound physical executor is observationally identical to the retained
//! row-at-a-time reference evaluator.
//!
//! For every randomly generated (catalog, plan) pair — random schemas, random data, random
//! operator trees including deliberately invalid column references — both executors must
//! either fail with the same error class, or produce byte-identical relations (schema,
//! rows *and* row order) with identical operator accounting.

use proptest::prelude::*;
use proptest::TestRng;
use urm_engine::{AggFunc, CompareOp, Executor, Plan, Predicate, ReferenceExecutor};
use urm_storage::{Attribute, Catalog, DataType, Relation, Schema, Tuple, Value};

/// The value domain is deliberately tiny so selections and joins actually hit.
fn random_value(rng: &mut TestRng, dt: DataType) -> Value {
    if rng.index(10) == 0 {
        return Value::Null;
    }
    match dt {
        DataType::Int => Value::from(rng.index(5) as i64),
        DataType::Float => Value::from([0.0, 1.5, 2.5][rng.index(3)]),
        DataType::Text => Value::from(["a", "b", "c"][rng.index(3)]),
        DataType::Bool => Value::from(rng.index(2) == 0),
        _ => Value::Null,
    }
}

fn random_type(rng: &mut TestRng) -> DataType {
    [
        DataType::Int,
        DataType::Float,
        DataType::Text,
        DataType::Bool,
    ][rng.index(4)]
}

fn random_catalog(rng: &mut TestRng) -> Catalog {
    let mut cat = Catalog::new();
    let nrels = 2 + rng.index(2);
    for r in 0..nrels {
        let arity = 1 + rng.index(4);
        let attrs: Vec<Attribute> = (0..arity)
            .map(|i| Attribute::new(format!("c{i}"), random_type(rng)))
            .collect();
        let schema = Schema::new(format!("R{r}"), attrs.clone());
        let nrows = rng.index(9);
        let rows = (0..nrows)
            .map(|_| {
                Tuple::new(
                    attrs
                        .iter()
                        .map(|a| random_value(rng, a.data_type))
                        .collect(),
                )
            })
            .collect();
        cat.insert(Relation::new(schema, rows).unwrap());
    }
    cat
}

/// A column name from the plan's output schema — or, rarely, a bogus one.
fn random_column(rng: &mut TestRng, schema: Option<&Schema>) -> String {
    if let Some(schema) = schema {
        if schema.arity() > 0 && rng.index(8) != 0 {
            let names: Vec<&str> = schema.attribute_names().collect();
            return names[rng.index(names.len())].to_string();
        }
    }
    "ghost.column".to_string()
}

fn random_plan(rng: &mut TestRng, catalog: &Catalog, depth: usize, alias_seq: &mut usize) -> Plan {
    let names: Vec<String> = catalog.relation_names().map(String::from).collect();
    if depth == 0 || rng.index(4) == 0 {
        // Leaf: a (possibly aliased) scan, or a literal Values relation.
        return match rng.index(4) {
            0 => {
                *alias_seq += 1;
                Plan::scan_as(
                    names[rng.index(names.len())].clone(),
                    format!("A{alias_seq}"),
                )
            }
            1 => {
                *alias_seq += 1;
                let n = *alias_seq;
                let arity = 1 + rng.index(2);
                let attrs: Vec<Attribute> = (0..arity)
                    .map(|i| Attribute::new(format!("V{n}.c{i}"), random_type(rng)))
                    .collect();
                let schema = Schema::new(format!("V{n}"), attrs.clone());
                let rows = (0..rng.index(4))
                    .map(|_| {
                        Tuple::new(
                            attrs
                                .iter()
                                .map(|a| random_value(rng, a.data_type))
                                .collect(),
                        )
                    })
                    .collect();
                Plan::values(Relation::new(schema, rows).unwrap())
            }
            _ => Plan::scan(names[rng.index(names.len())].clone()),
        };
    }
    match rng.index(6) {
        0 => {
            let input = random_plan(rng, catalog, depth - 1, alias_seq);
            let schema = input.output_schema(catalog).ok();
            let pred = random_predicate(rng, schema.as_ref(), 0);
            input.select(pred)
        }
        1 => {
            let input = random_plan(rng, catalog, depth - 1, alias_seq);
            let schema = input.output_schema(catalog).ok();
            let mut columns: Vec<String> = Vec::new();
            for _ in 0..rng.index(3) + usize::from(rng.index(10) != 0) {
                let c = random_column(rng, schema.as_ref());
                // Duplicate projection columns would panic at schema construction (in both
                // executors alike); the engine's callers never produce them.
                if !columns.contains(&c) {
                    columns.push(c);
                }
            }
            input.project(columns) // occasionally empty → both sides must error identically
        }
        2 => {
            let left = random_plan(rng, catalog, depth - 1, alias_seq);
            let right = random_plan(rng, catalog, depth - 1, alias_seq);
            left.product(right)
        }
        3 => {
            let left = random_plan(rng, catalog, depth - 1, alias_seq);
            let right = random_plan(rng, catalog, depth - 1, alias_seq);
            let ls = left.output_schema(catalog).ok();
            let rs = right.output_schema(catalog).ok();
            let mut on = Vec::new();
            for _ in 0..rng.index(3) {
                // Sometimes swapped, sometimes bogus — key resolution must agree too.
                let a = random_column(rng, ls.as_ref());
                let b = random_column(rng, rs.as_ref());
                if rng.index(2) == 0 {
                    on.push((a, b));
                } else {
                    on.push((b, a));
                }
            }
            left.hash_join(right, on)
        }
        _ => {
            let input = random_plan(rng, catalog, depth - 1, alias_seq);
            let schema = input.output_schema(catalog).ok();
            let func = if rng.index(2) == 0 {
                AggFunc::Count
            } else {
                AggFunc::Sum(random_column(rng, schema.as_ref()))
            };
            input.aggregate(func)
        }
    }
}

fn random_predicate(rng: &mut TestRng, schema: Option<&Schema>, depth: usize) -> Predicate {
    if depth < 2 && rng.index(4) == 0 {
        let parts = (0..1 + rng.index(3))
            .map(|_| random_predicate(rng, schema, depth + 1))
            .collect();
        return Predicate::And(parts);
    }
    if rng.index(3) == 0 {
        Predicate::column_eq(random_column(rng, schema), random_column(rng, schema))
    } else {
        let column = random_column(rng, schema);
        let dt = schema
            .and_then(|s| s.position(&column))
            .map(|p| schema.unwrap().attributes()[p].data_type)
            .unwrap_or(DataType::Int);
        let op = [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ][rng.index(6)];
        Predicate::compare(column, op, random_value(rng, dt))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn physical_executor_matches_reference(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let catalog = random_catalog(&mut rng);
        let mut alias_seq = 0usize;
        let depth = 1 + rng.index(3);
        let plan = random_plan(&mut rng, &catalog, depth, &mut alias_seq);

        let mut reference = ReferenceExecutor::new(&catalog);
        let mut physical = Executor::new(&catalog);
        let expected = reference.run(&plan);
        let actual = physical.run(&plan);

        match (&expected, &actual) {
            (Ok(want), Ok(got)) => {
                let want_cols: Vec<&str> = want.schema().attribute_names().collect();
                let got_cols: Vec<&str> = got.schema().attribute_names().collect();
                prop_assert_eq!(want_cols, got_cols, "schemas diverge for plan:\n{}", plan);
                prop_assert_eq!(
                    want.rows(),
                    got.rows(),
                    "rows diverge for plan:\n{}",
                    plan
                );
                // Operator accounting must agree too (the paper's Table IV metric).
                prop_assert_eq!(
                    reference.stats().operators_executed,
                    physical.stats().operators_executed
                );
                prop_assert_eq!(reference.stats().scans, physical.stats().scans);
                prop_assert_eq!(reference.stats().tuples_read, physical.stats().tuples_read);
                prop_assert_eq!(
                    reference.stats().tuples_output,
                    physical.stats().tuples_output
                );
            }
            (Err(_), Err(_)) => {
                // Both reject the plan.  The error *classes* may differ when a plan contains
                // both a static error (unknown column) and a runtime error (SUM over text):
                // binding reports every static error up front, while the lazy reference
                // evaluator trips over whichever runtime error it reaches first.
            }
            _ => prop_assert!(
                false,
                "outcome diverges for plan:\n{}\nreference: {:?}\nphysical: {:?}",
                plan,
                expected.as_ref().map(|r| r.len()),
                actual.as_ref().map(|r| r.len())
            ),
        }
    }

    #[test]
    fn physical_executor_scans_are_always_views(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let catalog = random_catalog(&mut rng);
        let names: Vec<String> = catalog.relation_names().map(String::from).collect();
        let name = names[rng.index(names.len())].clone();
        let mut exec = Executor::new(&catalog);
        let out = exec.run(&Plan::scan(name.clone())).unwrap();
        prop_assert!(out.shares_rows_with(&catalog.get(&name).unwrap()));
    }
}
