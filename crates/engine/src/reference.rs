//! The retained row-at-a-time reference evaluator.
//!
//! This module preserves the pre-physical-plan execution path **verbatim in behaviour and in
//! cost**: every operator re-resolves column names against its input schema (per row, for
//! selections), every scan copies the base rows into a fresh buffer, and every `Values` leaf is
//! deep-copied into the next operator.  It exists for two reasons:
//!
//! * it is the *oracle* of the engine's property tests — the physical executor must produce
//!   byte-identical relations (schema and row order included) for every plan; and
//! * it is the *baseline* of the executor micro-benchmark (`urm-bench`), which tracks the
//!   throughput of the bound physical path against the clone-heavy evaluation it replaced.
//!
//! Production code paths never use this module; [`Executor`](crate::Executor) binds and
//! executes physical plans.

use crate::plan::qualify_schema;
use crate::{AggFunc, EngineError, EngineResult, ExecStats, Plan, Predicate};
use std::collections::HashMap;
use std::time::Instant;
use urm_storage::{Catalog, Relation, Schema, Tuple, Value};

/// Runs logical plans row-at-a-time with per-operator name resolution and per-leaf copies.
///
/// API mirror of [`Executor`](crate::Executor) (minus the physical entry points), accumulating
/// the same [`ExecStats`] counters so results *and* operator accounting can be compared.
pub struct ReferenceExecutor<'a> {
    catalog: &'a Catalog,
    stats: ExecStats,
}

impl<'a> ReferenceExecutor<'a> {
    /// Creates a reference executor over the given source instance.
    #[must_use]
    pub fn new(catalog: &'a Catalog) -> Self {
        ReferenceExecutor {
            catalog,
            stats: ExecStats::new(),
        }
    }

    /// Runs a plan to completion, returning the materialised result.
    pub fn run(&mut self, plan: &Plan) -> EngineResult<Relation> {
        let start = Instant::now();
        let result = self.eval(plan);
        self.stats.exec_time += start.elapsed();
        if result.is_ok() {
            self.stats.record_source_query();
        }
        result
    }

    /// The statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn eval(&mut self, plan: &Plan) -> EngineResult<Relation> {
        match plan {
            Plan::Scan { relation, alias } => {
                let base = self.catalog.require(relation)?;
                let schema = qualify_schema(base.schema(), alias);
                // Deliberate copy: the pre-refactor scan materialised a private row vector.
                let rows = base.rows().to_vec();
                self.stats.record_scan(rows.len() as u64);
                Ok(Relation::from_validated(schema, rows))
            }
            // Deliberate copy: the pre-refactor `Values` node deep-cloned the shared relation.
            Plan::Values(rel) => Ok(Relation::from_validated(
                rel.schema().clone(),
                rel.rows().to_vec(),
            )),
            Plan::Select { predicate, input } => {
                let input_rel = self.eval(input)?;
                let out = apply_select(&input_rel, predicate);
                self.stats
                    .record_operator(input_rel.len() as u64, out.len() as u64);
                Ok(out)
            }
            Plan::Project { columns, input } => {
                let input_rel = self.eval(input)?;
                let out = apply_project(&input_rel, columns)?;
                self.stats
                    .record_operator(input_rel.len() as u64, out.len() as u64);
                Ok(out)
            }
            Plan::Product { left, right } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                let out = apply_product(&l, &r);
                self.stats
                    .record_operator((l.len() + r.len()) as u64, out.len() as u64);
                Ok(out)
            }
            Plan::HashJoin { left, right, on } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                let out = apply_hash_join(&l, &r, on)?;
                self.stats
                    .record_operator((l.len() + r.len()) as u64, out.len() as u64);
                Ok(out)
            }
            Plan::Aggregate { func, input } => {
                let input_rel = self.eval(input)?;
                let out = apply_aggregate(&input_rel, func)?;
                self.stats
                    .record_operator(input_rel.len() as u64, out.len() as u64);
                Ok(out)
            }
        }
    }
}

/// Applies a selection to a materialised relation, resolving column names per row.
#[must_use]
pub fn apply_select(input: &Relation, predicate: &Predicate) -> Relation {
    let schema = input.schema().clone();
    let resolve = |c: &str| schema.position(c);
    let rows = input
        .iter()
        .filter(|t| predicate.eval(t, &resolve))
        .cloned()
        .collect();
    Relation::from_validated(schema, rows)
}

/// Applies a projection to a materialised relation.
pub fn apply_project(input: &Relation, columns: &[String]) -> EngineResult<Relation> {
    if columns.is_empty() {
        return Err(EngineError::InvalidPlan(
            "projection must keep at least one column".into(),
        ));
    }
    let schema = input.schema();
    let mut positions = Vec::with_capacity(columns.len());
    let mut attrs = Vec::with_capacity(columns.len());
    for c in columns {
        let pos = schema
            .position(c)
            .ok_or_else(|| EngineError::UnknownColumn {
                column: c.clone(),
                schema: schema.to_string(),
            })?;
        positions.push(pos);
        attrs.push(schema.attributes()[pos].clone());
    }
    let out_schema = Schema::new(format!("π({})", schema.name()), attrs);
    let rows = input.iter().map(|t| t.project(&positions)).collect();
    Ok(Relation::from_validated(out_schema, rows))
}

/// Applies a Cartesian product to two materialised relations.
#[must_use]
pub fn apply_product(left: &Relation, right: &Relation) -> Relation {
    let schema = left.schema().product(
        right.schema(),
        format!("{}×{}", left.schema().name(), right.schema().name()),
    );
    let mut rows = Vec::with_capacity(left.len().saturating_mul(right.len()));
    for l in left.iter() {
        for r in right.iter() {
            rows.push(l.concat(r));
        }
    }
    Relation::from_validated(schema, rows)
}

/// Applies a hash equi-join to two materialised relations, cloning key values per row.
pub fn apply_hash_join(
    left: &Relation,
    right: &Relation,
    on: &[(String, String)],
) -> EngineResult<Relation> {
    if on.is_empty() {
        return Ok(apply_product(left, right));
    }
    let ls = left.schema();
    let rs = right.schema();
    let mut left_keys = Vec::with_capacity(on.len());
    let mut right_keys = Vec::with_capacity(on.len());
    for (l, r) in on {
        // Join columns may arrive in either order; resolve each against the side that has it.
        let (lcol, rcol) = if ls.contains(l) && rs.contains(r) {
            (l, r)
        } else if ls.contains(r) && rs.contains(l) {
            (r, l)
        } else {
            return Err(EngineError::UnknownColumn {
                column: format!("{l} / {r}"),
                schema: format!("{ls} ⋈ {rs}"),
            });
        };
        left_keys.push(ls.require(lcol).map_err(EngineError::from)?);
        right_keys.push(rs.require(rcol).map_err(EngineError::from)?);
    }

    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(right.len());
    for t in right.iter() {
        let key: Vec<Value> = right_keys
            .iter()
            .map(|&i| t.get(i).cloned().unwrap_or(Value::Null))
            .collect();
        if key.iter().any(Value::is_null) {
            continue;
        }
        table.entry(key).or_default().push(t);
    }

    let schema = ls.product(rs, format!("{}⋈{}", ls.name(), rs.name()));
    let mut rows = Vec::new();
    for l in left.iter() {
        let key: Vec<Value> = left_keys
            .iter()
            .map(|&i| l.get(i).cloned().unwrap_or(Value::Null))
            .collect();
        if key.iter().any(Value::is_null) {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for r in matches {
                rows.push(l.concat(r));
            }
        }
    }
    Ok(Relation::from_validated(schema, rows))
}

/// Applies an aggregate, producing a single-row relation.
pub fn apply_aggregate(input: &Relation, func: &AggFunc) -> EngineResult<Relation> {
    let schema = input.schema();
    match func {
        AggFunc::Count => {
            let out_schema = Schema::new(
                format!("agg({})", schema.name()),
                vec![urm_storage::Attribute::new(
                    "count",
                    urm_storage::DataType::Int,
                )],
            );
            let row = Tuple::new(vec![Value::from(input.len() as i64)]);
            Ok(Relation::from_validated(out_schema, vec![row]))
        }
        AggFunc::Sum(col) => {
            let pos = schema
                .position(col)
                .ok_or_else(|| EngineError::UnknownColumn {
                    column: col.clone(),
                    schema: schema.to_string(),
                })?;
            let mut sum = 0.0f64;
            for t in input.iter() {
                match t.get(pos) {
                    Some(v) if v.is_null() => {}
                    Some(v) => {
                        sum += v.as_f64().ok_or_else(|| EngineError::InvalidAggregate {
                            func: "SUM",
                            column: col.clone(),
                        })?;
                    }
                    None => {}
                }
            }
            let out_schema = Schema::new(
                format!("agg({})", schema.name()),
                vec![urm_storage::Attribute::new(
                    format!("sum({col})"),
                    urm_storage::DataType::Float,
                )],
            );
            let row = Tuple::new(vec![Value::from(sum)]);
            Ok(Relation::from_validated(out_schema, vec![row]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urm_storage::{Attribute, DataType};

    fn catalog() -> Catalog {
        let schema = Schema::new(
            "R",
            vec![
                Attribute::new("a", DataType::Int),
                Attribute::new("b", DataType::Text),
            ],
        );
        let rows = (0..6)
            .map(|i| {
                Tuple::new(vec![
                    Value::from(i as i64),
                    Value::from(if i % 2 == 0 { "x" } else { "y" }),
                ])
            })
            .collect();
        let mut cat = Catalog::new();
        cat.insert(Relation::new(schema, rows).unwrap());
        cat
    }

    #[test]
    fn reference_scan_copies_the_row_buffer() {
        let cat = catalog();
        let mut exec = ReferenceExecutor::new(&cat);
        let out = exec.run(&Plan::scan("R")).unwrap();
        assert!(!out.shares_rows_with(&cat.get("R").unwrap()));
        assert_eq!(out.len(), 6);
        assert_eq!(exec.stats().scans, 1);
        assert_eq!(exec.stats().source_queries, 1);
    }

    #[test]
    fn reference_values_copies_the_relation() {
        let cat = catalog();
        let base = cat.get("R").unwrap();
        let mut exec = ReferenceExecutor::new(&cat);
        let out = exec
            .run(&Plan::values_shared(std::sync::Arc::clone(&base)))
            .unwrap();
        assert!(!out.shares_rows_with(&base));
        assert_eq!(out.rows(), base.rows());
    }
}
