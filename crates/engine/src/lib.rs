//! # urm-engine
//!
//! Relational-algebra plan trees and an in-memory executor for the URM reproduction of
//! *Evaluating Probabilistic Queries over Uncertain Matching* (ICDE 2012).
//!
//! The paper's algorithms (basic, e-basic, e-MQO, q-sharing, o-sharing, top-k) all bottom out in
//! running *source queries* — selections, projections, Cartesian products / equi-joins and
//! COUNT/SUM aggregates — against the source instance `D`.  This crate provides:
//!
//! * [`Plan`] — an algebraic plan tree whose nodes are exactly the operator classes of the
//!   paper's query model (Section III-A / VI-B), with structural equality and hashing so that
//!   identical source queries can be detected (e-basic) and common sub-expressions shared
//!   (e-MQO, o-sharing);
//! * [`Predicate`] / [`AggFunc`] — the predicate and aggregate language of Table III;
//! * [`physical`] — the bound physical-plan layer: [`physical::bind`] compiles a logical plan
//!   against a catalog (columns → positions, predicates → [`physical::BoundPredicate`], base
//!   row buffers captured) into a [`PhysicalPlan`];
//! * [`Executor`] — binds and evaluates physical operators batch-at-a-time over shared
//!   (`Arc`-backed) [`Relation`](urm_storage::Relation)s, with zero-copy scans and `Values`
//!   leaves;
//! * [`vectorized`] — columnar operator kernels over typed
//!   [`Column`](urm_storage::Column) vectors driven by selection vectors; the executor's
//!   default evaluation mode (toggle with [`Executor::with_columnar`]), byte-identical to
//!   the row path;
//! * [`dag`] — the shared-operator DAG runtime: bound plans are merged into an
//!   [`OperatorDag`] (nodes deduplicated by bound-plan fingerprint), which a [`DagScheduler`]
//!   executes with every distinct operator running exactly once — sequentially or on parallel
//!   worker threads, expensive ready nodes first.  All of the paper's sharing mechanisms lower
//!   onto it;
//! * [`epoch`] — the per-epoch persistent DAG: one [`EpochDag`] per (catalog, mapping set)
//!   epoch caches bindings by logical fingerprint and node results weakly, so a hot epoch's
//!   later batches skip rebinding and re-executing everything still materialised;
//! * [`feedback`] — the adaptive-execution loop: a per-epoch [`CardinalityStore`] records each
//!   node's observed output (rows, bytes, time) as batches execute and feeds it back into
//!   scheduler priorities, hash-join build sides and grace-join fan-out — never into answers,
//!   which stay byte-identical with the loop on or off;
//! * [`reference`] — the retained row-at-a-time evaluator, the oracle of the property tests
//!   and the baseline of the executor micro-benchmark;
//! * [`ExecStats`] — counters for executed operators and produced tuples, the metric reported
//!   in the paper's Table IV;
//! * [`optimize`] — selection push-down and product→join rewrites used when lowering
//!   reformulated queries, plus plan fingerprinting used by the MQO baseline.
//!
//! ```
//! use urm_engine::{CompareOp, Executor, Plan, Predicate};
//! use urm_storage::{Attribute, Catalog, DataType, Relation, Schema, Tuple, Value};
//!
//! let schema = Schema::new(
//!     "Customer",
//!     vec![
//!         Attribute::new("cname", DataType::Text),
//!         Attribute::new("oaddr", DataType::Text),
//!     ],
//! );
//! let rel = Relation::new(
//!     schema,
//!     vec![
//!         Tuple::new(vec![Value::from("Alice"), Value::from("aaa")]),
//!         Tuple::new(vec![Value::from("Bob"), Value::from("bbb")]),
//!     ],
//! )
//! .unwrap();
//! let mut catalog = Catalog::new();
//! catalog.insert(rel);
//!
//! // π_{cname} σ_{oaddr = 'aaa'} Customer
//! let plan = Plan::scan("Customer")
//!     .select(Predicate::compare("Customer.oaddr", CompareOp::Eq, Value::from("aaa")))
//!     .project(vec!["Customer.cname".into()]);
//!
//! let mut exec = Executor::new(&catalog);
//! let result = exec.run(&plan).unwrap();
//! assert_eq!(result.len(), 1);
//! assert_eq!(result.rows()[0].get(0), Some(&Value::from("Alice")));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dag;
pub mod epoch;
pub mod error;
pub mod executor;
pub mod expr;
pub mod feedback;
pub mod optimize;
pub mod physical;
pub mod plan;
pub mod reference;
pub mod stats;
pub mod vectorized;

pub use dag::{
    DagExecutor, DagResultCache, DagRun, DagRunReport, DagScheduler, NodeId, OperatorDag,
};
pub use epoch::{
    EpochDag, EpochRun, EpochRunReport, PinPolicy, PreparedBatch, DEFAULT_PIN_BUDGET_BYTES,
};
pub use error::{EngineError, EngineResult};
pub use executor::Executor;
pub use expr::{AggFunc, CompareOp, Predicate};
pub use feedback::{CardinalityStore, FeedbackSummary, JoinHint, Observed};
pub use physical::{BoundAggregate, BoundPredicate, PhysicalPlan};
pub use plan::Plan;
pub use reference::ReferenceExecutor;
pub use stats::ExecStats;
pub use vectorized::{Batch, ColsBatch};
