//! Relational algebra plan trees.

use crate::{AggFunc, EngineError, EngineResult, Predicate};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use urm_storage::{Attribute, Catalog, DataType, Relation, Schema};

/// A relational algebra plan over the source instance.
///
/// Plans are ordinary immutable trees with structural equality and hashing: two mappings that
/// reformulate a target query into the *same* source query produce equal `Plan` values, which is
/// precisely the sharing opportunity exploited by e-basic and q-sharing, and plan sub-trees are
/// the unit of sharing for e-MQO and o-sharing.
///
/// All column names in predicates, projections and aggregates are *qualified* (`alias.attr`):
/// [`Plan::Scan`] renames every attribute of the base relation to `alias.attr`, so products never
/// produce ambiguous columns, even for the self-joins of the paper's Q3/Q4.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Plan {
    /// Scan of a base relation under an alias.
    Scan {
        /// Catalog relation name.
        relation: String,
        /// Alias used to qualify the output columns (defaults to the relation name).
        alias: String,
    },
    /// An already-materialised relation (intermediate o-sharing results, e-unit inputs).
    Values(Arc<Relation>),
    /// Selection.
    Select {
        /// Predicate applied to each input row.
        predicate: Predicate,
        /// Input plan.
        input: Box<Plan>,
    },
    /// Projection onto a list of qualified columns.
    Project {
        /// Output columns in order.
        columns: Vec<String>,
        /// Input plan.
        input: Box<Plan>,
    },
    /// Cartesian product.
    Product {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Hash equi-join on pairs of columns (used after the product→join rewrite).
    HashJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Pairs of (left column, right column) that must be equal.
        on: Vec<(String, String)>,
    },
    /// Aggregation producing a single-row relation.
    Aggregate {
        /// Aggregate function.
        func: AggFunc,
        /// Input plan.
        input: Box<Plan>,
    },
}

impl Plan {
    /// Scans a base relation using its own name as the alias.
    pub fn scan(relation: impl Into<String>) -> Plan {
        let relation = relation.into();
        Plan::Scan {
            alias: relation.clone(),
            relation,
        }
    }

    /// Scans a base relation under an explicit alias (self-joins).
    pub fn scan_as(relation: impl Into<String>, alias: impl Into<String>) -> Plan {
        Plan::Scan {
            relation: relation.into(),
            alias: alias.into(),
        }
    }

    /// Wraps an already-materialised relation.
    #[must_use]
    pub fn values(relation: Relation) -> Plan {
        Plan::Values(Arc::new(relation))
    }

    /// Wraps a shared materialised relation without copying it.
    #[must_use]
    pub fn values_shared(relation: Arc<Relation>) -> Plan {
        Plan::Values(relation)
    }

    /// Applies a selection on top of this plan.
    #[must_use]
    pub fn select(self, predicate: Predicate) -> Plan {
        Plan::Select {
            predicate,
            input: Box::new(self),
        }
    }

    /// Applies a projection on top of this plan.
    #[must_use]
    pub fn project(self, columns: Vec<String>) -> Plan {
        Plan::Project {
            columns,
            input: Box::new(self),
        }
    }

    /// Builds the Cartesian product of this plan with another.
    #[must_use]
    pub fn product(self, other: Plan) -> Plan {
        Plan::Product {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Builds a hash equi-join of this plan with another.
    #[must_use]
    pub fn hash_join(self, other: Plan, on: Vec<(String, String)>) -> Plan {
        Plan::HashJoin {
            left: Box::new(self),
            right: Box::new(other),
            on,
        }
    }

    /// Applies an aggregate on top of this plan.
    #[must_use]
    pub fn aggregate(self, func: AggFunc) -> Plan {
        Plan::Aggregate {
            func,
            input: Box::new(self),
        }
    }

    /// The structural fingerprint of this plan (see [`crate::optimize::fingerprint`]).
    ///
    /// Identical plans — including plans built independently by different queries — share a
    /// fingerprint, which is what the shared sub-plan cache, the batch evaluator and the
    /// service-layer answer cache key on.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        crate::optimize::fingerprint(self)
    }

    /// Number of operator nodes in the plan (scans and values leaves included).
    #[must_use]
    pub fn node_count(&self) -> usize {
        1 + match self {
            Plan::Scan { .. } | Plan::Values(_) => 0,
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. } => input.node_count(),
            Plan::Product { left, right } | Plan::HashJoin { left, right, .. } => {
                left.node_count() + right.node_count()
            }
        }
    }

    /// Number of *operator* nodes (excluding leaves), the unit counted in the paper's Table IV.
    #[must_use]
    pub fn operator_count(&self) -> usize {
        match self {
            Plan::Scan { .. } | Plan::Values(_) => 0,
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. } => 1 + input.operator_count(),
            Plan::Product { left, right } | Plan::HashJoin { left, right, .. } => {
                1 + left.operator_count() + right.operator_count()
            }
        }
    }

    /// Direct children of this node.
    #[must_use]
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } | Plan::Values(_) => Vec::new(),
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. } => vec![input],
            Plan::Product { left, right } | Plan::HashJoin { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// Iterates over every sub-plan (pre-order), including `self`.
    #[must_use]
    pub fn subplans(&self) -> Vec<&Plan> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(p) = stack.pop() {
            out.push(p);
            stack.extend(p.children());
        }
        out
    }

    /// Names of the base relations scanned by the plan.
    #[must_use]
    pub fn scanned_relations(&self) -> Vec<&str> {
        self.subplans()
            .into_iter()
            .filter_map(|p| match p {
                Plan::Scan { relation, .. } => Some(relation.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Infers the output schema of the plan against a catalog.
    ///
    /// The schema of a [`Plan::Scan`] is the base relation's schema with every attribute renamed
    /// to `alias.attr` and the relation renamed to the alias.
    pub fn output_schema(&self, catalog: &Catalog) -> EngineResult<Schema> {
        match self {
            Plan::Scan { relation, alias } => {
                let base = catalog.require(relation)?;
                Ok(qualify_schema(base.schema(), alias))
            }
            Plan::Values(rel) => Ok(rel.schema().clone()),
            Plan::Select { input, .. } => input.output_schema(catalog),
            Plan::Project { columns, input } => {
                let input_schema = input.output_schema(catalog)?;
                let mut attrs = Vec::with_capacity(columns.len());
                for c in columns {
                    let pos =
                        input_schema
                            .position(c)
                            .ok_or_else(|| EngineError::UnknownColumn {
                                column: c.clone(),
                                schema: input_schema.to_string(),
                            })?;
                    attrs.push(input_schema.attributes()[pos].clone());
                }
                Ok(Schema::new(format!("π({})", input_schema.name()), attrs))
            }
            Plan::Product { left, right } | Plan::HashJoin { left, right, .. } => {
                let ls = left.output_schema(catalog)?;
                let rs = right.output_schema(catalog)?;
                let name = format!("{}×{}", ls.name(), rs.name());
                Ok(ls.product(&rs, name))
            }
            Plan::Aggregate { func, input } => {
                let input_schema = input.output_schema(catalog)?;
                if let Some(col) = func.column() {
                    if input_schema.position(col).is_none() {
                        return Err(EngineError::UnknownColumn {
                            column: col.to_string(),
                            schema: input_schema.to_string(),
                        });
                    }
                }
                let attr = match func {
                    AggFunc::Count => Attribute::new("count", DataType::Int),
                    AggFunc::Sum(c) => Attribute::new(format!("sum({c})"), DataType::Float),
                };
                Ok(Schema::new(
                    format!("agg({})", input_schema.name()),
                    vec![attr],
                ))
            }
        }
    }

    /// Whether any leaf of the plan is an empty materialised relation.
    ///
    /// o-sharing prunes e-units whose plan contains an empty intermediate relation (Case 2 of
    /// `run_qt`): the final result is necessarily empty.
    #[must_use]
    pub fn contains_empty_relation(&self) -> bool {
        self.subplans().into_iter().any(|p| match p {
            Plan::Values(rel) => rel.is_empty(),
            _ => false,
        })
    }
}

/// Renames `schema` to `alias` and qualifies each attribute as `alias.attr`.
#[must_use]
pub fn qualify_schema(schema: &Schema, alias: &str) -> Schema {
    let attrs = schema
        .attributes()
        .iter()
        .map(|a| Attribute::new(format!("{alias}.{}", a.name), a.data_type))
        .collect();
    Schema::new(alias, attrs)
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(plan: &Plan, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
            let pad = "  ".repeat(indent);
            match plan {
                Plan::Scan { relation, alias } => {
                    if relation == alias {
                        writeln!(f, "{pad}Scan {relation}")
                    } else {
                        writeln!(f, "{pad}Scan {relation} AS {alias}")
                    }
                }
                Plan::Values(rel) => {
                    writeln!(
                        f,
                        "{pad}Values [{} rows of {}]",
                        rel.len(),
                        rel.schema().name()
                    )
                }
                Plan::Select { predicate, input } => {
                    writeln!(f, "{pad}Select {predicate}")?;
                    go(input, f, indent + 1)
                }
                Plan::Project { columns, input } => {
                    writeln!(f, "{pad}Project {}", columns.join(", "))?;
                    go(input, f, indent + 1)
                }
                Plan::Product { left, right } => {
                    writeln!(f, "{pad}Product")?;
                    go(left, f, indent + 1)?;
                    go(right, f, indent + 1)
                }
                Plan::HashJoin { left, right, on } => {
                    let conds: Vec<String> = on.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                    writeln!(f, "{pad}HashJoin on {}", conds.join(" AND "))?;
                    go(left, f, indent + 1)?;
                    go(right, f, indent + 1)
                }
                Plan::Aggregate { func, input } => {
                    writeln!(f, "{pad}Aggregate {func}")?;
                    go(input, f, indent + 1)
                }
            }
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompareOp;
    use urm_storage::{Tuple, Value};

    fn test_catalog() -> Catalog {
        let customer = Relation::new(
            Schema::new(
                "Customer",
                vec![
                    Attribute::new("cid", DataType::Int),
                    Attribute::new("cname", DataType::Text),
                    Attribute::new("oaddr", DataType::Text),
                ],
            ),
            vec![Tuple::new(vec![
                Value::from(1i64),
                Value::from("Alice"),
                Value::from("aaa"),
            ])],
        )
        .unwrap();
        let order = Relation::new(
            Schema::new(
                "C_Order",
                vec![
                    Attribute::new("oid", DataType::Int),
                    Attribute::new("cid", DataType::Int),
                    Attribute::new("amount", DataType::Float),
                ],
            ),
            vec![],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.insert(customer);
        cat.insert(order);
        cat
    }

    #[test]
    fn scan_schema_is_qualified() {
        let cat = test_catalog();
        let schema = Plan::scan("Customer").output_schema(&cat).unwrap();
        let names: Vec<_> = schema.attribute_names().collect();
        assert_eq!(
            names,
            vec!["Customer.cid", "Customer.cname", "Customer.oaddr"]
        );
        assert_eq!(schema.name(), "Customer");
    }

    #[test]
    fn aliased_scan_uses_alias() {
        let cat = test_catalog();
        let schema = Plan::scan_as("Customer", "C1").output_schema(&cat).unwrap();
        assert!(schema.contains("C1.cname"));
        assert_eq!(schema.name(), "C1");
    }

    #[test]
    fn product_schema_concatenates() {
        let cat = test_catalog();
        let plan = Plan::scan("Customer").product(Plan::scan("C_Order"));
        let schema = plan.output_schema(&cat).unwrap();
        assert_eq!(schema.arity(), 6);
        assert!(schema.contains("Customer.cname"));
        assert!(schema.contains("C_Order.amount"));
    }

    #[test]
    fn self_join_with_aliases_has_unique_columns() {
        let cat = test_catalog();
        let plan = Plan::scan_as("Customer", "A").product(Plan::scan_as("Customer", "B"));
        let schema = plan.output_schema(&cat).unwrap();
        assert!(schema.contains("A.cname"));
        assert!(schema.contains("B.cname"));
        assert_eq!(schema.arity(), 6);
    }

    #[test]
    fn projection_schema_and_errors() {
        let cat = test_catalog();
        let ok = Plan::scan("Customer").project(vec!["Customer.cname".into()]);
        assert_eq!(ok.output_schema(&cat).unwrap().arity(), 1);
        let bad = Plan::scan("Customer").project(vec!["Customer.ghost".into()]);
        assert!(matches!(
            bad.output_schema(&cat),
            Err(EngineError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn aggregate_schema() {
        let cat = test_catalog();
        let count = Plan::scan("Customer").aggregate(AggFunc::Count);
        let schema = count.output_schema(&cat).unwrap();
        assert_eq!(schema.arity(), 1);
        assert_eq!(schema.attributes()[0].data_type, DataType::Int);

        let sum = Plan::scan("C_Order").aggregate(AggFunc::Sum("C_Order.amount".into()));
        assert_eq!(
            sum.output_schema(&cat).unwrap().attributes()[0].data_type,
            DataType::Float
        );

        let bad = Plan::scan("Customer").aggregate(AggFunc::Sum("nope".into()));
        assert!(bad.output_schema(&cat).is_err());
    }

    #[test]
    fn unknown_relation_is_reported() {
        let cat = test_catalog();
        assert!(Plan::scan("Ghost").output_schema(&cat).is_err());
    }

    #[test]
    fn node_and_operator_counts() {
        let plan = Plan::scan("Customer")
            .select(Predicate::compare(
                "Customer.oaddr",
                CompareOp::Eq,
                Value::from("aaa"),
            ))
            .product(Plan::scan("C_Order"))
            .project(vec!["Customer.cname".into()]);
        assert_eq!(plan.node_count(), 5);
        assert_eq!(plan.operator_count(), 3);
        assert_eq!(plan.scanned_relations().len(), 2);
    }

    #[test]
    fn identical_plans_are_equal_and_hash_equal() {
        use std::collections::HashSet;
        let make = || {
            Plan::scan("Customer")
                .select(Predicate::eq("Customer.oaddr", Value::from("aaa")))
                .project(vec!["Customer.cname".into()])
        };
        let mut set = HashSet::new();
        set.insert(make());
        set.insert(make());
        assert_eq!(set.len(), 1);
        set.insert(Plan::scan("Customer"));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn contains_empty_relation_detects_empty_leaves() {
        let empty = Relation::empty(Schema::new("R", vec![Attribute::new("a", DataType::Int)]));
        let plan = Plan::values(empty).product(Plan::scan("Customer"));
        assert!(plan.contains_empty_relation());
        assert!(!Plan::scan("Customer").contains_empty_relation());
    }

    #[test]
    fn display_renders_tree() {
        let plan = Plan::scan("Customer")
            .select(Predicate::eq("Customer.oaddr", Value::from("aaa")))
            .project(vec!["Customer.cname".into()]);
        let s = plan.to_string();
        assert!(s.contains("Project"));
        assert!(s.contains("Select"));
        assert!(s.contains("Scan Customer"));
    }
}
