//! Plan rewrites used when lowering reformulated source queries.
//!
//! Reformulation (Section VI-B of the paper) produces plans of the shape
//! `π (σ … σ (R1 × R2 × …))`.  Executing such a plan literally would materialise the full
//! Cartesian product before filtering, which is infeasible even at moderate scale factors and is
//! not what any realistic engine (including the authors') does.  The rewrites here —
//! selection push-down and conversion of products with equality conditions into hash joins —
//! keep the *logical* operator structure that the paper's algorithms reason about while making
//! all baselines executable.  The same rewritten plan is used for every algorithm, so relative
//! comparisons are unaffected.

use crate::{EngineResult, Plan, Predicate};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use urm_storage::Catalog;

/// A structural fingerprint of a plan, used to detect identical source queries (e-basic) and
/// common sub-expressions (the MQO baseline).
#[must_use]
pub fn fingerprint(plan: &Plan) -> u64 {
    let mut hasher = DefaultHasher::new();
    plan.hash(&mut hasher);
    hasher.finish()
}

/// Optimises a plan: pushes selections towards the leaves and converts Cartesian products whose
/// conjuncts contain cross-side equality predicates into hash equi-joins.
pub fn optimize(plan: &Plan, catalog: &Catalog) -> EngineResult<Plan> {
    match plan {
        Plan::Select { predicate, input } => {
            let mut preds = predicate.clone().flatten();
            let mut cur: &Plan = input;
            while let Plan::Select { predicate, input } = cur {
                preds.extend(predicate.clone().flatten());
                cur = input;
            }
            let child = optimize(cur, catalog)?;
            apply_predicates(child, preds, catalog)
        }
        Plan::Project { columns, input } => Ok(Plan::Project {
            columns: columns.clone(),
            input: Box::new(optimize(input, catalog)?),
        }),
        Plan::Product { left, right } => Ok(Plan::Product {
            left: Box::new(optimize(left, catalog)?),
            right: Box::new(optimize(right, catalog)?),
        }),
        Plan::HashJoin { left, right, on } => Ok(Plan::HashJoin {
            left: Box::new(optimize(left, catalog)?),
            right: Box::new(optimize(right, catalog)?),
            on: on.clone(),
        }),
        Plan::Aggregate { func, input } => Ok(Plan::Aggregate {
            func: func.clone(),
            input: Box::new(optimize(input, catalog)?),
        }),
        Plan::Scan { .. } | Plan::Values(_) => Ok(plan.clone()),
    }
}

/// Pushes a set of conjunctive predicates into `child` as far as possible, converting products
/// into hash joins when a cross-side equality predicate is available.
fn apply_predicates(child: Plan, preds: Vec<Predicate>, catalog: &Catalog) -> EngineResult<Plan> {
    if preds.is_empty() {
        return Ok(child);
    }
    match child {
        Plan::Product { left, right } => apply_to_binary(*left, *right, Vec::new(), preds, catalog),
        Plan::HashJoin { left, right, on } => apply_to_binary(*left, *right, on, preds, catalog),
        Plan::Select { predicate, input } => {
            let mut all = predicate.flatten();
            all.extend(preds);
            apply_predicates(*input, all, catalog)
        }
        other => Ok(other.select(Predicate::conjunction(preds))),
    }
}

/// Distributes predicates over a binary node (product or join), turning cross-side equality
/// conjuncts into join keys.
fn apply_to_binary(
    left: Plan,
    right: Plan,
    existing_on: Vec<(String, String)>,
    preds: Vec<Predicate>,
    catalog: &Catalog,
) -> EngineResult<Plan> {
    let left_schema = left.output_schema(catalog)?;
    let right_schema = right.output_schema(catalog)?;

    let mut left_preds = Vec::new();
    let mut right_preds = Vec::new();
    let mut join_on = existing_on;
    let mut residual = Vec::new();

    for pred in preds {
        let cols = pred.columns();
        let all_left = cols.iter().all(|c| left_schema.contains(c));
        let all_right = cols.iter().all(|c| right_schema.contains(c));
        match (&pred, all_left, all_right) {
            (_, true, _) => left_preds.push(pred),
            (_, _, true) => right_preds.push(pred),
            (Predicate::ColumnEq { left: l, right: r }, _, _)
                if (left_schema.contains(l) && right_schema.contains(r))
                    || (left_schema.contains(r) && right_schema.contains(l)) =>
            {
                join_on.push((l.clone(), r.clone()));
            }
            _ => residual.push(pred),
        }
    }

    let new_left = apply_predicates(left, left_preds, catalog)?;
    let new_right = apply_predicates(right, right_preds, catalog)?;
    let joined = if join_on.is_empty() {
        new_left.product(new_right)
    } else {
        new_left.hash_join(new_right, join_on)
    };
    if residual.is_empty() {
        Ok(joined)
    } else {
        Ok(joined.select(Predicate::conjunction(residual)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggFunc, CompareOp, Executor};
    use urm_storage::{Attribute, DataType, Relation, Schema, Tuple, Value};

    fn catalog() -> Catalog {
        let customer = Relation::new(
            Schema::new(
                "Customer",
                vec![
                    Attribute::new("cid", DataType::Int),
                    Attribute::new("city", DataType::Text),
                ],
            ),
            (0..20)
                .map(|i| {
                    Tuple::new(vec![
                        Value::from(i as i64),
                        Value::from(if i % 2 == 0 { "hk" } else { "sz" }),
                    ])
                })
                .collect(),
        )
        .unwrap();
        let orders = Relation::new(
            Schema::new(
                "Orders",
                vec![
                    Attribute::new("oid", DataType::Int),
                    Attribute::new("cid", DataType::Int),
                    Attribute::new("total", DataType::Float),
                ],
            ),
            (0..30)
                .map(|i| {
                    Tuple::new(vec![
                        Value::from(1000 + i as i64),
                        Value::from((i % 20) as i64),
                        Value::from(i as f64 * 1.5),
                    ])
                })
                .collect(),
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.insert(customer);
        cat.insert(orders);
        cat
    }

    fn unoptimized_query() -> Plan {
        Plan::scan("Customer")
            .product(Plan::scan("Orders"))
            .select(Predicate::column_eq("Customer.cid", "Orders.cid"))
            .select(Predicate::eq("Customer.city", Value::from("hk")))
            .project(vec!["Orders.total".into()])
    }

    #[test]
    fn fingerprint_is_deterministic_and_discriminating() {
        let a = unoptimized_query();
        let b = unoptimized_query();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = Plan::scan("Customer");
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn optimize_converts_product_to_hash_join() {
        let cat = catalog();
        let opt = optimize(&unoptimized_query(), &cat).unwrap();
        let has_join = opt
            .subplans()
            .iter()
            .any(|p| matches!(p, Plan::HashJoin { .. }));
        let has_product = opt
            .subplans()
            .iter()
            .any(|p| matches!(p, Plan::Product { .. }));
        assert!(has_join, "expected a hash join in:\n{opt}");
        assert!(!has_product, "product should have been rewritten:\n{opt}");
    }

    #[test]
    fn optimize_pushes_selection_below_join() {
        let cat = catalog();
        let opt = optimize(&unoptimized_query(), &cat).unwrap();
        // The city selection must now sit directly on the Customer scan.
        let pushed = opt.subplans().iter().any(|p| {
            matches!(
                p,
                Plan::Select { predicate, input }
                    if matches!(input.as_ref(), Plan::Scan { relation, .. } if relation == "Customer")
                        && predicate.columns() == vec!["Customer.city"]
            )
        });
        assert!(pushed, "selection was not pushed down:\n{opt}");
    }

    #[test]
    fn optimized_plan_produces_identical_results() {
        let cat = catalog();
        let plan = unoptimized_query();
        let opt = optimize(&plan, &cat).unwrap();
        let naive = Executor::new(&cat).run(&plan).unwrap();
        let fast = Executor::new(&cat).run(&opt).unwrap();
        use std::collections::HashMap;
        let bag = |r: &Relation| {
            let mut m: HashMap<Tuple, usize> = HashMap::new();
            for t in r.iter() {
                *m.entry(t.clone()).or_default() += 1;
            }
            m
        };
        assert_eq!(bag(&naive), bag(&fast));
        assert!(!naive.is_empty());
    }

    #[test]
    fn optimize_keeps_aggregates_and_projections() {
        let cat = catalog();
        let plan = Plan::scan("Orders")
            .select(Predicate::compare(
                "Orders.total",
                CompareOp::Gt,
                Value::from(10.0),
            ))
            .aggregate(AggFunc::Sum("Orders.total".into()));
        let opt = optimize(&plan, &cat).unwrap();
        let a = Executor::new(&cat).run(&plan).unwrap();
        let b = Executor::new(&cat).run(&opt).unwrap();
        assert_eq!(a.rows()[0], b.rows()[0]);
    }

    #[test]
    fn residual_cross_side_comparisons_stay_above_the_join() {
        let cat = catalog();
        // A non-equality cross-side predicate cannot become a join key.
        let plan = Plan::scan("Customer")
            .product(Plan::scan("Orders"))
            .select(Predicate::column_eq("Customer.cid", "Orders.cid"))
            .select(Predicate::compare(
                "Orders.total",
                CompareOp::Ge,
                Value::from(0.0),
            ));
        let opt = optimize(&plan, &cat).unwrap();
        let a = Executor::new(&cat).run(&plan).unwrap();
        let b = Executor::new(&cat).run(&opt).unwrap();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn optimize_without_predicates_is_identity_on_scans() {
        let cat = catalog();
        let plan = Plan::scan("Customer");
        assert_eq!(optimize(&plan, &cat).unwrap(), plan);
    }
}
