//! Execution statistics.
//!
//! The paper evaluates its algorithms by wall-clock time and by the *number of source query
//! operators executed* (Table IV).  Every operator the executor runs increments these counters,
//! and the probabilistic-query algorithms in `urm-core` add their own counters (source queries
//! issued, reformulations performed) on top.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;
use std::time::Duration;

/// Counters describing the work performed by one or more plan executions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Number of operator nodes executed (selections, projections, products, joins, aggregates).
    pub operators_executed: u64,
    /// Number of base-relation scans performed.
    pub scans: u64,
    /// Total number of tuples read from operator inputs.
    pub tuples_read: u64,
    /// Total number of tuples produced by operators.
    pub tuples_output: u64,
    /// Number of complete source queries executed.
    pub source_queries: u64,
    /// Number of rows handed to downstream operators as *shared views* (scans and `Values`
    /// leaves) rather than copies — the clone-elimination metric of the physical-plan layer.
    /// Before the zero-copy refactor every one of these rows was materialised into a private
    /// buffer.
    pub rows_shared: u64,
    /// Bytes of materialised relations written to spill segments under a memory budget
    /// (copied in from the owning [`BufferPool`](urm_storage::BufferPool) by the layer that
    /// runs the batch, so parallel workers sharing one pool never double-count).
    pub bytes_spilled: u64,
    /// Spilled relations read back from their segments on access.
    pub spill_reloads: u64,
    /// Partitions produced by grace hash joins — joins whose build side exceeded the memory
    /// budget and fell back to partitioned build/probe over spill segments.
    pub grace_partitions: u64,
    /// Rows produced by vectorized (columnar, selection-vector-driven) operator kernels.  Rows
    /// produced by the row-at-a-time fallback path are not counted, so the ratio of this to
    /// `tuples_output` shows how much of a workload ran columnar.
    pub columnar_rows: u64,
    /// Row-codec-equivalent bytes of the relations written to spill segments — what the
    /// segments *would* have cost under the legacy row codec (copied in from the owning
    /// [`BufferPool`](urm_storage::BufferPool), like [`bytes_spilled`](Self::bytes_spilled)).
    pub segment_bytes_raw: u64,
    /// Actual encoded bytes of the columnar spill segments written.  The ratio of this to
    /// [`segment_bytes_raw`](Self::segment_bytes_raw) is the spill compression factor.
    pub segment_bytes_encoded: u64,
    /// Wall-clock time spent inside the executor.
    #[serde(skip)]
    pub exec_time: Duration,
}

impl ExecStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        ExecStats::default()
    }

    /// Records the execution of one operator that read `read` tuples and produced `output`.
    pub fn record_operator(&mut self, read: u64, output: u64) {
        self.operators_executed += 1;
        self.tuples_read += read;
        self.tuples_output += output;
    }

    /// Records a base-relation scan.
    pub fn record_scan(&mut self, output: u64) {
        self.scans += 1;
        self.tuples_output += output;
    }

    /// Records the completion of a full source query.
    pub fn record_source_query(&mut self) {
        self.source_queries += 1;
    }

    /// Merges another set of statistics into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.operators_executed += other.operators_executed;
        self.scans += other.scans;
        self.tuples_read += other.tuples_read;
        self.tuples_output += other.tuples_output;
        self.source_queries += other.source_queries;
        self.rows_shared += other.rows_shared;
        self.bytes_spilled += other.bytes_spilled;
        self.spill_reloads += other.spill_reloads;
        self.grace_partitions += other.grace_partitions;
        self.columnar_rows += other.columnar_rows;
        self.segment_bytes_raw += other.segment_bytes_raw;
        self.segment_bytes_encoded += other.segment_bytes_encoded;
        self.exec_time += other.exec_time;
    }

    /// Folds a buffer pool's counter *delta* (after minus before a run) into these statistics.
    /// Called once per batch by whichever layer owns the pool, never per worker.
    ///
    /// Deltas saturate at zero component-wise: snapshots taken around a run that recovered
    /// from a failed segment read (the grace join's retry-from-source path) or that raced a
    /// concurrent batch on the shared pool must never wrap a counter into a huge bogus total —
    /// `/metrics` sums these verbatim, so an exact-or-under delta beats a wrapped one.
    pub fn absorb_spill_delta(
        &mut self,
        before: &urm_storage::SpillStats,
        after: &urm_storage::SpillStats,
    ) {
        self.bytes_spilled += after.bytes_spilled.saturating_sub(before.bytes_spilled);
        self.spill_reloads += after.spill_reloads.saturating_sub(before.spill_reloads);
        self.segment_bytes_raw += after
            .segment_bytes_raw
            .saturating_sub(before.segment_bytes_raw);
        self.segment_bytes_encoded += after
            .segment_bytes_encoded
            .saturating_sub(before.segment_bytes_encoded);
    }
}

impl AddAssign<&ExecStats> for ExecStats {
    fn add_assign(&mut self, rhs: &ExecStats) {
        self.merge(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_operator_accumulates() {
        let mut s = ExecStats::new();
        s.record_operator(10, 4);
        s.record_operator(4, 4);
        assert_eq!(s.operators_executed, 2);
        assert_eq!(s.tuples_read, 14);
        assert_eq!(s.tuples_output, 8);
    }

    #[test]
    fn record_scan_counts_scans_separately() {
        let mut s = ExecStats::new();
        s.record_scan(100);
        assert_eq!(s.scans, 1);
        assert_eq!(s.operators_executed, 0);
        assert_eq!(s.tuples_output, 100);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = ExecStats::new();
        a.record_operator(5, 5);
        a.record_source_query();
        let mut b = ExecStats::new();
        b.record_operator(3, 1);
        b.record_scan(7);
        b.exec_time = Duration::from_millis(12);
        a += &b;
        assert_eq!(a.operators_executed, 2);
        assert_eq!(a.scans, 1);
        assert_eq!(a.tuples_read, 8);
        assert_eq!(a.tuples_output, 13);
        assert_eq!(a.source_queries, 1);
        assert_eq!(a.exec_time, Duration::from_millis(12));
    }
}
