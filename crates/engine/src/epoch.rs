//! The per-epoch persistent DAG: cross-batch operator reuse as a cache layer.
//!
//! PR 3's batch runtime rebuilt its [`OperatorDag`] from scratch for every batch, even though
//! bound-plan fingerprints are identity-safe for the whole life of an epoch (they hash the
//! *pointers* of the captured row buffers, and an epoch's catalog is immutable).  This module
//! keeps one DAG alive per (catalog, mapping set) epoch and layers two caches over it:
//!
//! ```text
//!              logical plan ──(logical fingerprint)──► bind cache ──► Arc<PhysicalPlan>, NodeId
//!   batch 1:   miss → optimize + bind + add_plan            batch 2+: pointer lookup, no rebind
//!
//!              NodeId ──DagScheduler::execute_roots──► results
//!   batch 1:   every frontier node executes                 batch 2+: live results answer nodes,
//!              and is published (weakly + pinned)           pruning whole subgraphs
//! ```
//!
//! * **Bind cache** — logical-plan fingerprint → (bound plan, DAG node).  A warm batch skips
//!   plan optimisation, binding *and* DAG merging for every source query the epoch has seen
//!   before; submitting it is one hash lookup.
//! * **Weak result cache** — bound fingerprint → [`Weak`]`<Relation>`.  Node results are
//!   remembered as long as *someone* still holds them; the cache itself never forces an
//!   epoch's whole history to stay resident.
//! * **Pinning** — what keeps warm batches warm, governed by a [`PinPolicy`]: last-batch
//!   (strong references to exactly the results the most recent batch touched), pin-all
//!   ([`EpochDag::pinning_all`], the u-trace front-end whose lifetime is one evaluation), or a
//!   size-budgeted LRU ([`PinPolicy::Bytes`], the serving layer's policy) that keeps
//!   alternating batch working sets warm up to a byte budget.  Under a memory budget
//!   ([`EpochDag::with_memory_budget`]) pins are *spill-backed*: a completed node's result is
//!   paged out to a disk segment once its last consumer finishes — instead of only dropped —
//!   and streams back in transparently when a later batch needs it.
//!
//! ## The bind/execute pipeline
//!
//! The epoch's state is split into two independently lockable stages so a serving layer can
//! overlap **batch N+1's rewrite/optimize/bind with batch N's execution**:
//!
//! * the *bind stage* — the growing [`OperatorDag`], the bind cache and the pending roots —
//!   lives in [`EpochDag`] itself, behind whatever lock the caller wraps it in;
//! * the *execute stage* — pinned/weak results, the pin policy and the result counters —
//!   lives behind an internal mutex shared by every [`PreparedBatch`].
//!
//! [`EpochDag::prepare_pending`] closes the bind stage of a batch: it snapshots the pending
//! roots' subgraph ([`OperatorDag::subgraph`] — `Arc` handles and copied fingerprints, no
//! re-hashing) into a self-contained [`PreparedBatch`].  The caller can then release its bind
//! lock and call [`PreparedBatch::execute`], which serialises with other executions on the
//! internal result lock only.  [`EpochDag::execute_pending`] composes the two for
//! single-threaded callers — answers are byte-identical either way.
//!
//! The epoch DAG is dropped with its epoch, which is what makes the identity-based
//! fingerprints safe: no cache entry can outlive the row buffers its key points to.

use crate::dag::{DagResultCache, DagScheduler, NodeId, OperatorDag};
use crate::executor::Executor;
use crate::feedback::{CardinalityStore, FeedbackSummary};
use crate::optimize::{fingerprint, optimize};
use crate::physical::PhysicalPlan;
use crate::{EngineResult, Plan};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, Weak};
use urm_storage::{BufferPool, RecencyIndex, Relation, SpillableRelation};

/// Default byte budget of the size-budgeted pin policy when no explicit budget is configured
/// (64 MiB): generous enough that alternating A/B/A/B batch workloads stay warm, bounded
/// enough that a long-lived epoch cannot pin its whole history.
pub const DEFAULT_PIN_BUDGET_BYTES: usize = 64 << 20;

/// How an epoch decides which node results stay pinned (strongly held) between batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PinPolicy {
    /// Pin exactly the results the most recent batch touched (the pre-spill service policy).
    #[default]
    LastBatch,
    /// Pin every result ever computed — the policy of short-lived users like the o-sharing
    /// u-trace, where the "epoch" is one evaluation.
    All,
    /// Pin a size-budgeted LRU over results: recently touched results stay pinned until their
    /// cumulative estimated bytes exceed the budget, then the least-recently-used are evicted.
    /// Unlike [`LastBatch`](PinPolicy::LastBatch), alternating A/B/A/B batch workloads stay
    /// warm as long as both working sets fit the budget.  When the epoch has a
    /// [`BufferPool`], pinned results are spill-backed (disk, not RAM), so the budget bounds
    /// the warm history's footprint rather than resident memory.
    Bytes(usize),
}

/// One pinned result: resident, or a spill-pool handle that pages back in on demand.
#[derive(Debug)]
enum PinnedData {
    Mem(Arc<Relation>),
    Spilled(SpillableRelation),
}

#[derive(Debug)]
struct PinnedResult {
    data: PinnedData,
    /// Estimated in-memory footprint (the [`PinPolicy::Bytes`] accounting unit).
    bytes: usize,
    /// Recency stamp for LRU eviction.
    last_used: u64,
}

impl PinnedResult {
    fn load(&self) -> Option<Arc<Relation>> {
        match &self.data {
            PinnedData::Mem(rel) => Some(Arc::clone(rel)),
            // A failed segment read degrades to a recompute, never an error.
            PinnedData::Spilled(handle) => handle.load().ok(),
        }
    }
}

/// A persistent per-epoch [`OperatorDag`] with bind and result caching (see the module docs).
#[derive(Debug)]
pub struct EpochDag {
    dag: OperatorDag,
    /// Logical-plan fingerprint → (bound root, its DAG node): the rebind-skipping cache.
    bind_cache: HashMap<u64, (Arc<PhysicalPlan>, NodeId)>,
    /// The execute-stage state, shared with every in-flight [`PreparedBatch`].  Internally
    /// locked so binding the next batch never waits on the current batch's execution.
    results: Arc<Mutex<EpochResults>>,
    /// The spill pool, when this epoch runs under a memory budget: pinned results become
    /// spill-backed handles (a completed node's result is *spilled* once its last consumer
    /// finishes, instead of only dropped) and executors created for this epoch route oversized
    /// hash joins through the grace path.
    pool: Option<BufferPool>,
    /// Roots submitted since the last [`prepare_pending`](EpochDag::prepare_pending) (or
    /// [`execute_pending`](EpochDag::execute_pending), which composes it).
    pending: Vec<NodeId>,
    /// Observed per-node cardinalities, keyed by bound fingerprint — the adaptive-execution
    /// feedback store.  Survives bind-cache hits: a warm batch's snapshot re-derives its
    /// costs and join hints from everything every earlier batch observed.
    feedback: Arc<CardinalityStore>,
    /// Whether prepared batches record observations and apply feedback (costs, build-side
    /// hints, grace sizing).  Answers are byte-identical either way.
    adaptive: bool,
    bind_hits: u64,
    bind_misses: u64,
    bind_hits_reported: u64,
    bind_misses_reported: u64,
}

impl Default for EpochDag {
    fn default() -> Self {
        EpochDag {
            dag: OperatorDag::new(),
            bind_cache: HashMap::new(),
            results: Arc::new(Mutex::new(EpochResults::default())),
            pool: None,
            pending: Vec::new(),
            feedback: Arc::new(CardinalityStore::new()),
            adaptive: true,
            bind_hits: 0,
            bind_misses: 0,
            bind_hits_reported: 0,
            bind_misses_reported: 0,
        }
    }
}

/// The execute stage of an epoch: result caches, pin policy and result counters.  Lives behind
/// the [`EpochDag`]'s internal mutex, independent of the caller's bind lock.  Pool-free
/// batches hold the mutex only to snapshot live results and to commit a finished run (their
/// operator work overlaps); spill-budgeted batches hold it across the whole execution so the
/// pool-counter delta stays exactly attributed.
#[derive(Debug, Default)]
struct EpochResults {
    /// Bound fingerprint → weakly held result: live results answer future batches.
    weak_results: HashMap<u64, Weak<Relation>>,
    /// Strongly held results (the pin policy decides which, and for how long).
    pinned: HashMap<u64, PinnedResult>,
    /// Sum of the estimated bytes of everything in `pinned`.
    pinned_bytes: usize,
    /// O(log n) LRU victim selection for the byte-budgeted pin policy; stale stamps are
    /// validated against `PinnedResult::last_used` when popped (see [`RecencyIndex`]).
    pin_recency: RecencyIndex<u64>,
    /// Which results stay pinned between batches.
    policy: PinPolicy,
    /// The epoch's spill pool (a shared handle of [`EpochDag::pool`]), so pinning can spill
    /// and the spill-counter delta of one execution is absorbed exactly once, under the lock.
    pool: Option<BufferPool>,
    result_hits: u64,
    nodes_executed: u64,
    batches: u64,
}

/// Accounting for one epoch batch execution.
#[derive(Debug, Clone, Default)]
pub struct EpochRunReport {
    /// DAG nodes actually executed by this batch (each exactly once).
    pub nodes_executed: u64,
    /// DAG nodes answered by a live cached result — executions skipped, subgraphs pruned.
    pub results_reused: u64,
    /// Submissions answered by the bind cache — optimise/bind/merge work skipped.
    pub bind_hits: u64,
    /// Submissions that had to be optimised, bound and merged into the DAG.
    pub bind_misses: u64,
    /// Maximum nodes in flight at once (1 for sequential runs).
    pub peak_parallelism: usize,
    /// Worker threads the run was scheduled on.
    pub workers: usize,
    /// Nodes in this batch's snapshot whose cost came from an *observed* cardinality rather
    /// than the static estimate (0 when the adaptive loop is off or the epoch is cold).
    pub observed_nodes: u64,
    /// Hash joins whose build side was flipped by observed-cardinality feedback.
    pub reordered_joins: u64,
}

/// The outcome of one batch on the epoch DAG: root results in submission order plus accounting.
#[derive(Debug)]
pub struct EpochRun {
    /// One result per submitted root, in submission order; duplicate roots alias one `Arc`.
    pub root_results: Vec<Arc<Relation>>,
    /// Work accounting for the run.
    pub report: EpochRunReport,
}

/// The closed bind stage of one batch: a self-contained snapshot of the pending roots'
/// subgraph, ready to execute without borrowing the [`EpochDag`].
///
/// Produced by [`EpochDag::prepare_pending`].  The snapshot shares bound plans by `Arc` and
/// carries fingerprints verbatim ([`OperatorDag::subgraph`]), so preparing a warm batch costs
/// a pointer walk.  A serving layer holds its bind lock only across `prepare_pending`,
/// letting batch N+1 rewrite and bind while batch N executes; on a pool-free epoch,
/// [`execute`](PreparedBatch::execute) touches the epoch's internal result lock only to
/// snapshot and commit, so the executions themselves overlap too.
#[derive(Debug)]
pub struct PreparedBatch {
    subdag: OperatorDag,
    roots: Vec<NodeId>,
    results: Arc<Mutex<EpochResults>>,
    pool: Option<BufferPool>,
    bind_hits: u64,
    bind_misses: u64,
    /// What the adaptive loop decided for this snapshot (zeros when the loop is off).
    feedback: FeedbackSummary,
}

impl PreparedBatch {
    /// Whether the batch has no roots (an empty flush).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Number of submitted roots (one result each, in submission order).
    #[must_use]
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// The epoch's spill pool, when it runs under a memory budget — the execute stage's
    /// executor should be built from this so grace joins share the epoch's budget.
    #[must_use]
    pub fn pool(&self) -> Option<&BufferPool> {
        self.pool.as_ref()
    }

    /// Executes the prepared batch: only the nodes the roots need and no live cached result
    /// answers are run (on `workers` threads when > 1), results come back in submission order,
    /// and the pin policy rotates to this batch's working set.  The bind stage is untouched.
    ///
    /// On a pool-free epoch, the operator work itself runs **outside** the epoch's result
    /// lock: the lock is held only to snapshot the live cached results before the run and to
    /// commit the run's working set after it, so executions of pipelined batches overlap on
    /// multi-core hosts.  Two overlapping batches that both miss the same node each compute
    /// it (deterministically, so answers stay byte-identical); the commit folds both copies
    /// onto one cache entry.  A spill-budgeted epoch keeps the exclusive path instead — its
    /// pool-counter delta must be attributed to exactly one batch, and concurrent executions
    /// would interleave their deltas while fighting over a single memory budget.
    pub fn execute(self, exec: &mut Executor<'_>, workers: usize) -> EngineResult<EpochRun> {
        if self.pool.is_some() {
            let mut results = self.results.lock().unwrap();
            return results.execute_run(
                &self.subdag,
                &self.roots,
                exec,
                workers,
                self.bind_hits,
                self.bind_misses,
                self.feedback,
            );
        }
        if self.roots.is_empty() {
            let mut results = self.results.lock().unwrap();
            return Ok(results.empty_run(workers, self.bind_hits, self.bind_misses));
        }
        // Stage 1 — snapshot (short lock): every live cached result this subdag could use.
        let snapshot = {
            let results = self.results.lock().unwrap();
            results.snapshot_live(&self.subdag)
        };
        // Stage 2 — execute (no lock): the scheduler runs against a local overlay cache.
        let mut overlay = OverlayCache::new(snapshot);
        let run = DagScheduler::with_workers(workers).execute_roots(
            &self.subdag,
            &self.roots,
            exec,
            &mut overlay,
        )?;
        // Stage 3 — commit (short lock): counters, fresh results, pin rotation.
        let mut results = self.results.lock().unwrap();
        results.commit_run(overlay);
        Ok(EpochRun {
            root_results: run.root_results,
            report: EpochRunReport {
                nodes_executed: run.report.nodes_executed,
                results_reused: run.report.results_reused,
                bind_hits: self.bind_hits,
                bind_misses: self.bind_misses,
                peak_parallelism: run.report.peak_parallelism,
                workers: run.report.workers,
                observed_nodes: self.feedback.observed_nodes,
                reordered_joins: self.feedback.reordered_joins,
            },
        })
    }
}

/// The lock-free execute-stage cache of one pool-free batch: lookups answer from a snapshot
/// of the epoch's live results taken under the result lock, fresh results collect locally,
/// and the whole working set commits back under the lock once the run is over (see
/// [`PreparedBatch::execute`]).
struct OverlayCache {
    /// Live cached results at batch start, by fingerprint.
    snapshot: HashMap<u64, Arc<Relation>>,
    /// Everything this run used — snapshot hits and fresh results — for pin rotation.
    touched: HashMap<u64, Arc<Relation>>,
    /// Results computed by this run, in publish order — for the weak cache.
    fresh: Vec<(u64, Arc<Relation>)>,
    hits: u64,
    executed: u64,
}

impl OverlayCache {
    fn new(snapshot: HashMap<u64, Arc<Relation>>) -> Self {
        OverlayCache {
            snapshot,
            touched: HashMap::new(),
            fresh: Vec::new(),
            hits: 0,
            executed: 0,
        }
    }
}

impl DagResultCache for OverlayCache {
    fn lookup(&mut self, fingerprint: u64) -> Option<Arc<Relation>> {
        let hit = self
            .touched
            .get(&fingerprint)
            .cloned()
            .or_else(|| self.snapshot.get(&fingerprint).cloned())?;
        self.hits += 1;
        self.touched.insert(fingerprint, Arc::clone(&hit));
        Some(hit)
    }

    fn publish(&mut self, fingerprint: u64, result: &Arc<Relation>) {
        self.executed += 1;
        self.fresh.push((fingerprint, Arc::clone(result)));
        self.touched.insert(fingerprint, Arc::clone(result));
    }
}

impl EpochDag {
    /// An empty epoch DAG with the last-batch pinning policy (the serving layer's default).
    #[must_use]
    pub fn new() -> Self {
        EpochDag::default()
    }

    /// The general constructor behind the policy-specific ones.
    fn with_parts(policy: PinPolicy, pool: Option<BufferPool>) -> Self {
        EpochDag {
            results: Arc::new(Mutex::new(EpochResults {
                policy,
                pool: pool.clone(),
                ..EpochResults::default()
            })),
            pool,
            ..EpochDag::default()
        }
    }

    /// An empty epoch DAG that pins every result for its whole lifetime — the policy of
    /// short-lived users like the o-sharing u-trace, where the "epoch" is one evaluation.
    #[must_use]
    pub fn pinning_all() -> Self {
        EpochDag::with_parts(PinPolicy::All, None)
    }

    /// An epoch DAG with the size-budgeted LRU pin policy ([`PinPolicy::Bytes`]) and no spill
    /// pool: recently touched results stay resident up to `bytes`, so alternating batch
    /// working sets keep each other warm instead of being rotated out at every batch boundary.
    #[must_use]
    pub fn with_pin_budget(bytes: usize) -> Self {
        EpochDag::with_parts(PinPolicy::Bytes(bytes), None)
    }

    /// An epoch DAG for running under a memory budget of `bytes`: a [`BufferPool`] with that
    /// budget backs every pinned result (results spill to disk segments under pressure and
    /// page back in on access), and executors created via this epoch's pool route oversized
    /// hash joins through the grace path.  The pin policy is [`PinPolicy::Bytes`] over the
    /// spill-backed history: `max(4 × bytes, DEFAULT_PIN_BUDGET_BYTES)` — disk is cheaper
    /// than RAM, so the warm history may exceed the resident budget.
    #[must_use]
    pub fn with_memory_budget(bytes: usize) -> Self {
        EpochDag::with_pool(
            BufferPool::with_budget(bytes),
            PinPolicy::Bytes(bytes.saturating_mul(4).max(DEFAULT_PIN_BUDGET_BYTES)),
        )
    }

    /// The general spill-aware constructor: an explicit pool and pin policy.
    #[must_use]
    pub fn with_pool(pool: BufferPool, policy: PinPolicy) -> Self {
        EpochDag::with_parts(policy, Some(pool))
    }

    /// The epoch's spill pool, when it runs under a memory budget.  The batch layer builds its
    /// executors from this, so grace joins and pinned-result spilling share one budget.
    #[must_use]
    pub fn pool(&self) -> Option<&BufferPool> {
        self.pool.as_ref()
    }

    /// The configured pin policy.
    #[must_use]
    pub fn pin_policy(&self) -> PinPolicy {
        self.results.lock().unwrap().policy
    }

    /// Turns the adaptive-execution loop on or off (on by default).  Off, prepared batches
    /// record nothing and run on static estimates only; answers are identical either way.
    pub fn set_adaptive(&mut self, on: bool) {
        self.adaptive = on;
    }

    /// Whether the adaptive-execution loop is on (see [`set_adaptive`](EpochDag::set_adaptive)).
    #[must_use]
    pub fn adaptive(&self) -> bool {
        self.adaptive
    }

    /// The epoch's observed-cardinality store (metrics, inspection).  Populated by executed
    /// batches while the adaptive loop is on; survives bind-cache hits for the epoch's life.
    #[must_use]
    pub fn cardinalities(&self) -> &Arc<CardinalityStore> {
        &self.feedback
    }

    /// Submits a logical plan as a root of the current batch: optimised, bound and merged into
    /// the DAG on first sight, answered by the bind cache (a hash lookup, zero allocation on
    /// the plan path) ever after.
    pub fn submit(&mut self, plan: &Plan, exec: &Executor<'_>) -> EngineResult<NodeId> {
        let key = fingerprint(plan);
        self.submit_with(key, || {
            let optimized = optimize(plan, exec.catalog())?;
            exec.bind(&optimized)
        })
    }

    /// Like [`submit`](EpochDag::submit) with the caller supplying the logical fingerprint and
    /// the binder — for callers that time or customise the optimise/bind step.  `key` must
    /// identify the logical plan within this epoch (two different plans must not share a key;
    /// the same plan should, or it forfeits its rebind skip).
    pub fn submit_with(
        &mut self,
        key: u64,
        bind: impl FnOnce() -> EngineResult<Arc<PhysicalPlan>>,
    ) -> EngineResult<NodeId> {
        let node = match self.bind_cache.get(&key) {
            Some(&(_, node)) => {
                self.bind_hits += 1;
                node
            }
            None => {
                self.bind_misses += 1;
                let physical = bind()?;
                let node = self.dag.add_plan(&physical);
                self.bind_cache.insert(key, (physical, node));
                node
            }
        };
        self.pending.push(node);
        Ok(node)
    }

    /// Submits an already-bound plan as a root of the current batch (no bind cache involved;
    /// merging is a pointer walk thanks to `Arc`-shared children).
    pub fn submit_bound(&mut self, physical: &Arc<PhysicalPlan>) -> NodeId {
        let node = self.dag.add_plan(physical);
        self.pending.push(node);
        node
    }

    /// Abandons the current batch: drops every root submitted since the last
    /// [`prepare_pending`](EpochDag::prepare_pending) and resynchronises the per-batch bind
    /// counters.  Callers **must** invoke this when batch assembly fails partway (a later
    /// query failed to reformulate or bind), or the stale roots would silently prepend
    /// themselves to the next batch's results.  Returns how many roots were dropped.
    pub fn abort_pending(&mut self) -> usize {
        let dropped = self.pending.len();
        self.pending.clear();
        self.bind_hits_reported = self.bind_hits;
        self.bind_misses_reported = self.bind_misses;
        dropped
    }

    /// Closes the bind stage of the current batch: takes the roots submitted since the last
    /// call, snapshots their subgraph and the per-batch bind counters into a self-contained
    /// [`PreparedBatch`], and leaves the epoch ready to bind the *next* batch immediately.
    /// See the module docs for the pipeline this enables.
    pub fn prepare_pending(&mut self) -> PreparedBatch {
        let pending = std::mem::take(&mut self.pending);
        let bind_hits = self.bind_hits - self.bind_hits_reported;
        let bind_misses = self.bind_misses - self.bind_misses_reported;
        self.bind_hits_reported = self.bind_hits;
        self.bind_misses_reported = self.bind_misses;
        let (subdag, roots, feedback) = if pending.is_empty() {
            (OperatorDag::new(), Vec::new(), FeedbackSummary::default())
        } else {
            let (mut subdag, roots) = self.dag.subgraph(&pending);
            let feedback = if self.adaptive {
                // Re-derived on every snapshot, so a bind-cache hit still sees the newest
                // observations; recording feeds the store the executions of this very batch.
                let summary = subdag.apply_feedback(&self.feedback);
                subdag.set_recorder(Arc::clone(&self.feedback));
                summary
            } else {
                FeedbackSummary::default()
            };
            (subdag, roots, feedback)
        };
        PreparedBatch {
            subdag,
            roots,
            results: Arc::clone(&self.results),
            pool: self.pool.clone(),
            bind_hits,
            bind_misses,
            feedback,
        }
    }

    /// Executes the batch submitted since the last call: only the nodes the batch's roots need
    /// and no live cached result answers are run (on `workers` threads when > 1), results come
    /// back in submission order, and the pin policy rotates to this batch's working set.
    ///
    /// This is [`prepare_pending`](EpochDag::prepare_pending) followed by
    /// [`PreparedBatch::execute`] — the single-lock convenience path.  Pipelining callers
    /// split the two so the next batch binds while this one executes.
    pub fn execute_pending(
        &mut self,
        exec: &mut Executor<'_>,
        workers: usize,
    ) -> EngineResult<EpochRun> {
        self.prepare_pending().execute(exec, workers)
    }

    /// Resolves one bound plan immediately (the incremental front-end of the u-trace): the plan
    /// is merged into the DAG and only the nodes without a live cached result execute.  Results
    /// are pinned like any batch result; rotation still happens at
    /// [`execute_pending`](EpochDag::execute_pending) (never called in pin-all mode).
    pub fn resolve(
        &mut self,
        physical: &Arc<PhysicalPlan>,
        exec: &mut Executor<'_>,
    ) -> EngineResult<Arc<Relation>> {
        let root = self.dag.add_plan(physical);
        let mut results = self.results.lock().unwrap();
        results.resolve_on(&self.dag, root, exec)
    }

    /// The underlying shared-operator DAG (metrics, inspection).
    #[must_use]
    pub fn dag(&self) -> &OperatorDag {
        &self.dag
    }

    /// Distinct operator nodes merged into the epoch DAG so far.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.dag.node_count()
    }

    /// Submissions answered by the bind cache over the epoch's lifetime.
    #[must_use]
    pub fn bind_hits(&self) -> u64 {
        self.bind_hits
    }

    /// Submissions that were optimised, bound and merged over the epoch's lifetime.
    #[must_use]
    pub fn bind_misses(&self) -> u64 {
        self.bind_misses
    }

    /// Node executions skipped because a live cached result answered the node.
    #[must_use]
    pub fn result_hits(&self) -> u64 {
        self.results.lock().unwrap().result_hits
    }

    /// Node executions actually performed over the epoch's lifetime.
    #[must_use]
    pub fn nodes_executed(&self) -> u64 {
        self.results.lock().unwrap().nodes_executed
    }

    /// Batches executed via [`execute_pending`](EpochDag::execute_pending) (or prepared and
    /// executed through the pipeline).
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.results.lock().unwrap().batches
    }

    /// Results currently held by the pin policy (resident or spill-backed).
    #[must_use]
    pub fn pinned_results(&self) -> usize {
        self.results.lock().unwrap().pinned.len()
    }

    /// Estimated bytes of everything the pin policy currently holds (the
    /// [`PinPolicy::Bytes`] accounting; spill-backed pins count their in-memory estimate even
    /// while paged out).
    #[must_use]
    pub fn pinned_bytes(&self) -> usize {
        self.results.lock().unwrap().pinned_bytes
    }

    /// Results still alive in the weak cache (pinned here or held by any consumer).
    #[must_use]
    pub fn live_results(&self) -> usize {
        self.results
            .lock()
            .unwrap()
            .weak_results
            .values()
            .filter(|w| w.strong_count() > 0)
            .count()
    }
}

impl EpochResults {
    /// The execute stage of one batch (see [`PreparedBatch::execute`]).  Runs under the result
    /// lock: executions of one epoch serialise with each other, never with binding.
    #[allow(clippy::too_many_arguments)]
    fn execute_run(
        &mut self,
        dag: &OperatorDag,
        roots: &[NodeId],
        exec: &mut Executor<'_>,
        workers: usize,
        bind_hits: u64,
        bind_misses: u64,
        feedback: FeedbackSummary,
    ) -> EngineResult<EpochRun> {
        if roots.is_empty() {
            return Ok(self.empty_run(workers, bind_hits, bind_misses));
        }
        // The pool's counter delta over this execution is folded into the executor's stats
        // below, under the result lock — executions never interleave, so the delta is exact.
        let spill_before = self.pool.as_ref().map(|pool| pool.stats());
        let mut touched: HashMap<u64, Arc<Relation>> = HashMap::new();
        let mut hits = 0u64;
        let mut executed = 0u64;
        let run = {
            let mut cache = EpochResultCache {
                weak: &mut self.weak_results,
                pinned: &mut self.pinned,
                pinned_bytes: &mut self.pinned_bytes,
                pin_recency: &mut self.pin_recency,
                touched: &mut touched,
                hits: &mut hits,
                executed: &mut executed,
            };
            DagScheduler::with_workers(workers).execute_roots(dag, roots, exec, &mut cache)?
        };
        self.result_hits += hits;
        self.nodes_executed += executed;
        self.batches += 1;
        let touched_fps = self.pin_touched(touched);
        self.trim_pins(Some(&touched_fps));
        // Drop dead weak entries so the map tracks live results, not the epoch's history.
        self.weak_results.retain(|_, w| w.strong_count() > 0);
        if let (Some(before), Some(pool)) = (&spill_before, &self.pool) {
            exec.stats_mut().absorb_spill_delta(before, &pool.stats());
        }

        Ok(EpochRun {
            root_results: run.root_results,
            report: EpochRunReport {
                nodes_executed: run.report.nodes_executed,
                results_reused: run.report.results_reused,
                bind_hits,
                bind_misses,
                peak_parallelism: run.report.peak_parallelism,
                workers: run.report.workers,
                observed_nodes: feedback.observed_nodes,
                reordered_joins: feedback.reordered_joins,
            },
        })
    }

    /// The outcome of a batch with no roots.  An empty batch must not rotate the pin set —
    /// it would silently flush the warm working set a heartbeat-style flush has no business
    /// touching.
    fn empty_run(&mut self, workers: usize, bind_hits: u64, bind_misses: u64) -> EpochRun {
        self.batches += 1;
        EpochRun {
            root_results: Vec::new(),
            report: EpochRunReport {
                nodes_executed: 0,
                results_reused: 0,
                bind_hits,
                bind_misses,
                peak_parallelism: 0,
                workers: workers.max(1),
                observed_nodes: 0,
                reordered_joins: 0,
            },
        }
    }

    /// Every live cached result a run over `dag` could consume, read without mutating
    /// recency — the commit stage refreshes recency for whatever the run actually touched.
    /// Called under the result lock; the returned map is the lock-free run's read view.
    fn snapshot_live(&self, dag: &OperatorDag) -> HashMap<u64, Arc<Relation>> {
        let mut live = HashMap::new();
        for fingerprint in dag.fingerprints() {
            let hit = self
                .pinned
                .get(&fingerprint)
                .and_then(PinnedResult::load)
                .or_else(|| self.weak_results.get(&fingerprint).and_then(Weak::upgrade));
            if let Some(rel) = hit {
                live.insert(fingerprint, rel);
            }
        }
        live
    }

    /// Folds a lock-free run back into the epoch: counters, weak entries for the fresh
    /// results, and the same pin rotation an exclusive run performs.  Called under the
    /// result lock.
    fn commit_run(&mut self, overlay: OverlayCache) {
        let OverlayCache {
            touched,
            fresh,
            hits,
            executed,
            ..
        } = overlay;
        self.result_hits += hits;
        self.nodes_executed += executed;
        self.batches += 1;
        for (fingerprint, result) in &fresh {
            self.weak_results
                .insert(*fingerprint, Arc::downgrade(result));
        }
        let touched_fps = self.pin_touched(touched);
        self.trim_pins(Some(&touched_fps));
        self.weak_results.retain(|_, w| w.strong_count() > 0);
    }

    /// The incremental resolve path (see [`EpochDag::resolve`]).
    fn resolve_on(
        &mut self,
        dag: &OperatorDag,
        root: NodeId,
        exec: &mut Executor<'_>,
    ) -> EngineResult<Arc<Relation>> {
        let mut touched: HashMap<u64, Arc<Relation>> = HashMap::new();
        let mut hits = 0u64;
        let mut executed = 0u64;
        let result = {
            let mut cache = EpochResultCache {
                weak: &mut self.weak_results,
                pinned: &mut self.pinned,
                pinned_bytes: &mut self.pinned_bytes,
                pin_recency: &mut self.pin_recency,
                touched: &mut touched,
                hits: &mut hits,
                executed: &mut executed,
            };
            dag.resolve_root(root, exec, &mut cache)?
        };
        self.result_hits += hits;
        self.nodes_executed += executed;
        self.pin_touched(touched);
        // `resolve` is not a batch boundary: only the byte budget (if any) trims here.
        self.trim_pins(None);
        Ok(result)
    }

    /// Upserts every touched result into the pin set (spill-backed when a pool is attached),
    /// refreshing recency; returns the touched fingerprints for batch-boundary trimming.
    fn pin_touched(&mut self, touched: HashMap<u64, Arc<Relation>>) -> HashSet<u64> {
        let mut fps = HashSet::with_capacity(touched.len());
        for (fp, rel) in touched {
            fps.insert(fp);
            if let Some(entry) = self.pinned.get_mut(&fp) {
                // Fingerprint-identical results have identical content (operators are pure
                // functions of immutable inputs), so the existing pin stays; only recency moves.
                self.pin_recency.touch(fp, &mut entry.last_used);
                continue;
            }
            let bytes = rel.estimated_bytes().max(1);
            let data = match &self.pool {
                Some(pool) => match pool.admit_shared(rel) {
                    Ok(handle) => PinnedData::Spilled(handle),
                    // An I/O failure while spilling degrades to "not pinned" (recomputed on
                    // next use) rather than failing the batch that already produced answers.
                    Err(_) => continue,
                },
                None => PinnedData::Mem(rel),
            };
            let stamp = self.pin_recency.insert_fresh(fp);
            self.pinned.insert(
                fp,
                PinnedResult {
                    data,
                    bytes,
                    last_used: stamp,
                },
            );
            self.pinned_bytes += bytes;
        }
        fps
    }

    /// Applies the pin policy: `last_batch` carries the batch's touched set at batch
    /// boundaries ([`PinPolicy::LastBatch`] drops everything else); the byte budget evicts
    /// least-recently-used pins whenever it is exceeded.
    fn trim_pins(&mut self, last_batch: Option<&HashSet<u64>>) {
        match self.policy {
            PinPolicy::All => {}
            PinPolicy::LastBatch => {
                if let Some(keep) = last_batch {
                    let bytes = &mut self.pinned_bytes;
                    let recency = &mut self.pin_recency;
                    self.pinned.retain(|fp, entry| {
                        let stays = keep.contains(fp);
                        if !stays {
                            *bytes -= entry.bytes;
                            recency.forget(entry.last_used);
                        }
                        stays
                    });
                }
            }
            PinPolicy::Bytes(budget) => {
                while self.pinned_bytes > budget {
                    // Pop oldest-first, discarding stale stamps, until a live victim surfaces.
                    let pinned = &self.pinned;
                    let victim = self.pin_recency.pop_oldest(|fp, stamp| {
                        pinned.get(fp).is_some_and(|e| e.last_used == stamp)
                    });
                    let Some(fp) = victim else { break };
                    let entry = self.pinned.remove(&fp).expect("victim pinned");
                    self.pinned_bytes -= entry.bytes;
                }
            }
        }
    }
}

/// The [`DagResultCache`] adapter of one epoch run: answers lookups from this run's results,
/// the pinned set (transparently reloading spilled pins from their segments), then the weak
/// cache; collects everything it touches for pin rotation.
struct EpochResultCache<'a> {
    weak: &'a mut HashMap<u64, Weak<Relation>>,
    pinned: &'a mut HashMap<u64, PinnedResult>,
    pinned_bytes: &'a mut usize,
    pin_recency: &'a mut RecencyIndex<u64>,
    touched: &'a mut HashMap<u64, Arc<Relation>>,
    hits: &'a mut u64,
    executed: &'a mut u64,
}

impl EpochResultCache<'_> {
    /// Answers a lookup from the pin set, refreshing recency; a pin whose segment cannot be
    /// read any more is dropped (the node simply recomputes).
    fn lookup_pinned(&mut self, fingerprint: u64) -> Option<Arc<Relation>> {
        let entry = self.pinned.get_mut(&fingerprint)?;
        self.pin_recency.touch(fingerprint, &mut entry.last_used);
        match entry.load() {
            // `load` fails only when this pin's own segment is unreadable (pool-rebalancing
            // errors are swallowed inside the pool), so dropping the pin here is correct.
            Some(rel) => Some(rel),
            None => {
                let entry = self.pinned.remove(&fingerprint).expect("entry looked up");
                self.pin_recency.forget(entry.last_used);
                *self.pinned_bytes -= entry.bytes;
                None
            }
        }
    }
}

impl DagResultCache for EpochResultCache<'_> {
    fn lookup(&mut self, fingerprint: u64) -> Option<Arc<Relation>> {
        let hit = self
            .touched
            .get(&fingerprint)
            .cloned()
            .or_else(|| self.lookup_pinned(fingerprint))
            .or_else(|| self.weak.get(&fingerprint).and_then(Weak::upgrade))?;
        *self.hits += 1;
        self.touched.insert(fingerprint, Arc::clone(&hit));
        Some(hit)
    }

    fn publish(&mut self, fingerprint: u64, result: &Arc<Relation>) {
        *self.executed += 1;
        self.weak.insert(fingerprint, Arc::downgrade(result));
        self.touched.insert(fingerprint, Arc::clone(result));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompareOp, Predicate};
    use urm_storage::{Attribute, Catalog, DataType, Schema, Tuple, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(
            "R",
            vec![
                Attribute::new("a", DataType::Int),
                Attribute::new("b", DataType::Text),
            ],
        );
        let rows = (0..30)
            .map(|i| {
                Tuple::new(vec![
                    Value::from(i as i64),
                    Value::from(if i % 3 == 0 { "x" } else { "y" }),
                ])
            })
            .collect();
        let mut cat = Catalog::new();
        cat.insert(Relation::new(schema, rows).unwrap());
        cat
    }

    fn queries() -> Vec<Plan> {
        let base = Plan::scan("R").select(Predicate::eq("R.b", Value::from("x")));
        vec![
            base.clone().project(vec!["R.a".into()]),
            base.clone().project(vec!["R.b".into()]),
            Plan::scan("R").select(Predicate::compare("R.a", CompareOp::Gt, Value::from(10i64))),
        ]
    }

    fn run_batch(epoch: &mut EpochDag, exec: &mut Executor<'_>, workers: usize) -> EpochRun {
        for q in queries() {
            epoch.submit(&q, exec).unwrap();
        }
        epoch.execute_pending(exec, workers).unwrap()
    }

    #[test]
    fn warm_batch_skips_rebinding_and_re_execution_entirely() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut epoch = EpochDag::new();

        let cold = run_batch(&mut epoch, &mut exec, 1);
        assert_eq!(cold.report.bind_hits, 0);
        assert_eq!(cold.report.bind_misses, 3);
        assert!(cold.report.nodes_executed > 0);
        assert_eq!(cold.report.results_reused, 0);
        let work_after_cold = exec.stats().operators_executed + exec.stats().scans;

        let warm = run_batch(&mut epoch, &mut exec, 1);
        assert_eq!(warm.report.bind_hits, 3, "warm batch must skip rebinding");
        assert_eq!(warm.report.bind_misses, 0);
        assert_eq!(
            warm.report.nodes_executed, 0,
            "warm batch must not execute a single node"
        );
        assert_eq!(warm.report.results_reused, 3, "all roots answered by cache");
        assert_eq!(
            exec.stats().operators_executed + exec.stats().scans,
            work_after_cold,
            "warm batch charged executor work"
        );

        // Warm results are the cold batch's allocations, shared by pointer.
        for (a, b) in cold.root_results.iter().zip(&warm.root_results) {
            assert!(Arc::ptr_eq(a, b));
        }
        assert_eq!(epoch.batches(), 2);
    }

    #[test]
    fn warm_results_match_rebuild_every_batch_for_any_worker_count() {
        let cat = catalog();
        for workers in [1usize, 2, 4] {
            let mut exec = Executor::new(&cat);
            let mut epoch = EpochDag::new();
            let cold = run_batch(&mut epoch, &mut exec, workers);
            let warm = run_batch(&mut epoch, &mut exec, workers);
            // The rebuild-every-batch baseline: a throwaway epoch per batch.
            let mut fresh = EpochDag::new();
            let rebuilt = run_batch(&mut fresh, &mut exec, workers);
            for ((a, b), c) in cold
                .root_results
                .iter()
                .zip(&warm.root_results)
                .zip(&rebuilt.root_results)
            {
                assert_eq!(a.rows(), b.rows());
                assert_eq!(a.rows(), c.rows());
                assert_eq!(a.schema(), c.schema());
            }
        }
    }

    #[test]
    fn pipelined_prepare_lets_the_next_batch_bind_before_execution() {
        // The two-stage pipeline: batch 2 is rewritten/bound (and its subgraph snapshotted)
        // while batch 1 has not executed yet — then both execute, in order, with answers and
        // accounting identical to the serialised path.
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut epoch = EpochDag::new();

        for q in queries() {
            epoch.submit(&q, &exec).unwrap();
        }
        let first = epoch.prepare_pending();
        assert_eq!(first.root_count(), 3);
        assert_eq!(first.bind_misses, 3);

        // Bind stage of batch 2 proceeds although batch 1 never executed: the bind cache
        // answers every submission.
        for q in queries() {
            epoch.submit(&q, &exec).unwrap();
        }
        let second = epoch.prepare_pending();
        assert_eq!(second.bind_hits, 3, "bind cache must answer batch 2");
        assert_eq!(second.bind_misses, 0);

        let run1 = first.execute(&mut exec, 2).unwrap();
        assert!(run1.report.nodes_executed > 0);
        let run2 = second.execute(&mut exec, 2).unwrap();
        assert_eq!(
            run2.report.nodes_executed, 0,
            "batch 2 must be answered by batch 1's pinned results"
        );
        assert_eq!(run2.report.results_reused, 3);
        for (a, b) in run1.root_results.iter().zip(&run2.root_results) {
            assert!(Arc::ptr_eq(a, b));
        }
        assert_eq!(epoch.batches(), 2);
    }

    #[test]
    fn prepared_batches_execute_on_other_threads() {
        // A PreparedBatch is self-contained: it can leave the bind lock's critical section and
        // execute on a different thread, as the serving layer's pipeline does.
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut epoch = EpochDag::new();
        for q in queries() {
            epoch.submit(&q, &exec).unwrap();
        }
        let prepared = epoch.prepare_pending();
        let run = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let mut exec = Executor::new(&cat);
                    prepared.execute(&mut exec, 2)
                })
                .join()
                .expect("executor thread panicked")
        })
        .unwrap();
        assert_eq!(run.root_results.len(), 3);
        assert_eq!(run.root_results[0].len(), 10);
        // The results the off-thread execution pinned answer this thread's next batch.
        let mut exec = Executor::new(&cat);
        let warm = run_batch(&mut epoch, &mut exec, 1);
        assert_eq!(warm.report.nodes_executed, 0);
    }

    #[test]
    fn concurrent_executions_of_a_pool_free_epoch_stay_byte_identical() {
        // Two batches prepared back-to-back execute at the same time on two threads: neither
        // holds the result lock across its operator work, both commit, answers match the
        // rebuild-every-batch baseline row for row, and the epoch ends up warm.
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut epoch = EpochDag::new();
        for q in queries() {
            epoch.submit(&q, &exec).unwrap();
        }
        let first = epoch.prepare_pending();
        for q in queries() {
            epoch.submit(&q, &exec).unwrap();
        }
        let second = epoch.prepare_pending();

        let (run1, run2) = std::thread::scope(|scope| {
            let a = scope.spawn(|| {
                let mut exec = Executor::new(&cat);
                first.execute(&mut exec, 2)
            });
            let b = scope.spawn(|| {
                let mut exec = Executor::new(&cat);
                second.execute(&mut exec, 2)
            });
            (a.join().expect("batch 1"), b.join().expect("batch 2"))
        });
        let (run1, run2) = (run1.unwrap(), run2.unwrap());

        let mut exec = Executor::new(&cat);
        let mut fresh = EpochDag::new();
        let baseline = run_batch(&mut fresh, &mut exec, 1);
        for run in [&run1, &run2] {
            assert_eq!(run.root_results.len(), baseline.root_results.len());
            for (got, want) in run.root_results.iter().zip(&baseline.root_results) {
                assert_eq!(got.schema(), want.schema());
                assert_eq!(got.rows(), want.rows());
            }
        }
        assert_eq!(epoch.batches(), 2);
        // Both commits landed: a third batch is answered without executing a node.
        let warm = run_batch(&mut epoch, &mut exec, 1);
        assert_eq!(warm.report.nodes_executed, 0);
        assert_eq!(warm.report.results_reused, 3);
    }

    #[test]
    fn pin_rotation_keeps_only_the_last_batch_resident() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut epoch = EpochDag::new();

        run_batch(&mut epoch, &mut exec, 1);
        let pinned_after_first = epoch.pinned_results();
        assert!(pinned_after_first > 0);

        // A disjoint second batch: the first batch's results must be unpinned (and, with no
        // other holders, dead in the weak cache), so a third batch re-executes them.
        epoch
            .submit(
                &Plan::scan("R").select(Predicate::eq("R.b", Value::from("y"))),
                &exec,
            )
            .unwrap();
        epoch.execute_pending(&mut exec, 1).unwrap();
        for q in queries() {
            epoch.submit(&q, &exec).unwrap();
        }
        let third = epoch.execute_pending(&mut exec, 1).unwrap();
        assert!(
            third.report.nodes_executed > 0,
            "rotated-out results must be recomputed once they died"
        );
        // The shared scan survived inside the second batch's pins, so part of the work is
        // still answered from cache.
        assert!(third.report.results_reused > 0);
        // Rebinding was never repeated, dead or alive.
        assert_eq!(third.report.bind_hits, 3);
    }

    #[test]
    fn live_external_results_answer_even_rotated_nodes() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut epoch = EpochDag::new();

        // Hold the cold batch's results alive externally across an unrelated batch.
        let cold = run_batch(&mut epoch, &mut exec, 1);
        epoch
            .submit(
                &Plan::scan("R").select(Predicate::eq("R.b", Value::from("y"))),
                &exec,
            )
            .unwrap();
        epoch.execute_pending(&mut exec, 1).unwrap();

        // Although the pins rotated, the weak cache upgrades the externally held Arcs.
        let warm = run_batch(&mut epoch, &mut exec, 1);
        assert_eq!(warm.report.nodes_executed, 0);
        for (a, b) in cold.root_results.iter().zip(&warm.root_results) {
            assert!(Arc::ptr_eq(a, b));
        }
    }

    #[test]
    fn pinning_all_never_recomputes() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut epoch = EpochDag::pinning_all();
        run_batch(&mut epoch, &mut exec, 1);
        let first_pins = epoch.pinned_results();
        epoch
            .submit(
                &Plan::scan("R").select(Predicate::eq("R.b", Value::from("y"))),
                &exec,
            )
            .unwrap();
        epoch.execute_pending(&mut exec, 1).unwrap();
        assert!(epoch.pinned_results() > first_pins, "pins must accumulate");
        let warm = run_batch(&mut epoch, &mut exec, 1);
        assert_eq!(warm.report.nodes_executed, 0);
    }

    #[test]
    fn empty_batch_does_not_flush_the_pin_set() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut epoch = EpochDag::new();
        run_batch(&mut epoch, &mut exec, 1);
        let pins = epoch.pinned_results();
        assert!(pins > 0);

        // A heartbeat-style flush with nothing pending must not rotate the pins away.
        let empty = epoch.execute_pending(&mut exec, 1).unwrap();
        assert!(empty.root_results.is_empty());
        assert_eq!(empty.report.nodes_executed, 0);
        assert_eq!(epoch.pinned_results(), pins, "empty batch flushed the pins");

        let warm = run_batch(&mut epoch, &mut exec, 1);
        assert_eq!(warm.report.nodes_executed, 0, "epoch went cold");
    }

    #[test]
    fn abort_pending_discards_the_half_assembled_batch() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut epoch = EpochDag::new();
        run_batch(&mut epoch, &mut exec, 1);

        // A batch that fails partway leaves stale roots pending; aborting must drop them so
        // the next batch's results stay aligned with its own submissions.
        epoch
            .submit(
                &Plan::scan("R").select(Predicate::eq("R.b", Value::from("y"))),
                &exec,
            )
            .unwrap();
        assert_eq!(epoch.abort_pending(), 1);

        let next = run_batch(&mut epoch, &mut exec, 1);
        assert_eq!(
            next.root_results.len(),
            queries().len(),
            "stale roots leaked into the next batch"
        );
        // Results line up with the submissions, not with the aborted leftover.
        assert_eq!(next.root_results[0].schema().arity(), 1);
        // The aborted batch's bind-counter deltas were resynchronised too.
        assert_eq!(next.report.bind_misses, 0);
    }

    #[test]
    fn spilled_pins_answer_warm_batches_from_disk() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        // Memory budget 0: every pinned result is paged out to a segment immediately.
        let mut epoch = EpochDag::with_memory_budget(0);
        let pool = epoch.pool().unwrap().clone();

        let cold = run_batch(&mut epoch, &mut exec, 1);
        assert!(cold.report.nodes_executed > 0);
        assert!(
            pool.stats().segments_written > 0,
            "budget 0 must spill every pin"
        );
        let reloads_after_cold = pool.stats().spill_reloads;
        let cold_rows: Vec<_> = cold
            .root_results
            .iter()
            .map(|r| r.rows().to_vec())
            .collect();
        drop(cold);

        // With every external Arc dropped, the warm batch can only be answered from disk.
        let warm = run_batch(&mut epoch, &mut exec, 1);
        assert_eq!(
            warm.report.nodes_executed, 0,
            "warm batch must be answered from spilled pins, not recomputed"
        );
        assert!(
            pool.stats().spill_reloads > reloads_after_cold,
            "warm batch never touched the segments"
        );
        for (want, got) in cold_rows.iter().zip(&warm.root_results) {
            assert_eq!(want, &got.rows().to_vec(), "reload changed the rows");
        }
    }

    #[test]
    fn byte_budget_pins_keep_alternating_batches_warm() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        // A generous in-memory byte budget: both working sets fit.
        let mut epoch = EpochDag::with_pin_budget(1 << 20);
        assert_eq!(epoch.pin_policy(), PinPolicy::Bytes(1 << 20));

        let batch_a = || queries();
        let batch_b = || vec![Plan::scan("R").select(Predicate::eq("R.b", Value::from("y")))];
        for plan in batch_a() {
            epoch.submit(&plan, &exec).unwrap();
        }
        epoch.execute_pending(&mut exec, 1).unwrap();
        for plan in batch_b() {
            epoch.submit(&plan, &exec).unwrap();
        }
        epoch.execute_pending(&mut exec, 1).unwrap();
        assert!(epoch.pinned_bytes() > 0);

        // A again, then B again: with last-batch pinning both would recompute (the existing
        // `pin_rotation_keeps_only_the_last_batch_resident` test proves it); the byte budget
        // keeps both warm.
        for plan in batch_a() {
            epoch.submit(&plan, &exec).unwrap();
        }
        let third = epoch.execute_pending(&mut exec, 1).unwrap();
        assert_eq!(third.report.nodes_executed, 0, "batch A went cold");
        for plan in batch_b() {
            epoch.submit(&plan, &exec).unwrap();
        }
        let fourth = epoch.execute_pending(&mut exec, 1).unwrap();
        assert_eq!(fourth.report.nodes_executed, 0, "batch B went cold");
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_pins() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        // A budget of one byte: after every batch at most one (the most recent) pin survives…
        let mut epoch = EpochDag::with_pin_budget(1);
        run_batch(&mut epoch, &mut exec, 1);
        assert!(epoch.pinned_results() <= 1);
        assert!(epoch.pinned_bytes() <= epoch.pinned_results());
        // …so a repeat batch has to re-execute most nodes, and answers stay correct.
        let warm = run_batch(&mut epoch, &mut exec, 1);
        assert!(warm.report.nodes_executed > 0);
        assert_eq!(warm.root_results.len(), queries().len());
        assert_eq!(warm.report.bind_hits, 3, "bind cache is unaffected by pins");
    }

    #[test]
    fn submit_bound_roots_share_the_callers_tree() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut epoch = EpochDag::new();
        let physical = exec
            .bind(&Plan::scan("R").select(Predicate::eq("R.b", Value::from("x"))))
            .unwrap();
        let node = epoch.submit_bound(&physical);
        assert!(Arc::ptr_eq(epoch.dag().plan_shared(node), &physical));
        let run = epoch.execute_pending(&mut exec, 1).unwrap();
        assert_eq!(run.root_results.len(), 1);
        assert_eq!(run.root_results[0].len(), 10);
    }
}
