//! The per-epoch persistent DAG: cross-batch operator reuse as a cache layer.
//!
//! PR 3's batch runtime rebuilt its [`OperatorDag`] from scratch for every batch, even though
//! bound-plan fingerprints are identity-safe for the whole life of an epoch (they hash the
//! *pointers* of the captured row buffers, and an epoch's catalog is immutable).  This module
//! keeps one DAG alive per (catalog, mapping set) epoch and layers two caches over it:
//!
//! ```text
//!              logical plan ──(logical fingerprint)──► bind cache ──► Arc<PhysicalPlan>, NodeId
//!   batch 1:   miss → optimize + bind + add_plan            batch 2+: pointer lookup, no rebind
//!
//!              NodeId ──DagScheduler::execute_roots──► results
//!   batch 1:   every frontier node executes                 batch 2+: live results answer nodes,
//!              and is published (weakly + pinned)           pruning whole subgraphs
//! ```
//!
//! * **Bind cache** — logical-plan fingerprint → (bound plan, DAG node).  A warm batch skips
//!   plan optimisation, binding *and* DAG merging for every source query the epoch has seen
//!   before; submitting it is one hash lookup.
//! * **Weak result cache** — bound fingerprint → [`Weak`]`<Relation>`.  Node results are
//!   remembered as long as *someone* still holds them; the cache itself never forces an
//!   epoch's whole history to stay resident.
//! * **Pinning** — what keeps warm batches warm.  With the default last-batch policy the epoch
//!   holds strong references to exactly the results the most recent batch touched (computed or
//!   reused), so consecutive overlapping batches reuse each other's operators while peak
//!   memory stays bounded by one batch's working set.  [`EpochDag::pinning_all`] pins
//!   everything — the policy of the u-trace front-end, whose lifetime is a single evaluation.
//!
//! The epoch DAG is dropped with its epoch, which is what makes the identity-based
//! fingerprints safe: no cache entry can outlive the row buffers its key points to.

use crate::dag::{DagResultCache, DagScheduler, NodeId, OperatorDag};
use crate::executor::Executor;
use crate::optimize::{fingerprint, optimize};
use crate::physical::PhysicalPlan;
use crate::{EngineResult, Plan};
use std::collections::HashMap;
use std::sync::{Arc, Weak};
use urm_storage::Relation;

/// A persistent per-epoch [`OperatorDag`] with bind and result caching (see the module docs).
#[derive(Debug, Default)]
pub struct EpochDag {
    dag: OperatorDag,
    /// Logical-plan fingerprint → (bound root, its DAG node): the rebind-skipping cache.
    bind_cache: HashMap<u64, (Arc<PhysicalPlan>, NodeId)>,
    /// Bound fingerprint → weakly held result: live results answer future batches.
    weak_results: HashMap<u64, Weak<Relation>>,
    /// Strongly held results (the pin policy decides for how long).
    pinned: HashMap<u64, Arc<Relation>>,
    /// `true`: pin every result ever computed (u-trace mode); `false`: pin only the results
    /// the most recent batch touched.
    pin_all: bool,
    /// Roots submitted since the last [`execute_pending`](EpochDag::execute_pending).
    pending: Vec<NodeId>,
    bind_hits: u64,
    bind_misses: u64,
    bind_hits_reported: u64,
    bind_misses_reported: u64,
    result_hits: u64,
    nodes_executed: u64,
    batches: u64,
}

/// Accounting for one [`EpochDag::execute_pending`] run.
#[derive(Debug, Clone, Default)]
pub struct EpochRunReport {
    /// DAG nodes actually executed by this batch (each exactly once).
    pub nodes_executed: u64,
    /// DAG nodes answered by a live cached result — executions skipped, subgraphs pruned.
    pub results_reused: u64,
    /// Submissions answered by the bind cache — optimise/bind/merge work skipped.
    pub bind_hits: u64,
    /// Submissions that had to be optimised, bound and merged into the DAG.
    pub bind_misses: u64,
    /// Maximum nodes in flight at once (1 for sequential runs).
    pub peak_parallelism: usize,
    /// Worker threads the run was scheduled on.
    pub workers: usize,
}

/// The outcome of one batch on the epoch DAG: root results in submission order plus accounting.
#[derive(Debug)]
pub struct EpochRun {
    /// One result per submitted root, in submission order; duplicate roots alias one `Arc`.
    pub root_results: Vec<Arc<Relation>>,
    /// Work accounting for the run.
    pub report: EpochRunReport,
}

impl EpochDag {
    /// An empty epoch DAG with the last-batch pinning policy (the serving layer's default).
    #[must_use]
    pub fn new() -> Self {
        EpochDag::default()
    }

    /// An empty epoch DAG that pins every result for its whole lifetime — the policy of
    /// short-lived users like the o-sharing u-trace, where the "epoch" is one evaluation.
    #[must_use]
    pub fn pinning_all() -> Self {
        EpochDag {
            pin_all: true,
            ..EpochDag::default()
        }
    }

    /// Submits a logical plan as a root of the current batch: optimised, bound and merged into
    /// the DAG on first sight, answered by the bind cache (a hash lookup, zero allocation on
    /// the plan path) ever after.
    pub fn submit(&mut self, plan: &Plan, exec: &Executor<'_>) -> EngineResult<NodeId> {
        let key = fingerprint(plan);
        self.submit_with(key, || {
            let optimized = optimize(plan, exec.catalog())?;
            exec.bind(&optimized)
        })
    }

    /// Like [`submit`](EpochDag::submit) with the caller supplying the logical fingerprint and
    /// the binder — for callers that time or customise the optimise/bind step.  `key` must
    /// identify the logical plan within this epoch (two different plans must not share a key;
    /// the same plan should, or it forfeits its rebind skip).
    pub fn submit_with(
        &mut self,
        key: u64,
        bind: impl FnOnce() -> EngineResult<Arc<PhysicalPlan>>,
    ) -> EngineResult<NodeId> {
        let node = match self.bind_cache.get(&key) {
            Some(&(_, node)) => {
                self.bind_hits += 1;
                node
            }
            None => {
                self.bind_misses += 1;
                let physical = bind()?;
                let node = self.dag.add_plan(&physical);
                self.bind_cache.insert(key, (physical, node));
                node
            }
        };
        self.pending.push(node);
        Ok(node)
    }

    /// Submits an already-bound plan as a root of the current batch (no bind cache involved;
    /// merging is a pointer walk thanks to `Arc`-shared children).
    pub fn submit_bound(&mut self, physical: &Arc<PhysicalPlan>) -> NodeId {
        let node = self.dag.add_plan(physical);
        self.pending.push(node);
        node
    }

    /// Abandons the current batch: drops every root submitted since the last
    /// [`execute_pending`](EpochDag::execute_pending) and resynchronises the per-batch bind
    /// counters.  Callers **must** invoke this when batch assembly fails partway (a later
    /// query failed to reformulate or bind), or the stale roots would silently prepend
    /// themselves to the next batch's results.  Returns how many roots were dropped.
    pub fn abort_pending(&mut self) -> usize {
        let dropped = self.pending.len();
        self.pending.clear();
        self.bind_hits_reported = self.bind_hits;
        self.bind_misses_reported = self.bind_misses;
        dropped
    }

    /// Executes the batch submitted since the last call: only the nodes the batch's roots need
    /// and no live cached result answers are run (on `workers` threads when > 1), results come
    /// back in submission order, and the pin policy rotates to this batch's working set.
    pub fn execute_pending(
        &mut self,
        exec: &mut Executor<'_>,
        workers: usize,
    ) -> EngineResult<EpochRun> {
        let roots = std::mem::take(&mut self.pending);
        if roots.is_empty() {
            // An empty batch must not rotate the pin set — it would silently flush the warm
            // working set a heartbeat-style flush has no business touching.
            let report = EpochRunReport {
                nodes_executed: 0,
                results_reused: 0,
                bind_hits: self.bind_hits - self.bind_hits_reported,
                bind_misses: self.bind_misses - self.bind_misses_reported,
                peak_parallelism: 0,
                workers: workers.max(1),
            };
            self.bind_hits_reported = self.bind_hits;
            self.bind_misses_reported = self.bind_misses;
            self.batches += 1;
            return Ok(EpochRun {
                root_results: Vec::new(),
                report,
            });
        }
        let mut touched: HashMap<u64, Arc<Relation>> = HashMap::new();
        let mut hits = 0u64;
        let mut executed = 0u64;
        let run = {
            let mut cache = EpochResultCache {
                weak: &mut self.weak_results,
                pinned: &self.pinned,
                touched: &mut touched,
                hits: &mut hits,
                executed: &mut executed,
            };
            DagScheduler::with_workers(workers)
                .execute_roots(&self.dag, &roots, exec, &mut cache)?
        };
        self.result_hits += hits;
        self.nodes_executed += executed;
        self.batches += 1;
        if self.pin_all {
            self.pinned.extend(touched);
        } else {
            self.pinned = touched;
        }
        // Drop dead weak entries so the map tracks live results, not the epoch's history.
        self.weak_results.retain(|_, w| w.strong_count() > 0);

        let report = EpochRunReport {
            nodes_executed: run.report.nodes_executed,
            results_reused: run.report.results_reused,
            bind_hits: self.bind_hits - self.bind_hits_reported,
            bind_misses: self.bind_misses - self.bind_misses_reported,
            peak_parallelism: run.report.peak_parallelism,
            workers: run.report.workers,
        };
        self.bind_hits_reported = self.bind_hits;
        self.bind_misses_reported = self.bind_misses;
        Ok(EpochRun {
            root_results: run.root_results,
            report,
        })
    }

    /// Resolves one bound plan immediately (the incremental front-end of the u-trace): the plan
    /// is merged into the DAG and only the nodes without a live cached result execute.  Results
    /// are pinned like any batch result; rotation still happens at
    /// [`execute_pending`](EpochDag::execute_pending) (never called in pin-all mode).
    pub fn resolve(
        &mut self,
        physical: &Arc<PhysicalPlan>,
        exec: &mut Executor<'_>,
    ) -> EngineResult<Arc<Relation>> {
        let root = self.dag.add_plan(physical);
        let mut touched: HashMap<u64, Arc<Relation>> = HashMap::new();
        let mut hits = 0u64;
        let mut executed = 0u64;
        let result = {
            let mut cache = EpochResultCache {
                weak: &mut self.weak_results,
                pinned: &self.pinned,
                touched: &mut touched,
                hits: &mut hits,
                executed: &mut executed,
            };
            self.dag.resolve_root(root, exec, &mut cache)?
        };
        self.result_hits += hits;
        self.nodes_executed += executed;
        self.pinned.extend(touched);
        Ok(result)
    }

    /// The underlying shared-operator DAG (metrics, inspection).
    #[must_use]
    pub fn dag(&self) -> &OperatorDag {
        &self.dag
    }

    /// Distinct operator nodes merged into the epoch DAG so far.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.dag.node_count()
    }

    /// Submissions answered by the bind cache over the epoch's lifetime.
    #[must_use]
    pub fn bind_hits(&self) -> u64 {
        self.bind_hits
    }

    /// Submissions that were optimised, bound and merged over the epoch's lifetime.
    #[must_use]
    pub fn bind_misses(&self) -> u64 {
        self.bind_misses
    }

    /// Node executions skipped because a live cached result answered the node.
    #[must_use]
    pub fn result_hits(&self) -> u64 {
        self.result_hits
    }

    /// Node executions actually performed over the epoch's lifetime.
    #[must_use]
    pub fn nodes_executed(&self) -> u64 {
        self.nodes_executed
    }

    /// Batches executed via [`execute_pending`](EpochDag::execute_pending).
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Results currently held strongly by the pin policy.
    #[must_use]
    pub fn pinned_results(&self) -> usize {
        self.pinned.len()
    }

    /// Results still alive in the weak cache (pinned here or held by any consumer).
    #[must_use]
    pub fn live_results(&self) -> usize {
        self.weak_results
            .values()
            .filter(|w| w.strong_count() > 0)
            .count()
    }
}

/// The [`DagResultCache`] adapter of one epoch run: answers lookups from this run's results,
/// the pinned set, then the weak cache; collects everything it touches for pin rotation.
struct EpochResultCache<'a> {
    weak: &'a mut HashMap<u64, Weak<Relation>>,
    pinned: &'a HashMap<u64, Arc<Relation>>,
    touched: &'a mut HashMap<u64, Arc<Relation>>,
    hits: &'a mut u64,
    executed: &'a mut u64,
}

impl DagResultCache for EpochResultCache<'_> {
    fn lookup(&mut self, fingerprint: u64) -> Option<Arc<Relation>> {
        let hit = self
            .touched
            .get(&fingerprint)
            .cloned()
            .or_else(|| self.pinned.get(&fingerprint).cloned())
            .or_else(|| self.weak.get(&fingerprint).and_then(Weak::upgrade))?;
        *self.hits += 1;
        self.touched.insert(fingerprint, Arc::clone(&hit));
        Some(hit)
    }

    fn publish(&mut self, fingerprint: u64, result: &Arc<Relation>) {
        *self.executed += 1;
        self.weak.insert(fingerprint, Arc::downgrade(result));
        self.touched.insert(fingerprint, Arc::clone(result));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompareOp, Predicate};
    use urm_storage::{Attribute, Catalog, DataType, Schema, Tuple, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(
            "R",
            vec![
                Attribute::new("a", DataType::Int),
                Attribute::new("b", DataType::Text),
            ],
        );
        let rows = (0..30)
            .map(|i| {
                Tuple::new(vec![
                    Value::from(i as i64),
                    Value::from(if i % 3 == 0 { "x" } else { "y" }),
                ])
            })
            .collect();
        let mut cat = Catalog::new();
        cat.insert(Relation::new(schema, rows).unwrap());
        cat
    }

    fn queries() -> Vec<Plan> {
        let base = Plan::scan("R").select(Predicate::eq("R.b", Value::from("x")));
        vec![
            base.clone().project(vec!["R.a".into()]),
            base.clone().project(vec!["R.b".into()]),
            Plan::scan("R").select(Predicate::compare("R.a", CompareOp::Gt, Value::from(10i64))),
        ]
    }

    fn run_batch(epoch: &mut EpochDag, exec: &mut Executor<'_>, workers: usize) -> EpochRun {
        for q in queries() {
            epoch.submit(&q, exec).unwrap();
        }
        epoch.execute_pending(exec, workers).unwrap()
    }

    #[test]
    fn warm_batch_skips_rebinding_and_re_execution_entirely() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut epoch = EpochDag::new();

        let cold = run_batch(&mut epoch, &mut exec, 1);
        assert_eq!(cold.report.bind_hits, 0);
        assert_eq!(cold.report.bind_misses, 3);
        assert!(cold.report.nodes_executed > 0);
        assert_eq!(cold.report.results_reused, 0);
        let work_after_cold = exec.stats().operators_executed + exec.stats().scans;

        let warm = run_batch(&mut epoch, &mut exec, 1);
        assert_eq!(warm.report.bind_hits, 3, "warm batch must skip rebinding");
        assert_eq!(warm.report.bind_misses, 0);
        assert_eq!(
            warm.report.nodes_executed, 0,
            "warm batch must not execute a single node"
        );
        assert_eq!(warm.report.results_reused, 3, "all roots answered by cache");
        assert_eq!(
            exec.stats().operators_executed + exec.stats().scans,
            work_after_cold,
            "warm batch charged executor work"
        );

        // Warm results are the cold batch's allocations, shared by pointer.
        for (a, b) in cold.root_results.iter().zip(&warm.root_results) {
            assert!(Arc::ptr_eq(a, b));
        }
        assert_eq!(epoch.batches(), 2);
    }

    #[test]
    fn warm_results_match_rebuild_every_batch_for_any_worker_count() {
        let cat = catalog();
        for workers in [1usize, 2, 4] {
            let mut exec = Executor::new(&cat);
            let mut epoch = EpochDag::new();
            let cold = run_batch(&mut epoch, &mut exec, workers);
            let warm = run_batch(&mut epoch, &mut exec, workers);
            // The rebuild-every-batch baseline: a throwaway epoch per batch.
            let mut fresh = EpochDag::new();
            let rebuilt = run_batch(&mut fresh, &mut exec, workers);
            for ((a, b), c) in cold
                .root_results
                .iter()
                .zip(&warm.root_results)
                .zip(&rebuilt.root_results)
            {
                assert_eq!(a.rows(), b.rows());
                assert_eq!(a.rows(), c.rows());
                assert_eq!(a.schema(), c.schema());
            }
        }
    }

    #[test]
    fn pin_rotation_keeps_only_the_last_batch_resident() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut epoch = EpochDag::new();

        run_batch(&mut epoch, &mut exec, 1);
        let pinned_after_first = epoch.pinned_results();
        assert!(pinned_after_first > 0);

        // A disjoint second batch: the first batch's results must be unpinned (and, with no
        // other holders, dead in the weak cache), so a third batch re-executes them.
        epoch
            .submit(
                &Plan::scan("R").select(Predicate::eq("R.b", Value::from("y"))),
                &exec,
            )
            .unwrap();
        epoch.execute_pending(&mut exec, 1).unwrap();
        for q in queries() {
            epoch.submit(&q, &exec).unwrap();
        }
        let third = epoch.execute_pending(&mut exec, 1).unwrap();
        assert!(
            third.report.nodes_executed > 0,
            "rotated-out results must be recomputed once they died"
        );
        // The shared scan survived inside the second batch's pins, so part of the work is
        // still answered from cache.
        assert!(third.report.results_reused > 0);
        // Rebinding was never repeated, dead or alive.
        assert_eq!(third.report.bind_hits, 3);
    }

    #[test]
    fn live_external_results_answer_even_rotated_nodes() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut epoch = EpochDag::new();

        // Hold the cold batch's results alive externally across an unrelated batch.
        let cold = run_batch(&mut epoch, &mut exec, 1);
        epoch
            .submit(
                &Plan::scan("R").select(Predicate::eq("R.b", Value::from("y"))),
                &exec,
            )
            .unwrap();
        epoch.execute_pending(&mut exec, 1).unwrap();

        // Although the pins rotated, the weak cache upgrades the externally held Arcs.
        let warm = run_batch(&mut epoch, &mut exec, 1);
        assert_eq!(warm.report.nodes_executed, 0);
        for (a, b) in cold.root_results.iter().zip(&warm.root_results) {
            assert!(Arc::ptr_eq(a, b));
        }
    }

    #[test]
    fn pinning_all_never_recomputes() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut epoch = EpochDag::pinning_all();
        run_batch(&mut epoch, &mut exec, 1);
        let first_pins = epoch.pinned_results();
        epoch
            .submit(
                &Plan::scan("R").select(Predicate::eq("R.b", Value::from("y"))),
                &exec,
            )
            .unwrap();
        epoch.execute_pending(&mut exec, 1).unwrap();
        assert!(epoch.pinned_results() > first_pins, "pins must accumulate");
        let warm = run_batch(&mut epoch, &mut exec, 1);
        assert_eq!(warm.report.nodes_executed, 0);
    }

    #[test]
    fn empty_batch_does_not_flush_the_pin_set() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut epoch = EpochDag::new();
        run_batch(&mut epoch, &mut exec, 1);
        let pins = epoch.pinned_results();
        assert!(pins > 0);

        // A heartbeat-style flush with nothing pending must not rotate the pins away.
        let empty = epoch.execute_pending(&mut exec, 1).unwrap();
        assert!(empty.root_results.is_empty());
        assert_eq!(empty.report.nodes_executed, 0);
        assert_eq!(epoch.pinned_results(), pins, "empty batch flushed the pins");

        let warm = run_batch(&mut epoch, &mut exec, 1);
        assert_eq!(warm.report.nodes_executed, 0, "epoch went cold");
    }

    #[test]
    fn abort_pending_discards_the_half_assembled_batch() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut epoch = EpochDag::new();
        run_batch(&mut epoch, &mut exec, 1);

        // A batch that fails partway leaves stale roots pending; aborting must drop them so
        // the next batch's results stay aligned with its own submissions.
        epoch
            .submit(
                &Plan::scan("R").select(Predicate::eq("R.b", Value::from("y"))),
                &exec,
            )
            .unwrap();
        assert_eq!(epoch.abort_pending(), 1);

        let next = run_batch(&mut epoch, &mut exec, 1);
        assert_eq!(
            next.root_results.len(),
            queries().len(),
            "stale roots leaked into the next batch"
        );
        // Results line up with the submissions, not with the aborted leftover.
        assert_eq!(next.root_results[0].schema().arity(), 1);
        // The aborted batch's bind-counter deltas were resynchronised too.
        assert_eq!(next.report.bind_misses, 0);
    }

    #[test]
    fn submit_bound_roots_share_the_callers_tree() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut epoch = EpochDag::new();
        let physical = exec
            .bind(&Plan::scan("R").select(Predicate::eq("R.b", Value::from("x"))))
            .unwrap();
        let node = epoch.submit_bound(&physical);
        assert!(Arc::ptr_eq(epoch.dag().plan_shared(node), &physical));
        let run = epoch.execute_pending(&mut exec, 1).unwrap();
        assert_eq!(run.root_results.len(), 1);
        assert_eq!(run.root_results[0].len(), 10);
    }
}
