//! Row-at-a-time plan executor.

use crate::plan::qualify_schema;
use crate::{AggFunc, EngineError, EngineResult, ExecStats, Plan, Predicate};
use std::collections::HashMap;
use std::time::Instant;
use urm_storage::{Catalog, Relation, Schema, Tuple, Value};

/// Executes [`Plan`]s against a [`Catalog`], accumulating [`ExecStats`].
///
/// The executor is deliberately simple — materialise every operator's output — because the
/// paper's algorithms differ in *how many* operators and source queries they run, not in how a
/// single operator is evaluated.  Two things matter for fidelity:
///
/// * every executed operator is counted (the paper's Table IV metric), and
/// * equi-joins use a hash table so that even strategies that evaluate products early (the
///   Random strategy of Section VI-A) remain feasible on the benchmark instances.
pub struct Executor<'a> {
    catalog: &'a Catalog,
    stats: ExecStats,
}

impl<'a> Executor<'a> {
    /// Creates an executor over the given source instance.
    #[must_use]
    pub fn new(catalog: &'a Catalog) -> Self {
        Executor {
            catalog,
            stats: ExecStats::new(),
        }
    }

    /// Runs a plan to completion, returning the materialised result.
    pub fn run(&mut self, plan: &Plan) -> EngineResult<Relation> {
        let start = Instant::now();
        let result = self.eval(plan);
        self.stats.exec_time += start.elapsed();
        if result.is_ok() {
            self.stats.record_source_query();
        }
        result
    }

    /// Runs a plan that represents a *single operator* application (o-sharing executes the
    /// target query one operator at a time); identical to [`Executor::run`] except that it does
    /// not count a completed source query.
    pub fn run_operator(&mut self, plan: &Plan) -> EngineResult<Relation> {
        let start = Instant::now();
        let result = self.eval(plan);
        self.stats.exec_time += start.elapsed();
        result
    }

    /// The statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Mutable access to the statistics, for callers that drive execution operator by operator
    /// (the shared-plan cache) yet still want completed source queries accounted for.
    pub fn stats_mut(&mut self) -> &mut ExecStats {
        &mut self.stats
    }

    /// Consumes the executor, returning its statistics.
    #[must_use]
    pub fn into_stats(self) -> ExecStats {
        self.stats
    }

    /// Resets the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::new();
    }

    fn eval(&mut self, plan: &Plan) -> EngineResult<Relation> {
        match plan {
            Plan::Scan { relation, alias } => {
                let base = self.catalog.require(relation)?;
                let schema = qualify_schema(base.schema(), alias);
                let rows = base.rows().to_vec();
                self.stats.record_scan(rows.len() as u64);
                Ok(Relation::from_validated(schema, rows))
            }
            Plan::Values(rel) => Ok(rel.as_ref().clone()),
            Plan::Select { predicate, input } => {
                let input_rel = self.eval(input)?;
                let out = apply_select(&input_rel, predicate);
                self.stats
                    .record_operator(input_rel.len() as u64, out.len() as u64);
                Ok(out)
            }
            Plan::Project { columns, input } => {
                let input_rel = self.eval(input)?;
                let out = apply_project(&input_rel, columns)?;
                self.stats
                    .record_operator(input_rel.len() as u64, out.len() as u64);
                Ok(out)
            }
            Plan::Product { left, right } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                let out = apply_product(&l, &r);
                self.stats
                    .record_operator((l.len() + r.len()) as u64, out.len() as u64);
                Ok(out)
            }
            Plan::HashJoin { left, right, on } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                let out = apply_hash_join(&l, &r, on)?;
                self.stats
                    .record_operator((l.len() + r.len()) as u64, out.len() as u64);
                Ok(out)
            }
            Plan::Aggregate { func, input } => {
                let input_rel = self.eval(input)?;
                let out = apply_aggregate(&input_rel, func)?;
                self.stats
                    .record_operator(input_rel.len() as u64, out.len() as u64);
                Ok(out)
            }
        }
    }
}

/// Applies a selection to a materialised relation.
#[must_use]
pub fn apply_select(input: &Relation, predicate: &Predicate) -> Relation {
    let schema = input.schema().clone();
    let resolve = |c: &str| schema.position(c);
    let rows = input
        .iter()
        .filter(|t| predicate.eval(t, &resolve))
        .cloned()
        .collect();
    Relation::from_validated(schema, rows)
}

/// Applies a projection to a materialised relation.
pub fn apply_project(input: &Relation, columns: &[String]) -> EngineResult<Relation> {
    if columns.is_empty() {
        return Err(EngineError::InvalidPlan(
            "projection must keep at least one column".into(),
        ));
    }
    let schema = input.schema();
    let mut positions = Vec::with_capacity(columns.len());
    let mut attrs = Vec::with_capacity(columns.len());
    for c in columns {
        let pos = schema
            .position(c)
            .ok_or_else(|| EngineError::UnknownColumn {
                column: c.clone(),
                schema: schema.to_string(),
            })?;
        positions.push(pos);
        attrs.push(schema.attributes()[pos].clone());
    }
    let out_schema = Schema::new(format!("π({})", schema.name()), attrs);
    let rows = input.iter().map(|t| t.project(&positions)).collect();
    Ok(Relation::from_validated(out_schema, rows))
}

/// Applies a Cartesian product to two materialised relations.
#[must_use]
pub fn apply_product(left: &Relation, right: &Relation) -> Relation {
    let schema = left.schema().product(
        right.schema(),
        format!("{}×{}", left.schema().name(), right.schema().name()),
    );
    let mut rows = Vec::with_capacity(left.len().saturating_mul(right.len()));
    for l in left.iter() {
        for r in right.iter() {
            rows.push(l.concat(r));
        }
    }
    Relation::from_validated(schema, rows)
}

/// Applies a hash equi-join to two materialised relations.
pub fn apply_hash_join(
    left: &Relation,
    right: &Relation,
    on: &[(String, String)],
) -> EngineResult<Relation> {
    if on.is_empty() {
        return Ok(apply_product(left, right));
    }
    let ls = left.schema();
    let rs = right.schema();
    let mut left_keys = Vec::with_capacity(on.len());
    let mut right_keys = Vec::with_capacity(on.len());
    for (l, r) in on {
        // Join columns may arrive in either order; resolve each against the side that has it.
        let (lcol, rcol) = if ls.contains(l) && rs.contains(r) {
            (l, r)
        } else if ls.contains(r) && rs.contains(l) {
            (r, l)
        } else {
            return Err(EngineError::UnknownColumn {
                column: format!("{l} / {r}"),
                schema: format!("{ls} ⋈ {rs}"),
            });
        };
        left_keys.push(ls.require(lcol).map_err(EngineError::from)?);
        right_keys.push(rs.require(rcol).map_err(EngineError::from)?);
    }

    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(right.len());
    for t in right.iter() {
        let key: Vec<Value> = right_keys
            .iter()
            .map(|&i| t.get(i).cloned().unwrap_or(Value::Null))
            .collect();
        if key.iter().any(Value::is_null) {
            continue;
        }
        table.entry(key).or_default().push(t);
    }

    let schema = ls.product(rs, format!("{}⋈{}", ls.name(), rs.name()));
    let mut rows = Vec::new();
    for l in left.iter() {
        let key: Vec<Value> = left_keys
            .iter()
            .map(|&i| l.get(i).cloned().unwrap_or(Value::Null))
            .collect();
        if key.iter().any(Value::is_null) {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for r in matches {
                rows.push(l.concat(r));
            }
        }
    }
    Ok(Relation::from_validated(schema, rows))
}

/// Applies an aggregate, producing a single-row relation.
pub fn apply_aggregate(input: &Relation, func: &AggFunc) -> EngineResult<Relation> {
    let schema = input.schema();
    match func {
        AggFunc::Count => {
            let out_schema = Schema::new(
                format!("agg({})", schema.name()),
                vec![urm_storage::Attribute::new(
                    "count",
                    urm_storage::DataType::Int,
                )],
            );
            let row = Tuple::new(vec![Value::from(input.len() as i64)]);
            Ok(Relation::from_validated(out_schema, vec![row]))
        }
        AggFunc::Sum(col) => {
            let pos = schema
                .position(col)
                .ok_or_else(|| EngineError::UnknownColumn {
                    column: col.clone(),
                    schema: schema.to_string(),
                })?;
            let mut sum = 0.0f64;
            for t in input.iter() {
                match t.get(pos) {
                    Some(v) if v.is_null() => {}
                    Some(v) => {
                        sum += v.as_f64().ok_or_else(|| EngineError::InvalidAggregate {
                            func: "SUM",
                            column: col.clone(),
                        })?;
                    }
                    None => {}
                }
            }
            let out_schema = Schema::new(
                format!("agg({})", schema.name()),
                vec![urm_storage::Attribute::new(
                    format!("sum({col})"),
                    urm_storage::DataType::Float,
                )],
            );
            let row = Tuple::new(vec![Value::from(sum)]);
            Ok(Relation::from_validated(out_schema, vec![row]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompareOp;
    use urm_storage::{Attribute, DataType};

    /// The Customer relation of Figure 2 in the paper.
    fn figure2_catalog() -> Catalog {
        let schema = Schema::new(
            "Customer",
            vec![
                Attribute::new("cid", DataType::Int),
                Attribute::new("cname", DataType::Text),
                Attribute::new("ophone", DataType::Text),
                Attribute::new("hphone", DataType::Text),
                Attribute::new("oaddr", DataType::Text),
                Attribute::new("haddr", DataType::Text),
            ],
        );
        let rows = vec![
            Tuple::new(vec![
                Value::from(1i64),
                Value::from("Alice"),
                Value::from("123"),
                Value::from("789"),
                Value::from("aaa"),
                Value::from("hk"),
            ]),
            Tuple::new(vec![
                Value::from(2i64),
                Value::from("Bob"),
                Value::from("456"),
                Value::from("123"),
                Value::from("bbb"),
                Value::from("hk"),
            ]),
            Tuple::new(vec![
                Value::from(3i64),
                Value::from("Cindy"),
                Value::from("456"),
                Value::from("789"),
                Value::from("aaa"),
                Value::from("aaa"),
            ]),
        ];
        let customer = Relation::new(schema, rows).unwrap();

        let order_schema = Schema::new(
            "C_Order",
            vec![
                Attribute::new("oid", DataType::Int),
                Attribute::new("cid", DataType::Int),
                Attribute::new("amount", DataType::Float),
            ],
        );
        let orders = Relation::new(
            order_schema,
            vec![
                Tuple::new(vec![
                    Value::from(10i64),
                    Value::from(1i64),
                    Value::from(99.5),
                ]),
                Tuple::new(vec![
                    Value::from(11i64),
                    Value::from(3i64),
                    Value::from(12.0),
                ]),
            ],
        )
        .unwrap();

        let mut cat = Catalog::new();
        cat.insert(customer);
        cat.insert(orders);
        cat
    }

    #[test]
    fn select_on_figure2_matches_paper_example() {
        // π_{ophone} σ_{oaddr='aaa'} Customer  →  {123, 456} (the paper's m1 reformulation).
        let cat = figure2_catalog();
        let plan = Plan::scan("Customer")
            .select(Predicate::eq("Customer.oaddr", Value::from("aaa")))
            .project(vec!["Customer.ophone".into()]);
        let mut exec = Executor::new(&cat);
        let out = exec.run(&plan).unwrap();
        let phones: Vec<_> = out
            .iter()
            .map(|t| t.get(0).unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(phones, vec!["123", "456"]);
        assert_eq!(exec.stats().source_queries, 1);
        assert_eq!(exec.stats().operators_executed, 2);
        assert_eq!(exec.stats().scans, 1);
    }

    #[test]
    fn select_with_haddr_matches_other_mapping() {
        // π_{ophone} σ_{haddr='aaa'} Customer  →  {456} (the paper's m3 reformulation).
        let cat = figure2_catalog();
        let plan = Plan::scan("Customer")
            .select(Predicate::eq("Customer.haddr", Value::from("aaa")))
            .project(vec!["Customer.ophone".into()]);
        let out = Executor::new(&cat).run(&plan).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0].get(0), Some(&Value::from("456")));
    }

    #[test]
    fn comparison_operators_work_end_to_end() {
        let cat = figure2_catalog();
        let plan = Plan::scan("C_Order").select(Predicate::compare(
            "C_Order.amount",
            CompareOp::Gt,
            Value::from(50.0),
        ));
        let out = Executor::new(&cat).run(&plan).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn product_produces_all_pairs() {
        let cat = figure2_catalog();
        let plan = Plan::scan("Customer").product(Plan::scan("C_Order"));
        let out = Executor::new(&cat).run(&plan).unwrap();
        assert_eq!(out.len(), 3 * 2);
        assert_eq!(out.schema().arity(), 6 + 3);
    }

    #[test]
    fn hash_join_matches_product_plus_selection() {
        let cat = figure2_catalog();
        let join = Plan::scan("Customer").hash_join(
            Plan::scan("C_Order"),
            vec![("Customer.cid".into(), "C_Order.cid".into())],
        );
        let product = Plan::scan("Customer")
            .product(Plan::scan("C_Order"))
            .select(Predicate::column_eq("Customer.cid", "C_Order.cid"));
        let a = Executor::new(&cat).run(&join).unwrap();
        let b = Executor::new(&cat).run(&product).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 2);
        use std::collections::HashSet;
        let rows_a: HashSet<_> = a.rows().iter().cloned().collect();
        let rows_b: HashSet<_> = b.rows().iter().cloned().collect();
        assert_eq!(rows_a, rows_b);
    }

    #[test]
    fn hash_join_with_swapped_columns() {
        let cat = figure2_catalog();
        let join = Plan::scan("Customer").hash_join(
            Plan::scan("C_Order"),
            vec![("C_Order.cid".into(), "Customer.cid".into())],
        );
        let out = Executor::new(&cat).run(&join).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn hash_join_with_no_conditions_is_a_product() {
        let cat = figure2_catalog();
        let join = Plan::scan("Customer").hash_join(Plan::scan("C_Order"), vec![]);
        let out = Executor::new(&cat).run(&join).unwrap();
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn count_and_sum_aggregates() {
        let cat = figure2_catalog();
        let count = Plan::scan("Customer").aggregate(AggFunc::Count);
        let out = Executor::new(&cat).run(&count).unwrap();
        assert_eq!(out.rows()[0].get(0), Some(&Value::from(3i64)));

        let sum = Plan::scan("C_Order").aggregate(AggFunc::Sum("C_Order.amount".into()));
        let out = Executor::new(&cat).run(&sum).unwrap();
        assert_eq!(out.rows()[0].get(0), Some(&Value::from(111.5)));
    }

    #[test]
    fn sum_over_text_column_is_an_error() {
        let cat = figure2_catalog();
        let plan = Plan::scan("Customer").aggregate(AggFunc::Sum("Customer.cname".into()));
        let err = Executor::new(&cat).run(&plan).unwrap_err();
        assert!(matches!(err, EngineError::InvalidAggregate { .. }));
    }

    #[test]
    fn values_plan_returns_the_relation() {
        let cat = figure2_catalog();
        let base = cat.get("Customer").unwrap();
        let plan = Plan::values(base.as_ref().clone());
        let out = Executor::new(&cat).run(&plan).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn projection_of_unknown_column_fails() {
        let cat = figure2_catalog();
        let plan = Plan::scan("Customer").project(vec!["Customer.ghost".into()]);
        assert!(matches!(
            Executor::new(&cat).run(&plan),
            Err(EngineError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn empty_projection_fails() {
        let cat = figure2_catalog();
        let plan = Plan::scan("Customer").project(vec![]);
        assert!(matches!(
            Executor::new(&cat).run(&plan),
            Err(EngineError::InvalidPlan(_))
        ));
    }

    #[test]
    fn run_operator_does_not_count_a_source_query() {
        let cat = figure2_catalog();
        let mut exec = Executor::new(&cat);
        exec.run_operator(&Plan::scan("Customer")).unwrap();
        assert_eq!(exec.stats().source_queries, 0);
        assert_eq!(exec.stats().scans, 1);
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let cat = figure2_catalog();
        let mut exec = Executor::new(&cat);
        exec.run(&Plan::scan("Customer")).unwrap();
        exec.run(&Plan::scan("C_Order")).unwrap();
        assert_eq!(exec.stats().source_queries, 2);
        assert_eq!(exec.stats().scans, 2);
        exec.reset_stats();
        assert_eq!(exec.stats().source_queries, 0);
    }

    #[test]
    fn aggregate_over_empty_input_returns_zero() {
        let cat = figure2_catalog();
        let plan = Plan::scan("Customer")
            .select(Predicate::eq("Customer.oaddr", Value::from("nowhere")))
            .aggregate(AggFunc::Count);
        let out = Executor::new(&cat).run(&plan).unwrap();
        assert_eq!(out.rows()[0].get(0), Some(&Value::from(0i64)));
    }
}
