//! The plan executor: binds logical plans and evaluates physical operators batch-at-a-time.
//!
//! [`Executor::run`] is a thin wrapper over the two-phase pipeline — [`bind`] the logical plan
//! into a [`PhysicalPlan`] (columns positional, predicates compiled, base row buffers
//! captured), then evaluate the physical operators bottom-up.  Every operator consumes its
//! children's output batches and produces one output batch behind an `Arc`, so:
//!
//! * scans and `Values` leaves hand out shared views of existing row buffers (zero copies);
//! * cached sub-plan results flow into downstream operators without re-materialisation;
//! * tuples are only constructed where rows genuinely come into existence (projection
//!   narrowing, join/product concatenation).
//!
//! Two things matter for fidelity to the paper:
//!
//! * every executed operator is counted (the paper's Table IV metric), with accounting
//!   identical to the retained row-at-a-time [`reference`](crate::reference) evaluator, and
//! * equi-joins use a hash table so that even strategies that evaluate products early (the
//!   Random strategy of Section VI-A) remain feasible on the benchmark instances.

use crate::feedback::JoinHint;
use crate::physical::{bind, BoundAggregate, PhysicalPlan};
use crate::vectorized::{Batch, ColsBatch};
use crate::{EngineError, EngineResult, ExecStats, Plan};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;
use urm_obs::Tracer;
use urm_storage::{
    Attribute, BufferPool, Catalog, ColumnarRelation, DataType, Relation, Schema, Tuple, Value,
};

/// Executes [`Plan`]s against a [`Catalog`], accumulating [`ExecStats`].
pub struct Executor<'a> {
    catalog: &'a Catalog,
    stats: ExecStats,
    /// The spill pool of a byte-budgeted execution: hash joins whose build side exceeds the
    /// pool's budget fall back to the grace (partitioned) join, staging partitions through the
    /// pool.  `None` (the default) keeps the pre-spill all-in-memory behaviour byte for byte.
    pool: Option<BufferPool>,
    /// Whether plans evaluate through the vectorized columnar kernels (the default).  The
    /// columnar path is held to byte identity with the row path — same values, same row
    /// order, same stats — so flipping this only changes *how fast* answers arrive.
    columnar: bool,
    /// The trace-span recorder of the current batch (disabled by default: spans are free).
    /// The DAG scheduler reads it in `run_node` for per-node spans, and the grace join opens
    /// a `grace_join` span around its partition/stage/probe passes.
    tracer: Tracer,
}

impl<'a> Executor<'a> {
    /// Creates an executor over the given source instance.
    #[must_use]
    pub fn new(catalog: &'a Catalog) -> Self {
        Executor {
            catalog,
            stats: ExecStats::new(),
            pool: None,
            columnar: true,
            tracer: Tracer::disabled(),
        }
    }

    /// Creates an executor whose hash joins respect `pool`'s byte budget: a build side bigger
    /// than half the budget takes the grace (partitioned) path, spilling its partitions
    /// through the pool and joining them pair by pair.  Results are byte-identical to the
    /// in-memory path, row order included.
    #[must_use]
    pub fn with_pool(catalog: &'a Catalog, pool: BufferPool) -> Self {
        Executor {
            catalog,
            stats: ExecStats::new(),
            pool: Some(pool),
            columnar: true,
            tracer: Tracer::disabled(),
        }
    }

    /// Builder-style toggle for the vectorized columnar path (see [`Executor::set_columnar`]).
    #[must_use]
    pub fn with_columnar(mut self, on: bool) -> Self {
        self.columnar = on;
        self
    }

    /// Enables or disables the vectorized columnar path.  Off, every plan evaluates through
    /// the original row-at-a-time operators; on (the default), operators over converted
    /// leaves run as per-column kernels driven by selection vectors.
    pub fn set_columnar(&mut self, on: bool) {
        self.columnar = on;
    }

    /// Whether the vectorized columnar path is enabled.
    #[must_use]
    pub fn columnar_enabled(&self) -> bool {
        self.columnar
    }

    /// Builder-style tracer attachment (see [`Executor::set_tracer`]).
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Points this executor's spans (per-DAG-node execution, grace joins) at `tracer`.
    /// Disabled tracers (the default) make every span a no-op.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The executor's tracer (disabled unless a traced batch attached one).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The spill pool, when this executor runs under a memory budget.
    #[must_use]
    pub fn pool(&self) -> Option<&BufferPool> {
        self.pool.as_ref()
    }

    /// The catalog this executor runs against.
    #[must_use]
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// Binds a logical plan against this executor's catalog (see [`bind`]).
    ///
    /// The returned plan is a shared handle: merging it (or any subtree of it) into a DAG or a
    /// cache is a pointer bump.
    pub fn bind(&self, plan: &Plan) -> EngineResult<Arc<PhysicalPlan>> {
        bind(plan, self.catalog)
    }

    /// Runs a plan to completion, returning the materialised result.
    ///
    /// Equivalent to [`bind`](Executor::bind) + [`execute`](Executor::execute); kept as the
    /// one-call entry point for callers that run a plan once.
    pub fn run(&mut self, plan: &Plan) -> EngineResult<Relation> {
        self.run_shared(plan).map(unshare)
    }

    /// Like [`Executor::run`], but returns the result behind an `Arc` so callers can feed it
    /// into further plans (via [`Plan::values_shared`]) without copying it.
    pub fn run_shared(&mut self, plan: &Plan) -> EngineResult<Arc<Relation>> {
        self.timed_eval(plan, true)
    }

    /// Runs a plan that represents a *single operator* application (o-sharing executes the
    /// target query one operator at a time); identical to [`Executor::run`] except that it does
    /// not count a completed source query.
    pub fn run_operator(&mut self, plan: &Plan) -> EngineResult<Relation> {
        self.run_operator_shared(plan).map(unshare)
    }

    /// Like [`Executor::run_operator`], returning a shared result.
    pub fn run_operator_shared(&mut self, plan: &Plan) -> EngineResult<Arc<Relation>> {
        self.timed_eval(plan, false)
    }

    /// Evaluates an already-bound physical plan (does not count a completed source query).
    pub fn execute(&mut self, plan: &PhysicalPlan) -> EngineResult<Arc<Relation>> {
        let start = Instant::now();
        let result = self.eval_tree(plan);
        self.stats.exec_time += start.elapsed();
        result
    }

    /// Evaluates a *single* physical operator over already-materialised child results, in the
    /// order [`PhysicalPlan::children`] lists them.
    ///
    /// This is the entry point of the shared-plan cache: it resolves each child through the
    /// cache and hands the shared batches here, so a cache hit flows into its parent operator
    /// without any copy.  `children` must match the node's child count.
    pub fn execute_node(
        &mut self,
        node: &PhysicalPlan,
        children: &[Arc<Relation>],
    ) -> EngineResult<Arc<Relation>> {
        self.execute_node_hinted(node, children, None)
    }

    /// Like [`execute_node`](Executor::execute_node), steered by an adaptive-execution hint.
    ///
    /// Today a hint only affects hash joins: a `build_left` hint builds the hash table on the
    /// observed-smaller left side (the output is restored to the canonical probe order, so the
    /// answer is byte-identical either way), and an observed build-bytes hint sizes the grace
    /// join's partition fan-out.  Non-join nodes, and `hint: None`, behave exactly like
    /// [`execute_node`](Executor::execute_node).
    pub fn execute_node_hinted(
        &mut self,
        node: &PhysicalPlan,
        children: &[Arc<Relation>],
        hint: Option<JoinHint>,
    ) -> EngineResult<Arc<Relation>> {
        let start = Instant::now();
        let result = self.eval_node_hinted(node, children, hint);
        self.stats.exec_time += start.elapsed();
        result
    }

    /// The statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Mutable access to the statistics, for callers that drive execution operator by operator
    /// (the shared-plan cache) yet still want completed source queries accounted for.
    pub fn stats_mut(&mut self) -> &mut ExecStats {
        &mut self.stats
    }

    /// Consumes the executor, returning its statistics.
    #[must_use]
    pub fn into_stats(self) -> ExecStats {
        self.stats
    }

    /// Resets the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::new();
    }

    /// The single timing/accounting helper behind every `run*` entry point: bind, evaluate,
    /// charge wall-clock time, and (for full source queries) count the completed query.
    fn timed_eval(&mut self, plan: &Plan, count_source_query: bool) -> EngineResult<Arc<Relation>> {
        let start = Instant::now();
        let result = self
            .bind(plan)
            .and_then(|physical| self.eval_tree(&physical));
        self.stats.exec_time += start.elapsed();
        if count_source_query && result.is_ok() {
            self.stats.record_source_query();
        }
        result
    }

    /// Bottom-up evaluation of a physical tree.
    fn eval_tree(&mut self, plan: &PhysicalPlan) -> EngineResult<Arc<Relation>> {
        if self.columnar {
            let batch = self.eval_batch(plan)?;
            return Ok(batch.materialize(plan.schema()));
        }
        let mut children = Vec::with_capacity(2);
        for child in plan.children() {
            children.push(self.eval_tree(child)?);
        }
        self.eval_node(plan, &children)
    }

    /// Bottom-up *columnar* evaluation: leaves convert to typed columns (scans through the
    /// catalog's memoised cache), selections refine selection vectors, joins and products
    /// emit gather lists, aggregates fold flat vectors.  Operators that must leave the
    /// columnar pipeline (budgeted joins, anything downstream of an aggregate) materialise
    /// their children and re-use [`Executor::eval_node`] — the row implementation — so
    /// results and statistics stay byte-identical to the row path everywhere.
    fn eval_batch(&mut self, plan: &PhysicalPlan) -> EngineResult<Batch> {
        match plan {
            PhysicalPlan::Scan { view, .. } => {
                self.stats.record_scan(view.len() as u64);
                self.stats.rows_shared += view.len() as u64;
                let conv = self.catalog.columnar_view(view);
                Ok(Batch::from_leaf(conv.columns().to_vec(), Arc::clone(view)))
            }
            PhysicalPlan::Values { rel } => {
                self.stats.rows_shared += rel.len() as u64;
                // `Values` buffers are transient, so the conversion is not cached — caching
                // them in the catalog would pin every ad-hoc buffer alive for its lifetime.
                let conv = ColumnarRelation::from_relation(rel);
                Ok(Batch::from_leaf(conv.columns().to_vec(), Arc::clone(rel)))
            }
            PhysicalPlan::Select {
                predicate, input, ..
            } => match self.eval_batch(input)? {
                Batch::Cols(c) => {
                    let read = c.len() as u64;
                    let out = c.filter(predicate);
                    self.stats.record_operator(read, out.len() as u64);
                    self.stats.columnar_rows += out.len() as u64;
                    Ok(Batch::Cols(out))
                }
                Batch::Rows(rel) => self.eval_node(plan, &[rel]).map(Batch::Rows),
            },
            PhysicalPlan::Project {
                positions, input, ..
            } => match self.eval_batch(input)? {
                Batch::Cols(c) => {
                    let out = c.project(positions);
                    self.stats.record_operator(c.len() as u64, out.len() as u64);
                    self.stats.columnar_rows += out.len() as u64;
                    Ok(Batch::Cols(out))
                }
                Batch::Rows(rel) => self.eval_node(plan, &[rel]).map(Batch::Rows),
            },
            PhysicalPlan::Product { left, right, .. } => {
                let l = self.eval_batch(left)?;
                let r = self.eval_batch(right)?;
                match (l, r) {
                    (Batch::Cols(lc), Batch::Cols(rc)) => {
                        let out = lc.product(&rc);
                        self.stats
                            .record_operator((lc.len() + rc.len()) as u64, out.len() as u64);
                        self.stats.columnar_rows += out.len() as u64;
                        Ok(Batch::Cols(out))
                    }
                    (l, r) => {
                        let children =
                            [l.materialize(left.schema()), r.materialize(right.schema())];
                        self.eval_node(plan, &children).map(Batch::Rows)
                    }
                }
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                ..
            } => {
                let l = self.eval_batch(left)?;
                let r = self.eval_batch(right)?;
                // Under a byte budget the join must consult the grace logic (which needs the
                // build side materialised anyway); the row path owns that decision.
                let budgeted = self.pool.as_ref().is_some_and(|p| p.budget().is_some());
                match (l, r) {
                    (Batch::Cols(lc), Batch::Cols(rc)) if !budgeted => {
                        let out = lc.hash_join(&rc, left_keys, right_keys);
                        self.stats
                            .record_operator((lc.len() + rc.len()) as u64, out.len() as u64);
                        self.stats.columnar_rows += out.len() as u64;
                        Ok(Batch::Cols(out))
                    }
                    (l, r) => {
                        let children =
                            [l.materialize(left.schema()), r.materialize(right.schema())];
                        self.eval_node(plan, &children).map(Batch::Rows)
                    }
                }
            }
            PhysicalPlan::Aggregate {
                func,
                input,
                schema,
            } => match self.eval_batch(input)? {
                Batch::Cols(c) => {
                    let row = match func {
                        BoundAggregate::Count => Tuple::new(vec![Value::from(c.count())]),
                        BoundAggregate::Sum { pos, column } => {
                            let sum = c.sum(*pos).ok_or_else(|| EngineError::InvalidAggregate {
                                func: "SUM",
                                column: column.clone(),
                            })?;
                            Tuple::new(vec![Value::from(sum)])
                        }
                    };
                    self.stats.record_operator(c.len() as u64, 1);
                    self.stats.columnar_rows += 1;
                    Ok(Batch::Rows(Arc::new(Relation::from_validated(
                        schema.clone(),
                        vec![row],
                    ))))
                }
                Batch::Rows(rel) => self.eval_node(plan, &[rel]).map(Batch::Rows),
            },
        }
    }

    /// The memoised columnar view of an already-materialised batch, when the columnar path
    /// is on and the batch's row buffer was converted by a scan (the per-node execution path
    /// of the shared-operator DAG — intermediates miss and stay on the row path).
    fn columnar_leaf(&self, rel: &Arc<Relation>) -> Option<ColsBatch> {
        if !self.columnar {
            return None;
        }
        let conv = self.catalog.cached_columnar(rel)?;
        Some(ColsBatch::from_leaf(
            conv.columns().to_vec(),
            Arc::clone(rel),
        ))
    }

    /// Evaluates one physical operator over its children's batches.
    fn eval_node(
        &mut self,
        plan: &PhysicalPlan,
        children: &[Arc<Relation>],
    ) -> EngineResult<Arc<Relation>> {
        self.eval_node_hinted(plan, children, None)
    }

    /// [`eval_node`](Executor::eval_node) with an optional adaptive hint (hash joins only).
    fn eval_node_hinted(
        &mut self,
        plan: &PhysicalPlan,
        children: &[Arc<Relation>],
        hint: Option<JoinHint>,
    ) -> EngineResult<Arc<Relation>> {
        match plan {
            PhysicalPlan::Scan { view, .. } => {
                self.stats.record_scan(view.len() as u64);
                self.stats.rows_shared += view.len() as u64;
                if self.columnar {
                    // Per-node execution (the shared-operator DAG) interchanges row batches;
                    // converting here lets downstream operators over this buffer pick up the
                    // columnar kernels via the catalog's memoised cache.
                    let _ = self.catalog.columnar_view(view);
                }
                Ok(Arc::clone(view))
            }
            PhysicalPlan::Values { rel } => {
                self.stats.rows_shared += rel.len() as u64;
                Ok(Arc::clone(rel))
            }
            PhysicalPlan::Select {
                predicate, schema, ..
            } => {
                let input = child(children, 0);
                if let Some(batch) = self.columnar_leaf(&input) {
                    let out = batch.filter(predicate);
                    let produced = out.len() as u64;
                    let rel = Batch::Cols(out).materialize(schema);
                    self.stats.record_operator(input.len() as u64, produced);
                    self.stats.columnar_rows += produced;
                    return Ok(rel);
                }
                let rows: Vec<Tuple> = input
                    .iter()
                    .filter(|t| predicate.matches(t))
                    .cloned()
                    .collect();
                self.stats
                    .record_operator(input.len() as u64, rows.len() as u64);
                Ok(Arc::new(Relation::from_validated(schema.clone(), rows)))
            }
            PhysicalPlan::Project {
                positions, schema, ..
            } => {
                let input = child(children, 0);
                let rows: Vec<Tuple> = input.iter().map(|t| t.project(positions)).collect();
                self.stats
                    .record_operator(input.len() as u64, rows.len() as u64);
                Ok(Arc::new(Relation::from_validated(schema.clone(), rows)))
            }
            PhysicalPlan::Product { schema, .. } => {
                let l = child(children, 0);
                let r = child(children, 1);
                let mut rows = Vec::with_capacity(l.len().saturating_mul(r.len()));
                for lt in l.iter() {
                    for rt in r.iter() {
                        rows.push(lt.concat(rt));
                    }
                }
                self.stats
                    .record_operator((l.len() + r.len()) as u64, rows.len() as u64);
                Ok(Arc::new(Relation::from_validated(schema.clone(), rows)))
            }
            PhysicalPlan::HashJoin {
                left_keys,
                right_keys,
                schema,
                ..
            } => {
                let l = child(children, 0);
                let r = child(children, 1);
                // Observed bytes only size the grace build (the right side); a flip hint's
                // bytes describe the *left* side and must not leak into that sizing.
                let observed_build =
                    hint.and_then(|h| if h.build_left { None } else { h.build_bytes });
                let grace = self.grace_partition_count(&r, observed_build);
                if grace.is_none() {
                    if let (Some(lc), Some(rc)) = (self.columnar_leaf(&l), self.columnar_leaf(&r)) {
                        let out = lc.hash_join(&rc, left_keys, right_keys);
                        let produced = out.len() as u64;
                        let rel = Batch::Cols(out).materialize(schema);
                        self.stats
                            .record_operator((l.len() + r.len()) as u64, produced);
                        self.stats.columnar_rows += produced;
                        return Ok(rel);
                    }
                }
                let rows = match grace {
                    Some(partitions) => self.grace_hash_join_rows(
                        &l,
                        &r,
                        left_keys,
                        right_keys,
                        partitions,
                        observed_build,
                    )?,
                    // The flip applies to the in-memory row join only: the grace path already
                    // bounds its build side, and the columnar fast path above was not taken
                    // (intermediate inputs), which is exactly where a wrong build side hurts.
                    None if hint.is_some_and(|h| h.build_left) => {
                        hash_join_rows_flipped(&l, &r, left_keys, right_keys)
                    }
                    None => hash_join_rows(&l, &r, left_keys, right_keys),
                };
                self.stats
                    .record_operator((l.len() + r.len()) as u64, rows.len() as u64);
                Ok(Arc::new(Relation::from_validated(schema.clone(), rows)))
            }
            PhysicalPlan::Aggregate { func, schema, .. } => {
                let input = child(children, 0);
                if let Some(batch) = self.columnar_leaf(&input) {
                    let row = match func {
                        BoundAggregate::Count => Tuple::new(vec![Value::from(batch.count())]),
                        BoundAggregate::Sum { pos, column } => {
                            let sum =
                                batch
                                    .sum(*pos)
                                    .ok_or_else(|| EngineError::InvalidAggregate {
                                        func: "SUM",
                                        column: column.clone(),
                                    })?;
                            Tuple::new(vec![Value::from(sum)])
                        }
                    };
                    self.stats.record_operator(input.len() as u64, 1);
                    self.stats.columnar_rows += 1;
                    return Ok(Arc::new(Relation::from_validated(
                        schema.clone(),
                        vec![row],
                    )));
                }
                let row = match func {
                    BoundAggregate::Count => Tuple::new(vec![Value::from(input.len() as i64)]),
                    BoundAggregate::Sum { pos, column } => {
                        let mut sum = 0.0f64;
                        for t in input.iter() {
                            match t.get(*pos) {
                                Some(v) if v.is_null() => {}
                                Some(v) => {
                                    sum += v.as_f64().ok_or_else(|| {
                                        EngineError::InvalidAggregate {
                                            func: "SUM",
                                            column: column.clone(),
                                        }
                                    })?;
                                }
                                None => {}
                            }
                        }
                        Tuple::new(vec![Value::from(sum)])
                    }
                };
                self.stats.record_operator(input.len() as u64, 1);
                Ok(Arc::new(Relation::from_validated(
                    schema.clone(),
                    vec![row],
                )))
            }
        }
    }
}

impl Executor<'_> {
    /// Decides whether a hash join must take the grace (partitioned) path: only under a
    /// budgeted pool, and only when the build (right) side exceeds half the budget — the
    /// in-memory join needs the build rows *and* their hash table resident at once.  Returns
    /// the partition fan-out, sized so each build partition targets a quarter of the budget.
    ///
    /// The *trigger* always uses the instantaneous build bytes — admission safety is not a
    /// place for stale observations — but the fan-out is sized from `observed_bytes` (the
    /// adaptive loop's decayed measurement of the build side) when available, so a build side
    /// the static estimator mis-sizes neither over-partitions (per-partition overhead) nor
    /// under-partitions (partitions that blow the budget).
    fn grace_partition_count(
        &self,
        build: &Relation,
        observed_bytes: Option<u64>,
    ) -> Option<usize> {
        let budget = self.pool.as_ref()?.budget()?;
        let build_bytes = build.estimated_bytes();
        if build_bytes <= budget / 2 {
            return None;
        }
        let sizing = observed_bytes.map_or(build_bytes, |b| (b as usize).max(1));
        let target = (budget / 4).max(1);
        Some(sizing.div_ceil(target).clamp(2, 64))
    }

    /// The grace hash join: both sides are hash-partitioned on the join key into spill-pool
    /// relations (so the pool can page them out under budget pressure), then each partition
    /// pair is loaded and joined one at a time.  Probe rows carry their original index in an
    /// extra column, and the concatenated per-partition outputs are stably re-sorted on it —
    /// a key's rows all land in one partition, so this reproduces the in-memory join's output
    /// *exactly*, row order included (the property tests hold it to that).
    fn grace_hash_join_rows(
        &mut self,
        left: &Relation,
        right: &Relation,
        left_keys: &[usize],
        right_keys: &[usize],
        partitions: usize,
        observed_build_bytes: Option<u64>,
    ) -> EngineResult<Vec<Tuple>> {
        let pool = self.pool.clone().expect("grace join runs under a pool");
        let mut grace_span = self.tracer.span("grace_join");
        grace_span.tag("partitions", partitions as u64);
        grace_span.tag("build_rows", right.len() as u64);
        grace_span.tag("probe_rows", left.len() as u64);
        self.stats.grace_partitions += partitions as u64;
        // Admission sizing: reserve room for one build partition up front — observed build
        // bytes when the adaptive loop has them, the instantaneous estimate otherwise — so
        // staging evicts unrelated pool entries in one planned sweep instead of a cascade of
        // per-admit evictions.  Best effort: a failed reservation write surfaces on the
        // staging admit that actually needs the room.
        let build_bytes =
            observed_build_bytes.map_or_else(|| right.estimated_bytes(), |b| b as usize);
        let _ = pool.reserve(build_bytes.div_ceil(partitions.max(1)));

        // One pass per side computes, per partition, the list of row indices it owns (rows
        // with a null key component can never match and are dropped here, exactly as the
        // in-memory build loop does).  The partitions are then *staged one at a time* from
        // those index lists: materialise partition p, admit it (the pool may page it straight
        // out), drop the local buffer, move to p+1.  Peak transient memory is one partition
        // plus the 4-bytes-per-row index lists, not a full deep copy of the side — the inputs
        // themselves are already materialised `Arc`s owned by the scheduler, which is the
        // floor this path cannot go below.  Empty partitions never touch the pool (no segment
        // I/O) and empty *pairs* skip the join outright.
        let partition_rows = |rel: &Relation, keys: &[usize]| -> Vec<Vec<u32>> {
            let mut ids: Vec<Vec<u32>> = vec![Vec::new(); partitions];
            for (idx, row) in rel.iter().enumerate() {
                if let Some(p) = key_partition(row, keys, partitions) {
                    ids[p].push(idx as u32);
                }
            }
            ids
        };
        // Materialises one partition's rows straight from the (still-resident) input; used to
        // stage partitions into the pool *and* to rebuild a partition whose staged segment
        // later fails to read back.
        let materialize_partition =
            |schema: &Schema, rel: &Relation, indices: &[u32], tag: bool| -> Relation {
                let all_rows = rel.rows();
                let rows: Vec<Tuple> = indices
                    .iter()
                    .map(|&idx| {
                        let row = &all_rows[idx as usize];
                        if tag {
                            row.concat(&Tuple::new(vec![Value::from(i64::from(idx))]))
                        } else {
                            row.clone()
                        }
                    })
                    .collect();
                Relation::from_validated(schema.clone(), rows)
            };
        let stage = |schema: &Schema,
                     rel: &Relation,
                     ids: &[Vec<u32>],
                     tag: bool|
         -> EngineResult<Vec<Option<urm_storage::SpillableRelation>>> {
            let mut handles = Vec::with_capacity(partitions);
            for indices in ids {
                if indices.is_empty() {
                    handles.push(None);
                    continue;
                }
                handles.push(Some(
                    pool.admit(materialize_partition(schema, rel, indices, tag))?,
                ));
            }
            Ok(handles)
        };

        // Build (right) side, then the probe (left) side — probe rows additionally carry their
        // original row index as a tag column so the final merge can restore probe order.  The
        // per-partition index lists are kept for the lifetime of the join: they are the
        // recovery path when a staged segment fails to read back.
        let right_ids = partition_rows(right, right_keys);
        let right_handles = stage(right.schema(), right, &right_ids, false)?;
        let left_arity = left.schema().arity();
        let mut tagged_attrs = left.schema().attributes().to_vec();
        tagged_attrs.push(Attribute::new(GRACE_INDEX_COLUMN, DataType::Int));
        let tagged_schema = Schema::new(format!("grace({})", left.schema().name()), tagged_attrs);
        let left_ids = partition_rows(left, left_keys);
        let left_handles = stage(&tagged_schema, left, &left_ids, true)?;

        // Join partition pairs one at a time; only the current pair needs to be resident.
        // A failed segment read (torn file, reaped tmpdir) is retried by re-materialising the
        // partition from its index list over the still-resident input — never by re-admitting
        // it through the pool, so the retry adds nothing to the spill counters and
        // `absorb_spill_delta`'s totals stay exact.
        // Output tuples strip the tag column back out: positions 0..left_arity then the right
        // side after the tag.
        let keep: Vec<usize> = (0..left_arity)
            .chain(left_arity + 1..left_arity + 1 + right.schema().arity())
            .collect();
        let mut out: Vec<(usize, Tuple)> = Vec::new();
        for (p, (lh, rh)) in left_handles.iter().zip(&right_handles).enumerate() {
            let (Some(lh), Some(rh)) = (lh, rh) else {
                continue; // one side empty: the pair can produce nothing
            };
            let lp = match lh.load() {
                Ok(rel) => rel,
                Err(_) => Arc::new(materialize_partition(
                    &tagged_schema,
                    left,
                    &left_ids[p],
                    true,
                )),
            };
            let rp = match rh.load() {
                Ok(rel) => rel,
                Err(_) => Arc::new(materialize_partition(
                    right.schema(),
                    right,
                    &right_ids[p],
                    false,
                )),
            };
            for row in hash_join_rows(&lp, &rp, left_keys, right_keys) {
                let idx = row
                    .get(left_arity)
                    .and_then(Value::as_i64)
                    .expect("grace tag column is an index") as usize;
                out.push((idx, row.project(&keep)));
            }
        }
        // Stable: within one probe index all matches come from a single partition, already in
        // build order, so this restores the in-memory output order exactly.
        out.sort_by_key(|(idx, _)| *idx);
        Ok(out.into_iter().map(|(_, row)| row).collect())
    }
}

/// Name of the probe-order tag column the grace join appends while partitioning (qualified
/// engine columns are `alias.attr`, so this can never collide with a real attribute).
const GRACE_INDEX_COLUMN: &str = "⟨grace-idx⟩";

/// The partition a row's join key hashes to, or `None` when a key component is null (null keys
/// never match, as in SQL — the row can be dropped before it ever reaches a partition).
/// Equal keys hash equally on both sides, so a key's matches always meet in one partition.
fn key_partition(row: &Tuple, keys: &[usize], partitions: usize) -> Option<usize> {
    let mut hasher = DefaultHasher::new();
    for &k in keys {
        match row.get(k) {
            Some(v) if !v.is_null() => v.hash(&mut hasher),
            _ => return None,
        }
    }
    Some((hasher.finish() % partitions as u64) as usize)
}

/// Fetches a child batch, panicking on a caller bug (wrong arity) rather than misevaluating.
fn child(children: &[Arc<Relation>], i: usize) -> Arc<Relation> {
    Arc::clone(
        children
            .get(i)
            .expect("physical operator invoked with too few child batches"),
    )
}

/// Unwraps a shared result, copying only the schema handle when the batch is still referenced
/// elsewhere (the row buffer itself is shared either way).
fn unshare(rel: Arc<Relation>) -> Relation {
    Arc::try_unwrap(rel).unwrap_or_else(|shared| (*shared).clone())
}

/// Probe-side hash join over positional keys.
///
/// Keys are *borrowed* from the input tuples — no per-row key cloning — and the single-key
/// case (the overwhelmingly common one in the paper's workload) skips the composite-key
/// allocation entirely.  Null keys never match, as in SQL.
fn hash_join_rows(
    left: &Relation,
    right: &Relation,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Vec<Tuple> {
    let mut rows = Vec::new();
    if left_keys.len() == 1 {
        let (lk, rk) = (left_keys[0], right_keys[0]);
        let mut table: HashMap<&Value, Vec<&Tuple>> = HashMap::with_capacity(right.len());
        for t in right.iter() {
            match t.get(rk) {
                Some(v) if !v.is_null() => table.entry(v).or_default().push(t),
                _ => {}
            }
        }
        for l in left.iter() {
            let Some(v) = l.get(lk) else { continue };
            if v.is_null() {
                continue;
            }
            if let Some(matches) = table.get(v) {
                for r in matches {
                    rows.push(l.concat(r));
                }
            }
        }
    } else {
        let mut table: HashMap<Vec<&Value>, Vec<&Tuple>> = HashMap::with_capacity(right.len());
        'right: for t in right.iter() {
            let mut key = Vec::with_capacity(right_keys.len());
            for &i in right_keys {
                match t.get(i) {
                    Some(v) if !v.is_null() => key.push(v),
                    _ => continue 'right,
                }
            }
            table.entry(key).or_default().push(t);
        }
        'left: for l in left.iter() {
            let mut key = Vec::with_capacity(left_keys.len());
            for &i in left_keys {
                match l.get(i) {
                    Some(v) if !v.is_null() => key.push(v),
                    _ => continue 'left,
                }
            }
            if let Some(matches) = table.get(&key) {
                for r in matches {
                    rows.push(l.concat(r));
                }
            }
        }
    }
    rows
}

/// [`hash_join_rows`] with the build side flipped onto the *left* input — the adaptive loop's
/// answer to a mis-estimated build side (the canonical join always builds on the right, which
/// is expensive when the right side is observed to be the big one).
///
/// Output order is restored to the canonical one exactly: the canonical join emits, for each
/// probe (left) row in order, its matches in build (right) insertion order — i.e. the match
/// pairs sorted lexicographically by `(left index, right index)`.  This variant collects the
/// pairs by probing the *right* side against a left-built table, then sorts them into that
/// same order before materialising, so flipping is invisible in the answer (the adaptive
/// property suite holds it to byte identity).
fn hash_join_rows_flipped(
    left: &Relation,
    right: &Relation,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Vec<Tuple> {
    let lrows = left.rows();
    let rrows = right.rows();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    if left_keys.len() == 1 {
        let (lk, rk) = (left_keys[0], right_keys[0]);
        let mut table: HashMap<&Value, Vec<u32>> = HashMap::with_capacity(lrows.len());
        for (i, t) in lrows.iter().enumerate() {
            match t.get(lk) {
                Some(v) if !v.is_null() => table.entry(v).or_default().push(i as u32),
                _ => {}
            }
        }
        for (j, t) in rrows.iter().enumerate() {
            let Some(v) = t.get(rk) else { continue };
            if v.is_null() {
                continue;
            }
            if let Some(matches) = table.get(v) {
                for &i in matches {
                    pairs.push((i, j as u32));
                }
            }
        }
    } else {
        let mut table: HashMap<Vec<&Value>, Vec<u32>> = HashMap::with_capacity(lrows.len());
        'left: for (i, t) in lrows.iter().enumerate() {
            let mut key = Vec::with_capacity(left_keys.len());
            for &k in left_keys {
                match t.get(k) {
                    Some(v) if !v.is_null() => key.push(v),
                    _ => continue 'left,
                }
            }
            table.entry(key).or_default().push(i as u32);
        }
        'right: for (j, t) in rrows.iter().enumerate() {
            let mut key = Vec::with_capacity(right_keys.len());
            for &k in right_keys {
                match t.get(k) {
                    Some(v) if !v.is_null() => key.push(v),
                    _ => continue 'right,
                }
            }
            if let Some(matches) = table.get(&key) {
                for &i in matches {
                    pairs.push((i, j as u32));
                }
            }
        }
    }
    // (left, right) pairs are unique, so the unstable sort is deterministic.
    pairs.sort_unstable();
    pairs
        .into_iter()
        .map(|(i, j)| lrows[i as usize].concat(&rrows[j as usize]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggFunc, CompareOp, Predicate};
    use urm_storage::{Attribute, DataType, Schema};

    /// The Customer relation of Figure 2 in the paper.
    fn figure2_catalog() -> Catalog {
        let schema = Schema::new(
            "Customer",
            vec![
                Attribute::new("cid", DataType::Int),
                Attribute::new("cname", DataType::Text),
                Attribute::new("ophone", DataType::Text),
                Attribute::new("hphone", DataType::Text),
                Attribute::new("oaddr", DataType::Text),
                Attribute::new("haddr", DataType::Text),
            ],
        );
        let rows = vec![
            Tuple::new(vec![
                Value::from(1i64),
                Value::from("Alice"),
                Value::from("123"),
                Value::from("789"),
                Value::from("aaa"),
                Value::from("hk"),
            ]),
            Tuple::new(vec![
                Value::from(2i64),
                Value::from("Bob"),
                Value::from("456"),
                Value::from("123"),
                Value::from("bbb"),
                Value::from("hk"),
            ]),
            Tuple::new(vec![
                Value::from(3i64),
                Value::from("Cindy"),
                Value::from("456"),
                Value::from("789"),
                Value::from("aaa"),
                Value::from("aaa"),
            ]),
        ];
        let customer = Relation::new(schema, rows).unwrap();

        let order_schema = Schema::new(
            "C_Order",
            vec![
                Attribute::new("oid", DataType::Int),
                Attribute::new("cid", DataType::Int),
                Attribute::new("amount", DataType::Float),
            ],
        );
        let orders = Relation::new(
            order_schema,
            vec![
                Tuple::new(vec![
                    Value::from(10i64),
                    Value::from(1i64),
                    Value::from(99.5),
                ]),
                Tuple::new(vec![
                    Value::from(11i64),
                    Value::from(3i64),
                    Value::from(12.0),
                ]),
            ],
        )
        .unwrap();

        let mut cat = Catalog::new();
        cat.insert(customer);
        cat.insert(orders);
        cat
    }

    #[test]
    fn select_on_figure2_matches_paper_example() {
        // π_{ophone} σ_{oaddr='aaa'} Customer  →  {123, 456} (the paper's m1 reformulation).
        let cat = figure2_catalog();
        let plan = Plan::scan("Customer")
            .select(Predicate::eq("Customer.oaddr", Value::from("aaa")))
            .project(vec!["Customer.ophone".into()]);
        let mut exec = Executor::new(&cat);
        let out = exec.run(&plan).unwrap();
        let phones: Vec<_> = out
            .iter()
            .map(|t| t.get(0).unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(phones, vec!["123", "456"]);
        assert_eq!(exec.stats().source_queries, 1);
        assert_eq!(exec.stats().operators_executed, 2);
        assert_eq!(exec.stats().scans, 1);
    }

    #[test]
    fn select_with_haddr_matches_other_mapping() {
        // π_{ophone} σ_{haddr='aaa'} Customer  →  {456} (the paper's m3 reformulation).
        let cat = figure2_catalog();
        let plan = Plan::scan("Customer")
            .select(Predicate::eq("Customer.haddr", Value::from("aaa")))
            .project(vec!["Customer.ophone".into()]);
        let out = Executor::new(&cat).run(&plan).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0].get(0), Some(&Value::from("456")));
    }

    #[test]
    fn comparison_operators_work_end_to_end() {
        let cat = figure2_catalog();
        let plan = Plan::scan("C_Order").select(Predicate::compare(
            "C_Order.amount",
            CompareOp::Gt,
            Value::from(50.0),
        ));
        let out = Executor::new(&cat).run(&plan).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn product_produces_all_pairs() {
        let cat = figure2_catalog();
        let plan = Plan::scan("Customer").product(Plan::scan("C_Order"));
        let out = Executor::new(&cat).run(&plan).unwrap();
        assert_eq!(out.len(), 3 * 2);
        assert_eq!(out.schema().arity(), 6 + 3);
    }

    #[test]
    fn hash_join_matches_product_plus_selection() {
        let cat = figure2_catalog();
        let join = Plan::scan("Customer").hash_join(
            Plan::scan("C_Order"),
            vec![("Customer.cid".into(), "C_Order.cid".into())],
        );
        let product = Plan::scan("Customer")
            .product(Plan::scan("C_Order"))
            .select(Predicate::column_eq("Customer.cid", "C_Order.cid"));
        let a = Executor::new(&cat).run(&join).unwrap();
        let b = Executor::new(&cat).run(&product).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 2);
        use std::collections::HashSet;
        let rows_a: HashSet<_> = a.rows().iter().cloned().collect();
        let rows_b: HashSet<_> = b.rows().iter().cloned().collect();
        assert_eq!(rows_a, rows_b);
    }

    #[test]
    fn hash_join_with_swapped_columns() {
        let cat = figure2_catalog();
        let join = Plan::scan("Customer").hash_join(
            Plan::scan("C_Order"),
            vec![("C_Order.cid".into(), "Customer.cid".into())],
        );
        let out = Executor::new(&cat).run(&join).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn hash_join_with_no_conditions_is_a_product() {
        let cat = figure2_catalog();
        let join = Plan::scan("Customer").hash_join(Plan::scan("C_Order"), vec![]);
        let out = Executor::new(&cat).run(&join).unwrap();
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn multi_key_hash_join_requires_all_keys_equal() {
        let cat = figure2_catalog();
        // Join Customer to itself on (cid, cname): only identical rows pair up.
        let join = Plan::scan("Customer").hash_join(
            Plan::scan_as("Customer", "C2"),
            vec![
                ("Customer.cid".into(), "C2.cid".into()),
                ("Customer.cname".into(), "C2.cname".into()),
            ],
        );
        let out = Executor::new(&cat).run(&join).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn count_and_sum_aggregates() {
        let cat = figure2_catalog();
        let count = Plan::scan("Customer").aggregate(AggFunc::Count);
        let out = Executor::new(&cat).run(&count).unwrap();
        assert_eq!(out.rows()[0].get(0), Some(&Value::from(3i64)));

        let sum = Plan::scan("C_Order").aggregate(AggFunc::Sum("C_Order.amount".into()));
        let out = Executor::new(&cat).run(&sum).unwrap();
        assert_eq!(out.rows()[0].get(0), Some(&Value::from(111.5)));
    }

    #[test]
    fn sum_over_text_column_is_an_error() {
        let cat = figure2_catalog();
        let plan = Plan::scan("Customer").aggregate(AggFunc::Sum("Customer.cname".into()));
        let err = Executor::new(&cat).run(&plan).unwrap_err();
        assert!(matches!(err, EngineError::InvalidAggregate { .. }));
    }

    #[test]
    fn values_plan_returns_the_relation() {
        let cat = figure2_catalog();
        let base = cat.get("Customer").unwrap();
        let plan = Plan::values(base.as_ref().clone());
        let out = Executor::new(&cat).run(&plan).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn projection_of_unknown_column_fails() {
        let cat = figure2_catalog();
        let plan = Plan::scan("Customer").project(vec!["Customer.ghost".into()]);
        assert!(matches!(
            Executor::new(&cat).run(&plan),
            Err(EngineError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn empty_projection_fails() {
        let cat = figure2_catalog();
        let plan = Plan::scan("Customer").project(vec![]);
        assert!(matches!(
            Executor::new(&cat).run(&plan),
            Err(EngineError::InvalidPlan(_))
        ));
    }

    #[test]
    fn run_operator_does_not_count_a_source_query() {
        let cat = figure2_catalog();
        let mut exec = Executor::new(&cat);
        exec.run_operator(&Plan::scan("Customer")).unwrap();
        assert_eq!(exec.stats().source_queries, 0);
        assert_eq!(exec.stats().scans, 1);
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let cat = figure2_catalog();
        let mut exec = Executor::new(&cat);
        exec.run(&Plan::scan("Customer")).unwrap();
        exec.run(&Plan::scan("C_Order")).unwrap();
        assert_eq!(exec.stats().source_queries, 2);
        assert_eq!(exec.stats().scans, 2);
        exec.reset_stats();
        assert_eq!(exec.stats().source_queries, 0);
    }

    #[test]
    fn aggregate_over_empty_input_returns_zero() {
        let cat = figure2_catalog();
        let plan = Plan::scan("Customer")
            .select(Predicate::eq("Customer.oaddr", Value::from("nowhere")))
            .aggregate(AggFunc::Count);
        let out = Executor::new(&cat).run(&plan).unwrap();
        assert_eq!(out.rows()[0].get(0), Some(&Value::from(0i64)));
    }

    #[test]
    fn scans_share_the_base_row_buffer() {
        let cat = figure2_catalog();
        let mut exec = Executor::new(&cat);
        let out = exec.run(&Plan::scan("Customer")).unwrap();
        assert!(
            out.shares_rows_with(&cat.get("Customer").unwrap()),
            "scan output must be a view of the base relation, not a copy"
        );
        assert_eq!(exec.stats().rows_shared, 3);
    }

    #[test]
    fn values_plans_share_without_copying() {
        let cat = figure2_catalog();
        let base = cat.get("Customer").unwrap();
        let mut exec = Executor::new(&cat);
        let out = exec
            .run_operator_shared(&Plan::values_shared(Arc::clone(&base)))
            .unwrap();
        assert!(
            Arc::ptr_eq(&out, &base),
            "a Values leaf must return the shared relation itself"
        );
    }

    #[test]
    fn bound_execution_matches_run() {
        let cat = figure2_catalog();
        let plan = Plan::scan("Customer")
            .select(Predicate::eq("Customer.oaddr", Value::from("aaa")))
            .project(vec!["Customer.ophone".into()]);
        let mut exec = Executor::new(&cat);
        let physical = exec.bind(&plan).unwrap();
        let via_physical = exec.execute(&physical).unwrap();
        let via_run = Executor::new(&cat).run(&plan).unwrap();
        assert_eq!(via_physical.rows(), via_run.rows());
        assert_eq!(via_physical.schema(), via_run.schema());
        // `execute` does not count a completed source query.
        assert_eq!(exec.stats().source_queries, 0);
        assert_eq!(exec.stats().operators_executed, 2);
    }

    /// A catalog big enough that tiny budgets force the grace path, with duplicate and null
    /// join keys so order preservation is genuinely exercised.
    fn join_catalog() -> Catalog {
        let left = Schema::new(
            "L",
            vec![
                Attribute::new("lid", DataType::Int),
                Attribute::new("lkey", DataType::Int),
                Attribute::new("ltag", DataType::Text),
            ],
        );
        let lrows = (0..120)
            .map(|i| {
                Tuple::new(vec![
                    Value::from(i as i64),
                    if i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::from((i % 17) as i64)
                    },
                    Value::from(format!("l{i}")),
                ])
            })
            .collect();
        let right = Schema::new(
            "R",
            vec![
                Attribute::new("rid", DataType::Int),
                Attribute::new("rkey", DataType::Int),
            ],
        );
        let rrows = (0..90)
            .map(|i| {
                Tuple::new(vec![
                    Value::from(1000 + i as i64),
                    if i % 13 == 0 {
                        Value::Null
                    } else {
                        Value::from((i % 17) as i64)
                    },
                ])
            })
            .collect();
        let mut cat = Catalog::new();
        cat.insert(Relation::new(left, lrows).unwrap());
        cat.insert(Relation::new(right, rrows).unwrap());
        cat
    }

    #[test]
    fn grace_hash_join_is_byte_identical_to_in_memory() {
        let cat = join_catalog();
        let plan =
            Plan::scan("L").hash_join(Plan::scan("R"), vec![("L.lkey".into(), "R.rkey".into())]);
        let reference = Executor::new(&cat).run(&plan).unwrap();
        assert!(reference.len() > 100, "join must produce real fan-out");

        for budget in [0usize, 64, 512] {
            let pool = urm_storage::BufferPool::with_budget(budget);
            let mut exec = Executor::with_pool(&cat, pool.clone());
            let out = exec.run(&plan).unwrap();
            assert_eq!(out.schema(), reference.schema());
            assert_eq!(out.rows(), reference.rows(), "budget {budget} changed rows");
            assert!(
                exec.stats().grace_partitions >= 2,
                "budget {budget} did not take the grace path"
            );
            assert!(pool.stats().bytes_spilled > 0 || budget >= 512);
        }
    }

    #[test]
    fn grace_multi_key_join_matches_in_memory() {
        let cat = join_catalog();
        // Self-join on (lkey, ltag): multi-key path, duplicates included.
        let plan = Plan::scan("L").hash_join(
            Plan::scan_as("L", "L2"),
            vec![
                ("L.lkey".into(), "L2.lkey".into()),
                ("L.ltag".into(), "L2.ltag".into()),
            ],
        );
        let reference = Executor::new(&cat).run(&plan).unwrap();
        let mut exec = Executor::with_pool(&cat, urm_storage::BufferPool::with_budget(0));
        let out = exec.run(&plan).unwrap();
        assert_eq!(out.rows(), reference.rows());
        assert!(exec.stats().grace_partitions >= 2);
    }

    #[test]
    fn unbounded_pool_never_takes_the_grace_path() {
        let cat = join_catalog();
        let plan =
            Plan::scan("L").hash_join(Plan::scan("R"), vec![("L.lkey".into(), "R.rkey".into())]);
        let pool = urm_storage::BufferPool::unbounded();
        let mut exec = Executor::with_pool(&cat, pool.clone());
        let reference = Executor::new(&cat).run(&plan).unwrap();
        assert_eq!(exec.run(&plan).unwrap().rows(), reference.rows());
        assert_eq!(exec.stats().grace_partitions, 0);
        assert_eq!(pool.stats().segments_written, 0, "never-spill fast path");
    }

    #[test]
    fn grace_join_handles_empty_sides() {
        let cat = join_catalog();
        let plan = Plan::scan("L")
            .select(Predicate::eq("L.ltag", Value::from("nope")))
            .hash_join(Plan::scan("R"), vec![("L.lkey".into(), "R.rkey".into())]);
        let mut exec = Executor::with_pool(&cat, urm_storage::BufferPool::with_budget(0));
        let out = exec.run(&plan).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn flipped_hash_join_is_byte_identical() {
        // Duplicate keys (17 distinct values across 120/90 rows) and null key components on
        // both sides: the flipped build must reproduce the canonical output *order* exactly,
        // not just the same multiset.
        let cat = join_catalog();
        let l = cat.get("L").unwrap();
        let r = cat.get("R").unwrap();
        let canonical = hash_join_rows(&l, &r, &[1], &[1]);
        assert!(canonical.len() > 100, "join must produce real fan-out");
        assert_eq!(hash_join_rows_flipped(&l, &r, &[1], &[1]), canonical);

        // Multi-key path (composite keys, nulls dropped per component).
        let canonical = hash_join_rows(&l, &l, &[1, 2], &[1, 2]);
        assert_eq!(hash_join_rows_flipped(&l, &l, &[1, 2], &[1, 2]), canonical);

        // Empty probe side.
        let empty = Relation::from_validated(r.schema().clone(), Vec::new());
        assert!(hash_join_rows_flipped(&l, &empty, &[1], &[1]).is_empty());
    }

    #[test]
    fn build_side_hint_flips_without_changing_the_answer() {
        let cat = join_catalog();
        let plan =
            Plan::scan("L").hash_join(Plan::scan("R"), vec![("L.lkey".into(), "R.rkey".into())]);
        // Columnar off: the both-leaf columnar fast path would otherwise win over the flip,
        // which only applies to the in-memory row join.
        let mut exec = Executor::new(&cat).with_columnar(false);
        let physical = exec.bind(&plan).unwrap();
        let children: Vec<_> = physical
            .children()
            .map(|c| exec.execute(c).unwrap())
            .collect();
        let reference = exec.execute_node(&physical, &children).unwrap();
        let hint = JoinHint {
            build_left: true,
            build_bytes: Some(1),
        };
        let flipped = exec
            .execute_node_hinted(&physical, &children, Some(hint))
            .unwrap();
        assert_eq!(flipped.schema(), reference.schema());
        assert_eq!(flipped.rows(), reference.rows());
    }

    #[test]
    fn grace_retry_after_failed_segment_reads_is_exact() {
        let cat = join_catalog();
        let plan =
            Plan::scan("L").hash_join(Plan::scan("R"), vec![("L.lkey".into(), "R.rkey".into())]);
        let reference = Executor::new(&cat).run(&plan).unwrap();

        // Clean grace run: the spill-accounting baseline.
        let clean_pool = urm_storage::BufferPool::with_budget(0);
        let mut clean = Executor::with_pool(&cat, clean_pool.clone());
        assert_eq!(clean.run(&plan).unwrap().rows(), reference.rows());
        let baseline = clean_pool.stats();
        assert!(baseline.segments_written > 0);

        // Same join with the first cold segment reads failing: the retry re-materialises the
        // partitions from the still-resident inputs instead of re-admitting them through the
        // pool, so the answer stays byte-identical and nothing is spilled (or counted) twice.
        let pool = urm_storage::BufferPool::with_budget(0);
        let mut exec = Executor::with_pool(&cat, pool.clone());
        pool.fail_next_loads(3);
        let out = exec.run(&plan).unwrap();
        assert_eq!(out.rows(), reference.rows());
        let stats = pool.stats();
        assert_eq!(
            stats.bytes_spilled, baseline.bytes_spilled,
            "a read retry must not re-spill"
        );
        assert_eq!(stats.segments_written, baseline.segments_written);
        assert_eq!(
            exec.stats().grace_partitions,
            clean.stats().grace_partitions
        );
    }

    #[test]
    fn execute_node_runs_one_operator_over_given_batches() {
        let cat = figure2_catalog();
        let mut exec = Executor::new(&cat);
        let plan =
            Plan::scan("Customer").select(Predicate::eq("Customer.oaddr", Value::from("aaa")));
        let physical = exec.bind(&plan).unwrap();
        let scan_out = exec.execute(physical.children().next().unwrap()).unwrap();
        let out = exec.execute_node(&physical, &[scan_out]).unwrap();
        assert_eq!(out.len(), 2);
    }
}
