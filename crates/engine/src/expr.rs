//! Predicates, comparison operators and aggregate functions.
//!
//! This is exactly the operator vocabulary the paper's query model needs (Section III-A and the
//! workload of Table III): conjunctions of attribute/constant comparisons, attribute/attribute
//! equality (join conditions), and COUNT / SUM aggregates.

use serde::{Deserialize, Serialize};
use std::fmt;
use urm_storage::{Tuple, Value};

/// Comparison operators for attribute/constant predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// Equality (`=`), the only operator the paper's workload uses, but the rest of the family
    /// is provided for the extension experiments.
    Eq,
    /// Inequality (`<>`).
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CompareOp {
    /// Evaluates the comparison between two values.
    #[must_use]
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CompareOp::Eq => left == right,
            CompareOp::Ne => left != right,
            CompareOp::Lt => left.cmp(right) == Less,
            CompareOp::Le => matches!(left.cmp(right), Less | Equal),
            CompareOp::Gt => left.cmp(right) == Greater,
            CompareOp::Ge => matches!(left.cmp(right), Greater | Equal),
        }
    }

    /// SQL-ish symbol for display.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A boolean predicate over the (qualified) columns of a plan's output schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Predicate {
    /// `column op constant` — e.g. `σ_{telephone = '335-1736'}`.
    Compare {
        /// Qualified column name (`alias.attr`).
        column: String,
        /// Comparison operator.
        op: CompareOp,
        /// Constant to compare against.
        value: Value,
    },
    /// `left = right` between two columns — the join conditions of Q3/Q4.
    ColumnEq {
        /// Left qualified column.
        left: String,
        /// Right qualified column.
        right: String,
    },
    /// Conjunction of predicates.
    And(Vec<Predicate>),
}

impl Predicate {
    /// Convenience constructor for a `column op constant` predicate.
    pub fn compare(column: impl Into<String>, op: CompareOp, value: Value) -> Self {
        Predicate::Compare {
            column: column.into(),
            op,
            value,
        }
    }

    /// Convenience constructor for an equality predicate (`column = constant`).
    pub fn eq(column: impl Into<String>, value: Value) -> Self {
        Predicate::compare(column, CompareOp::Eq, value)
    }

    /// Convenience constructor for a column equality (join) predicate.
    pub fn column_eq(left: impl Into<String>, right: impl Into<String>) -> Self {
        Predicate::ColumnEq {
            left: left.into(),
            right: right.into(),
        }
    }

    /// All columns referenced by the predicate.
    #[must_use]
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::Compare { column, .. } => out.push(column),
            Predicate::ColumnEq { left, right } => {
                out.push(left);
                out.push(right);
            }
            Predicate::And(parts) => {
                for p in parts {
                    p.collect_columns(out);
                }
            }
        }
    }

    /// Evaluates the predicate against a tuple, given a resolver from column name to position.
    ///
    /// Missing columns evaluate to `false` (a reformulated predicate over an attribute a partial
    /// mapping did not cover can never be satisfied).
    pub fn eval(&self, tuple: &Tuple, resolve: &impl Fn(&str) -> Option<usize>) -> bool {
        match self {
            Predicate::Compare { column, op, value } => match resolve(column) {
                Some(pos) => tuple
                    .get(pos)
                    .map(|v| !v.is_null() && op.eval(v, value))
                    .unwrap_or(false),
                None => false,
            },
            Predicate::ColumnEq { left, right } => match (resolve(left), resolve(right)) {
                (Some(l), Some(r)) => match (tuple.get(l), tuple.get(r)) {
                    (Some(a), Some(b)) => !a.is_null() && !b.is_null() && a == b,
                    _ => false,
                },
                _ => false,
            },
            Predicate::And(parts) => parts.iter().all(|p| p.eval(tuple, resolve)),
        }
    }

    /// Flattens nested conjunctions into a list of atomic predicates.
    #[must_use]
    pub fn flatten(self) -> Vec<Predicate> {
        match self {
            Predicate::And(parts) => parts.into_iter().flat_map(Predicate::flatten).collect(),
            other => vec![other],
        }
    }

    /// Builds a conjunction from a list of predicates, simplifying the singleton case.
    #[must_use]
    pub fn conjunction(mut parts: Vec<Predicate>) -> Predicate {
        if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Predicate::And(parts)
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Compare { column, op, value } => write!(f, "{column} {op} {value}"),
            Predicate::ColumnEq { left, right } => write!(f, "{left} = {right}"),
            Predicate::And(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
        }
    }
}

/// Aggregate functions of the paper's query model (COUNT and SUM).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)` over the input relation.
    Count,
    /// `SUM(column)` over the input relation.
    Sum(String),
}

impl AggFunc {
    /// Name of the function for display and error messages.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum(_) => "SUM",
        }
    }

    /// The column the aggregate reads, if any.
    #[must_use]
    pub fn column(&self) -> Option<&str> {
        match self {
            AggFunc::Count => None,
            AggFunc::Sum(c) => Some(c),
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::Count => f.write_str("COUNT(*)"),
            AggFunc::Sum(c) => write!(f, "SUM({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolver(names: &'static [&'static str]) -> impl Fn(&str) -> Option<usize> {
        move |c: &str| names.iter().position(|n| *n == c)
    }

    #[test]
    fn compare_ops_follow_value_order() {
        let two = Value::from(2i64);
        let three = Value::from(3i64);
        assert!(CompareOp::Lt.eval(&two, &three));
        assert!(CompareOp::Le.eval(&two, &two));
        assert!(CompareOp::Gt.eval(&three, &two));
        assert!(CompareOp::Ge.eval(&three, &three));
        assert!(CompareOp::Ne.eval(&two, &three));
        assert!(CompareOp::Eq.eval(&two, &two));
    }

    #[test]
    fn predicate_eval_compare() {
        let t = Tuple::new(vec![Value::from("aaa"), Value::from(5i64)]);
        let r = resolver(&["addr", "qty"]);
        assert!(Predicate::eq("addr", Value::from("aaa")).eval(&t, &r));
        assert!(!Predicate::eq("addr", Value::from("bbb")).eval(&t, &r));
        assert!(Predicate::compare("qty", CompareOp::Gt, Value::from(4i64)).eval(&t, &r));
    }

    #[test]
    fn predicate_missing_column_is_false() {
        let t = Tuple::new(vec![Value::from("aaa")]);
        let r = resolver(&["addr"]);
        assert!(!Predicate::eq("ghost", Value::from("aaa")).eval(&t, &r));
        assert!(!Predicate::column_eq("addr", "ghost").eval(&t, &r));
    }

    #[test]
    fn predicate_nulls_never_match() {
        let t = Tuple::new(vec![Value::Null, Value::Null]);
        let r = resolver(&["a", "b"]);
        assert!(!Predicate::eq("a", Value::Null).eval(&t, &r));
        assert!(!Predicate::column_eq("a", "b").eval(&t, &r));
    }

    #[test]
    fn column_eq_matches_equal_values() {
        let t = Tuple::new(vec![
            Value::from(7i64),
            Value::from(7i64),
            Value::from(8i64),
        ]);
        let r = resolver(&["x", "y", "z"]);
        assert!(Predicate::column_eq("x", "y").eval(&t, &r));
        assert!(!Predicate::column_eq("x", "z").eval(&t, &r));
    }

    #[test]
    fn and_requires_all_parts() {
        let t = Tuple::new(vec![Value::from("aaa"), Value::from(5i64)]);
        let r = resolver(&["addr", "qty"]);
        let p = Predicate::And(vec![
            Predicate::eq("addr", Value::from("aaa")),
            Predicate::eq("qty", Value::from(5i64)),
        ]);
        assert!(p.eval(&t, &r));
        let p2 = Predicate::And(vec![
            Predicate::eq("addr", Value::from("aaa")),
            Predicate::eq("qty", Value::from(6i64)),
        ]);
        assert!(!p2.eval(&t, &r));
    }

    #[test]
    fn flatten_and_conjunction_roundtrip() {
        let p = Predicate::And(vec![
            Predicate::eq("a", Value::from(1i64)),
            Predicate::And(vec![
                Predicate::eq("b", Value::from(2i64)),
                Predicate::column_eq("c", "d"),
            ]),
        ]);
        let flat = p.flatten();
        assert_eq!(flat.len(), 3);
        let rebuilt = Predicate::conjunction(flat);
        assert!(matches!(rebuilt, Predicate::And(ref v) if v.len() == 3));
        let single = Predicate::conjunction(vec![Predicate::eq("x", Value::from(0i64))]);
        assert!(matches!(single, Predicate::Compare { .. }));
    }

    #[test]
    fn columns_lists_every_reference() {
        let p = Predicate::And(vec![
            Predicate::eq("a", Value::from(1i64)),
            Predicate::column_eq("b", "c"),
        ]);
        assert_eq!(p.columns(), vec!["a", "b", "c"]);
    }

    #[test]
    fn display_is_readable() {
        let p = Predicate::And(vec![
            Predicate::eq("PO.telephone", Value::from("335-1736")),
            Predicate::column_eq("PO.orderNum", "Item.orderNum"),
        ]);
        let s = p.to_string();
        assert!(s.contains("PO.telephone = 335-1736"));
        assert!(s.contains(" AND "));
        assert_eq!(AggFunc::Count.to_string(), "COUNT(*)");
        assert_eq!(
            AggFunc::Sum("Item.price".into()).to_string(),
            "SUM(Item.price)"
        );
    }

    #[test]
    fn aggregate_metadata() {
        assert_eq!(AggFunc::Count.column(), None);
        assert_eq!(AggFunc::Sum("x".into()).column(), Some("x"));
        assert_eq!(AggFunc::Count.name(), "COUNT");
        assert_eq!(AggFunc::Sum("x".into()).name(), "SUM");
    }
}
