//! Error types for the query engine.

use std::fmt;
use urm_storage::StorageError;

/// Result alias used throughout the engine crate.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors raised while planning or executing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A storage-level error (unknown relation, arity mismatch, …).
    Storage(StorageError),
    /// A column referenced by a predicate, projection or aggregate is not in the input schema.
    UnknownColumn {
        /// The missing column (qualified `alias.attr` form).
        column: String,
        /// The schema that was searched, rendered for diagnostics.
        schema: String,
    },
    /// An aggregate was applied to a column whose type does not support it.
    InvalidAggregate {
        /// The aggregate function name.
        func: &'static str,
        /// The offending column.
        column: String,
    },
    /// A plan is malformed (e.g. a projection with no columns).
    InvalidPlan(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::UnknownColumn { column, schema } => {
                write!(f, "unknown column '{column}' in schema {schema}")
            }
            EngineError::InvalidAggregate { func, column } => {
                write!(f, "aggregate {func} cannot be applied to column '{column}'")
            }
            EngineError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let err = EngineError::UnknownColumn {
            column: "PO.price".into(),
            schema: "Item(x, y)".into(),
        };
        assert!(err.to_string().contains("PO.price"));

        let err = EngineError::InvalidAggregate {
            func: "SUM",
            column: "name".into(),
        };
        assert!(err.to_string().contains("SUM"));
    }

    #[test]
    fn storage_errors_convert() {
        let err: EngineError = StorageError::UnknownRelation("R".into()).into();
        assert!(matches!(err, EngineError::Storage(_)));
        assert!(std::error::Error::source(&err).is_some());
    }
}
