//! Vectorized operator kernels over columnar batches driven by selection vectors.
//!
//! The row executor evaluates every operator tuple-at-a-time, matching on the
//! [`Value`](urm_storage::Value) enum once per cell.  This module provides the columnar
//! alternative: a [`Batch`] is either a shared row relation (the interchange format) or a set
//! of typed [`Column`]s plus an optional *selection vector* — the indices of the rows that are
//! logically present.  Predicates evaluate column-at-a-time into a refined selection without
//! materialising a single tuple; hash joins build and probe raw key columns (`i64`, `f64`
//! bits, dictionary codes) and emit gather lists; aggregates fold flat vectors.  Rows are only
//! reconstructed when a batch leaves the columnar pipeline (the query result, or an operator
//! that has to fall back to the row implementation).
//!
//! ## Fidelity
//!
//! Everything here is held to *byte identity* with the row path — same output values, same
//! row order, same error behaviour, same [`ExecStats`](crate::ExecStats) accounting — which
//! pins down several subtleties:
//!
//! * `Value` comparison semantics are reproduced exactly: `Int`/`Int` compares as `i64`,
//!   `Float` (and `Int`/`Float`) through `f64::total_cmp` — under which equality is bit
//!   equality, so float join keys can be hashed by bit pattern — and cross-variant
//!   comparisons through the variant rank, which the kernels resolve once per column, not
//!   once per row.
//! * Null join keys and null predicate operands never match, exactly as the row operators
//!   drop them.
//! * SUM folds `f64`s in logical row order — float addition is not associative, and the row
//!   path defines the order.
//! * Join outputs are emitted probe-row-major (left order, then build order within a key),
//!   matching the row hash join.

use crate::physical::BoundPredicate;
use crate::CompareOp;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;
use urm_storage::{Column, Relation, Schema, Tuple, Value};

/// A batch flowing between vectorized operators: columnar when the data entered through a
/// converted leaf, rows when an operator had to fall back to the row implementation.
#[derive(Debug, Clone)]
pub enum Batch {
    /// Typed columns plus an optional selection vector.
    Cols(ColsBatch),
    /// A materialised row relation (fallback interchange).
    Rows(Arc<Relation>),
}

/// The columnar half of [`Batch`]: positional columns over a shared physical buffer, with the
/// logically-present rows described by `sel` (`None` = all rows, in order).
#[derive(Debug, Clone)]
pub struct ColsBatch {
    /// Physical columns; every column has `physical_len` slots.
    columns: Vec<Arc<Column>>,
    /// Selection vector: logical row `j` lives at physical slot `sel[j]`.  `None` means the
    /// identity selection over `0..physical_len`.
    sel: Option<Arc<Vec<u32>>>,
    /// Number of physical rows in each column.
    physical_len: usize,
    /// The row-form relation backing the columns, when the batch is still an (optionally
    /// filtered) view of a converted leaf.  Lets materialisation clone original tuples —
    /// and lets an unfiltered leaf at the root hand back the shared view, exactly like the
    /// row path's zero-copy scans.
    rows: Option<Arc<Relation>>,
}

impl Batch {
    /// A columnar batch over a converted leaf relation: full selection, row view retained.
    #[must_use]
    pub fn from_leaf(columns: Vec<Arc<Column>>, rel: Arc<Relation>) -> Batch {
        Batch::Cols(ColsBatch::from_leaf(columns, rel))
    }

    /// Number of logical rows.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Batch::Cols(c) => c.len(),
            Batch::Rows(r) => r.len(),
        }
    }

    /// Whether the batch has no logical rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises the batch as a row relation under `schema`.
    ///
    /// An unfiltered leaf batch hands back its shared row view (pointer bump); a filtered
    /// leaf clones the selected original tuples; a computed batch reconstructs tuples from
    /// its columns.  All three produce values bit-identical to the row path.
    #[must_use]
    pub fn materialize(&self, schema: &Schema) -> Arc<Relation> {
        match self {
            Batch::Rows(rel) => Arc::clone(rel),
            Batch::Cols(c) => match (&c.rows, &c.sel) {
                (Some(rel), None) => Arc::clone(rel),
                (Some(rel), Some(sel)) => {
                    let rows = rel.rows();
                    let picked: Vec<Tuple> =
                        sel.iter().map(|&i| rows[i as usize].clone()).collect();
                    Arc::new(Relation::from_validated(schema.clone(), picked))
                }
                (None, _) => {
                    let tuples: Vec<Tuple> = c
                        .logical_indices()
                        .map(|i| {
                            Tuple::new(
                                c.columns
                                    .iter()
                                    .map(|col| col.value_at(i as usize))
                                    .collect(),
                            )
                        })
                        .collect();
                    Arc::new(Relation::from_validated(schema.clone(), tuples))
                }
            },
        }
    }
}

impl ColsBatch {
    /// A columnar batch over a converted leaf relation: full selection, row view retained.
    #[must_use]
    pub fn from_leaf(columns: Vec<Arc<Column>>, rel: Arc<Relation>) -> ColsBatch {
        ColsBatch {
            physical_len: rel.len(),
            columns,
            sel: None,
            rows: Some(rel),
        }
    }

    /// Number of logical rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sel.as_ref().map_or(self.physical_len, |s| s.len())
    }

    /// Whether the batch has no logical rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The physical slot indices of the logical rows, in logical order.
    fn logical_indices(&self) -> impl Iterator<Item = u32> + '_ {
        let (sel, n) = match &self.sel {
            Some(s) => (Some(s.as_slice()), 0),
            None => (None, self.physical_len as u32),
        };
        sel.map_or(0..n, |_| 0..0)
            .chain(sel.into_iter().flatten().copied())
    }

    /// The physical slot indices as an owned vector (kernel candidate lists).
    fn candidate_indices(&self) -> Vec<u32> {
        match &self.sel {
            Some(s) => s.as_ref().clone(),
            None => (0..self.physical_len as u32).collect(),
        }
    }

    /// The column at `pos`, if the batch is wide enough.
    fn column(&self, pos: usize) -> Option<&Column> {
        self.columns.get(pos).map(Arc::as_ref)
    }

    /// Applies a compiled predicate, producing a batch with a refined selection vector.
    /// Output length equals the number of logically-present rows that satisfy the predicate;
    /// column storage and the backing row view are shared untouched.
    #[must_use]
    pub fn filter(&self, predicate: &BoundPredicate) -> ColsBatch {
        let survivors = refine(predicate, &self.columns, self.candidate_indices());
        ColsBatch {
            columns: self.columns.clone(),
            sel: Some(Arc::new(survivors)),
            physical_len: self.physical_len,
            rows: self.rows.clone(),
        }
    }

    /// Keeps the columns at `positions`, in that order (selection preserved, row view
    /// dropped — the columns no longer line up with the backing tuples).
    #[must_use]
    pub fn project(&self, positions: &[usize]) -> ColsBatch {
        let columns = positions
            .iter()
            .map(|&p| {
                self.columns.get(p).map_or_else(
                    // A position past the batch's arity can only arise from malformed
                    // tuples; reproduce "missing cell" as an all-null column.
                    || Arc::new(Column::from_values(vec![Value::Null; self.physical_len], 0)),
                    Arc::clone,
                )
            })
            .collect();
        ColsBatch {
            columns,
            sel: self.sel.clone(),
            physical_len: self.physical_len,
            rows: None,
        }
    }

    /// Cartesian product: every logical left row paired with every logical right row, left
    /// row major — the row path's nested-loop order.
    #[must_use]
    pub fn product(&self, right: &ColsBatch) -> ColsBatch {
        let ln = self.len();
        let rn = right.len();
        let mut lsel = Vec::with_capacity(ln * rn);
        let mut rsel = Vec::with_capacity(ln * rn);
        let rphys: Vec<u32> = right.candidate_indices();
        for li in self.logical_indices() {
            for &ri in &rphys {
                lsel.push(li);
                rsel.push(ri);
            }
        }
        gather_pair(self, right, &lsel, &rsel)
    }

    /// Hash equi-join on positional key pairs, build side right, probe side left — output
    /// rows in probe order (then build order within a key), null keys dropped, exactly like
    /// the row hash join.
    #[must_use]
    pub fn hash_join(
        &self,
        right: &ColsBatch,
        left_keys: &[usize],
        right_keys: &[usize],
    ) -> ColsBatch {
        let (lsel, rsel) = if left_keys.len() == 1 {
            join_single_key(self, right, left_keys[0], right_keys[0])
        } else {
            join_multi_key(self, right, left_keys, right_keys)
        };
        gather_pair(self, right, &lsel, &rsel)
    }

    /// COUNT(*) over the logical rows.
    #[must_use]
    pub fn count(&self) -> i64 {
        self.len() as i64
    }

    /// SUM over column `pos`, folding in logical row order (float addition is
    /// order-sensitive; the row path defines the order).  Nulls and missing cells are
    /// skipped; a non-numeric value aborts with `None`, reported by the caller as the row
    /// path's `InvalidAggregate`.
    #[must_use]
    pub fn sum(&self, pos: usize) -> Option<f64> {
        let Some(col) = self.column(pos) else {
            return Some(0.0);
        };
        let mut sum = 0.0f64;
        match col {
            Column::Int { values, nulls } => {
                for i in self.logical_indices() {
                    if !nulls.as_ref().is_some_and(|b| b.is_null(i as usize)) {
                        sum += values[i as usize] as f64;
                    }
                }
            }
            Column::Float { values, nulls } => {
                for i in self.logical_indices() {
                    if !nulls.as_ref().is_some_and(|b| b.is_null(i as usize)) {
                        sum += values[i as usize];
                    }
                }
            }
            Column::Bool { nulls, .. } | Column::Text { nulls, .. } => {
                // Any logically-present non-null value is non-numeric: the row path errors.
                for i in self.logical_indices() {
                    if !nulls.as_ref().is_some_and(|b| b.is_null(i as usize)) {
                        return None;
                    }
                }
            }
            Column::Mixed(values) => {
                for i in self.logical_indices() {
                    match &values[i as usize] {
                        Value::Null => {}
                        v => sum += v.as_f64()?,
                    }
                }
            }
        }
        Some(sum)
    }
}

/// Builds the joined/product output batch: left columns gathered by `lsel`, right columns by
/// `rsel`, concatenated.  Both gather lists are physical indices of equal length.
fn gather_pair(left: &ColsBatch, right: &ColsBatch, lsel: &[u32], rsel: &[u32]) -> ColsBatch {
    debug_assert_eq!(lsel.len(), rsel.len());
    let columns = left
        .columns
        .iter()
        .map(|c| Arc::new(c.gather(lsel)))
        .chain(right.columns.iter().map(|c| Arc::new(c.gather(rsel))))
        .collect();
    ColsBatch {
        columns,
        sel: None,
        physical_len: lsel.len(),
        rows: None,
    }
}

// ---------------------------------------------------------------------------
// Predicate kernels
// ---------------------------------------------------------------------------

/// Refines a candidate list through a compiled predicate, one column-at-a-time pass per
/// atomic comparison.  Candidates are physical indices in logical order; survivors keep that
/// order.
fn refine(predicate: &BoundPredicate, columns: &[Arc<Column>], candidates: Vec<u32>) -> Vec<u32> {
    match predicate {
        BoundPredicate::Never => Vec::new(),
        BoundPredicate::And(parts) => parts
            .iter()
            .fold(candidates, |cands, p| refine(p, columns, cands)),
        BoundPredicate::Compare { pos, op, value } => match columns.get(*pos) {
            Some(col) => compare_kernel(col, *op, value, &candidates),
            // A missing cell never satisfies a predicate (row path: `tuple.get` → `None`).
            None => Vec::new(),
        },
        BoundPredicate::ColumnEq { left, right } => {
            match (columns.get(*left), columns.get(*right)) {
                (Some(a), Some(b)) => column_eq_kernel(a, b, &candidates),
                _ => Vec::new(),
            }
        }
    }
}

/// Whether `op` accepts an ordering result — the single place the six comparison operators
/// are translated, shared by every typed kernel.
#[inline]
fn accepts(op: CompareOp, ord: Ordering) -> bool {
    match op {
        CompareOp::Eq => ord == Ordering::Equal,
        CompareOp::Ne => ord != Ordering::Equal,
        CompareOp::Lt => ord == Ordering::Less,
        CompareOp::Le => ord != Ordering::Greater,
        CompareOp::Gt => ord == Ordering::Greater,
        CompareOp::Ge => ord != Ordering::Less,
    }
}

/// The shared survivor loop of the typed compare kernels: generic over the per-row verdict
/// so each typed instantiation monomorphises into a flat, inlinable loop (a `dyn` callback
/// here costs an indirect call per candidate row — measurable on selection-heavy plans).
#[inline]
fn keep_valid<F: Fn(usize) -> bool>(
    cands: &[u32],
    nulls: Option<&urm_storage::NullBitmap>,
    decide: F,
) -> Vec<u32> {
    cands
        .iter()
        .copied()
        .filter(|&i| {
            let i = i as usize;
            !nulls.is_some_and(|b| b.is_null(i)) && decide(i)
        })
        .collect()
}

/// `column op constant` over a candidate list.  Typed columns compare through flat vectors;
/// comparisons whose outcome depends only on the variants (a text column against an int
/// constant, say) are resolved once for the whole column via `Value`'s variant ranking.
fn compare_kernel(col: &Column, op: CompareOp, constant: &Value, cands: &[u32]) -> Vec<u32> {
    match (col, constant) {
        (Column::Int { values, nulls }, Value::Int(c)) => {
            keep_valid(cands, nulls.as_ref(), |i| accepts(op, values[i].cmp(c)))
        }
        (Column::Int { values, nulls }, Value::Float(c)) => {
            keep_valid(cands, nulls.as_ref(), |i| {
                accepts(op, (values[i] as f64).total_cmp(c))
            })
        }
        (Column::Float { values, nulls }, Value::Float(c)) => {
            keep_valid(cands, nulls.as_ref(), |i| {
                accepts(op, values[i].total_cmp(c))
            })
        }
        (Column::Float { values, nulls }, Value::Int(c)) => {
            keep_valid(cands, nulls.as_ref(), |i| {
                accepts(op, values[i].total_cmp(&(*c as f64)))
            })
        }
        (Column::Bool { values, nulls }, Value::Bool(c)) => {
            keep_valid(cands, nulls.as_ref(), |i| accepts(op, values[i].cmp(c)))
        }
        (Column::Text { codes, dict, nulls }, Value::Text(s)) => {
            // One comparison per *distinct* string, then a table lookup per row.
            let table: Vec<bool> = dict
                .entries()
                .iter()
                .map(|e| accepts(op, e.as_ref().cmp(s.as_ref())))
                .collect();
            keep_valid(cands, nulls.as_ref(), |i| table[codes[i] as usize])
        }
        (Column::Mixed(values), _) => cands
            .iter()
            .copied()
            .filter(|&i| {
                let v = &values[i as usize];
                !v.is_null() && op.eval(v, constant)
            })
            .collect(),
        // Cross-variant (and null-constant) comparisons depend only on the variants, so the
        // verdict is one comparison for the whole column, applied to its non-null rows.
        (col, constant) => {
            let verdict = op.eval(&kind_representative(col), constant);
            if !verdict {
                return Vec::new();
            }
            match col {
                Column::Int { nulls, .. }
                | Column::Float { nulls, .. }
                | Column::Bool { nulls, .. }
                | Column::Text { nulls, .. } => keep_valid(cands, nulls.as_ref(), |_| true),
                Column::Mixed(_) => unreachable!("mixed columns matched above"),
            }
        }
    }
}

/// A representative non-null value of a typed column's variant, for comparisons whose
/// outcome is payload-independent (cross-variant ranking).
fn kind_representative(col: &Column) -> Value {
    match col {
        Column::Int { .. } => Value::Int(0),
        Column::Float { .. } => Value::Float(0.0),
        Column::Bool { .. } => Value::Bool(false),
        Column::Text { .. } => Value::text(""),
        Column::Mixed(_) => unreachable!("mixed columns take the generic kernel"),
    }
}

/// `input[left] = input[right]` over a candidate list.
fn column_eq_kernel(a: &Column, b: &Column, cands: &[u32]) -> Vec<u32> {
    // Generic (monomorphised) survivor loop — see `keep_valid` for why not `dyn`.
    #[inline]
    fn keep<F: Fn(usize) -> bool>(a: &Column, b: &Column, cands: &[u32], decide: F) -> Vec<u32> {
        cands
            .iter()
            .copied()
            .filter(|&i| {
                let i = i as usize;
                !a.is_null(i) && !b.is_null(i) && decide(i)
            })
            .collect()
    }
    match (a, b) {
        (Column::Int { values: av, .. }, Column::Int { values: bv, .. }) => {
            keep(a, b, cands, |i| av[i] == bv[i])
        }
        (Column::Float { values: av, .. }, Column::Float { values: bv, .. }) => {
            keep(a, b, cands, |i| av[i].total_cmp(&bv[i]) == Ordering::Equal)
        }
        (Column::Int { values: av, .. }, Column::Float { values: bv, .. }) => {
            keep(a, b, cands, |i| {
                (av[i] as f64).total_cmp(&bv[i]) == Ordering::Equal
            })
        }
        (Column::Float { values: av, .. }, Column::Int { values: bv, .. }) => {
            keep(a, b, cands, |i| {
                av[i].total_cmp(&(bv[i] as f64)) == Ordering::Equal
            })
        }
        (Column::Bool { values: av, .. }, Column::Bool { values: bv, .. }) => {
            keep(a, b, cands, |i| av[i] == bv[i])
        }
        (
            Column::Text {
                codes: ac,
                dict: ad,
                ..
            },
            Column::Text {
                codes: bc,
                dict: bd,
                ..
            },
        ) => {
            if Arc::ptr_eq(ad, bd) {
                keep(a, b, cands, |i| ac[i] == bc[i])
            } else {
                keep(a, b, cands, |i| {
                    ad.get(ac[i]).map(Arc::as_ref) == bd.get(bc[i]).map(Arc::as_ref)
                })
            }
        }
        (Column::Mixed(_), _) | (_, Column::Mixed(_)) => {
            keep(a, b, cands, |i| a.value_at(i) == b.value_at(i))
        }
        // Remaining typed pairs are cross-variant and non-numeric: never equal.
        _ => Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// Join kernels
// ---------------------------------------------------------------------------

/// Single-key hash join over typed key columns.  Emits paired physical gather lists in the
/// row path's output order: probe (left) logical order, build (right) logical order within
/// a key.
fn join_single_key(
    left: &ColsBatch,
    right: &ColsBatch,
    lk: usize,
    rk: usize,
) -> (Vec<u32>, Vec<u32>) {
    let (Some(lcol), Some(rcol)) = (left.column(lk), right.column(rk)) else {
        return (Vec::new(), Vec::new());
    };
    // Typed fast paths keyed by raw column data.  `Value` equality makes Int/Int exact `i64`
    // equality but Int/Float (and Float/Float) *total-order* equality, which is f64 bit
    // equality — so numeric cross-type joins key by the bit pattern of the value as f64,
    // while Int/Int keys by the integer itself (2^53-safe).
    match (lcol, rcol) {
        (
            Column::Int {
                values: lv,
                nulls: ln,
            },
            Column::Int {
                values: rv,
                nulls: rn,
            },
        ) => join_typed(
            left,
            right,
            |i| key_of(lv, ln.as_ref(), i),
            |i| key_of(rv, rn.as_ref(), i),
        ),
        (
            Column::Float {
                values: lv,
                nulls: ln,
            },
            Column::Float {
                values: rv,
                nulls: rn,
            },
        ) => join_typed(
            left,
            right,
            |i| key_of_map(lv, ln.as_ref(), i, |v| v.to_bits()),
            |i| key_of_map(rv, rn.as_ref(), i, |v| v.to_bits()),
        ),
        (
            Column::Int {
                values: lv,
                nulls: ln,
            },
            Column::Float {
                values: rv,
                nulls: rn,
            },
        ) => join_typed(
            left,
            right,
            |i| key_of_map(lv, ln.as_ref(), i, |v| (v as f64).to_bits()),
            |i| key_of_map(rv, rn.as_ref(), i, |v| v.to_bits()),
        ),
        (
            Column::Float {
                values: lv,
                nulls: ln,
            },
            Column::Int {
                values: rv,
                nulls: rn,
            },
        ) => join_typed(
            left,
            right,
            |i| key_of_map(lv, ln.as_ref(), i, |v| v.to_bits()),
            |i| key_of_map(rv, rn.as_ref(), i, |v| (v as f64).to_bits()),
        ),
        (
            Column::Bool {
                values: lv,
                nulls: ln,
            },
            Column::Bool {
                values: rv,
                nulls: rn,
            },
        ) => join_typed(
            left,
            right,
            |i| key_of(lv, ln.as_ref(), i),
            |i| key_of(rv, rn.as_ref(), i),
        ),
        (
            Column::Text {
                codes: lc,
                dict: ld,
                nulls: ln,
            },
            Column::Text {
                codes: rc,
                dict: rd,
                nulls: rn,
            },
        ) => {
            if Arc::ptr_eq(ld, rd) {
                join_typed(
                    left,
                    right,
                    |i| key_of(lc, ln.as_ref(), i),
                    |i| key_of(rc, rn.as_ref(), i),
                )
            } else {
                join_typed(
                    left,
                    right,
                    |i| {
                        (!ln.as_ref().is_some_and(|b| b.is_null(i)))
                            .then(|| ld.get(lc[i]).map(Arc::as_ref))
                            .flatten()
                    },
                    |i| {
                        (!rn.as_ref().is_some_and(|b| b.is_null(i)))
                            .then(|| rd.get(rc[i]).map(Arc::as_ref))
                            .flatten()
                    },
                )
            }
        }
        // A mixed column on either side, or numeric-vs-non-numeric: fall back to exact
        // `Value` keys (still column-at-a-time; `Value` Eq/Hash already encode the
        // cross-type rules).  Non-numeric cross-variant pairs can never match, but an empty
        // probe is cheap and keeps the kernel count small.
        (lcol, rcol) => join_typed(
            left,
            right,
            |i| {
                let v = lcol.value_at(i);
                (!v.is_null()).then_some(v)
            },
            |i| {
                let v = rcol.value_at(i);
                (!v.is_null()).then_some(v)
            },
        ),
    }
}

/// Non-null key extraction from a flat vector (`None` masks a null slot).
#[inline]
fn key_of<T: Copy>(values: &[T], nulls: Option<&urm_storage::NullBitmap>, i: usize) -> Option<T> {
    (!nulls.is_some_and(|b| b.is_null(i))).then(|| values[i])
}

/// Like [`key_of`], mapping the raw value into its key form (float → bits).
#[inline]
fn key_of_map<T: Copy, K>(
    values: &[T],
    nulls: Option<&urm_storage::NullBitmap>,
    i: usize,
    f: impl Fn(T) -> K,
) -> Option<K> {
    (!nulls.is_some_and(|b| b.is_null(i))).then(|| f(values[i]))
}

/// The shared build/probe loop of the single-key kernels: build a table from the right
/// batch's logical rows in order, probe the left batch's logical rows in order.
fn join_typed<K: std::hash::Hash + Eq>(
    left: &ColsBatch,
    right: &ColsBatch,
    lkey: impl Fn(usize) -> Option<K>,
    rkey: impl Fn(usize) -> Option<K>,
) -> (Vec<u32>, Vec<u32>) {
    let mut table: HashMap<K, Vec<u32>> = HashMap::with_capacity(right.len());
    for ri in right.logical_indices() {
        if let Some(k) = rkey(ri as usize) {
            table.entry(k).or_default().push(ri);
        }
    }
    let mut lsel = Vec::new();
    let mut rsel = Vec::new();
    for li in left.logical_indices() {
        let Some(k) = lkey(li as usize) else { continue };
        if let Some(matches) = table.get(&k) {
            for &ri in matches {
                lsel.push(li);
                rsel.push(ri);
            }
        }
    }
    (lsel, rsel)
}

/// Composite-key join: exact `Value` keys reconstructed per component, rows with any null
/// component dropped on both sides — the row path's labelled-continue semantics.
fn join_multi_key(
    left: &ColsBatch,
    right: &ColsBatch,
    left_keys: &[usize],
    right_keys: &[usize],
) -> (Vec<u32>, Vec<u32>) {
    let composite = |batch: &ColsBatch, keys: &[usize], i: usize| -> Option<Vec<Value>> {
        let mut key = Vec::with_capacity(keys.len());
        for &k in keys {
            let v = batch.column(k)?.value_at(i);
            if v.is_null() {
                return None;
            }
            key.push(v);
        }
        Some(key)
    };
    join_typed(
        left,
        right,
        |i| composite(left, left_keys, i),
        |i| composite(right, right_keys, i),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use urm_storage::{Attribute, ColumnarRelation, DataType};

    fn leaf(rows: Vec<Vec<Value>>) -> (Batch, Arc<Relation>) {
        let arity = rows.first().map_or(0, Vec::len);
        let attrs = (0..arity)
            .map(|i| Attribute::new(format!("c{i}"), DataType::Null))
            .collect();
        let rel = Arc::new(Relation::from_validated(
            Schema::new("T", attrs),
            rows.into_iter().map(Tuple::new).collect(),
        ));
        let conv = ColumnarRelation::from_relation(&rel);
        (
            Batch::from_leaf(conv.columns().to_vec(), Arc::clone(&rel)),
            rel,
        )
    }

    fn cols(batch: &Batch) -> &ColsBatch {
        match batch {
            Batch::Cols(c) => c,
            Batch::Rows(_) => panic!("expected a columnar batch"),
        }
    }

    #[test]
    fn unfiltered_leaf_materializes_to_the_shared_view() {
        let (batch, rel) = leaf(vec![vec![Value::from(1i64)], vec![Value::from(2i64)]]);
        let out = batch.materialize(rel.schema());
        assert!(Arc::ptr_eq(&out, &rel));
    }

    #[test]
    fn filter_refines_selection_and_preserves_order() {
        let (batch, rel) = leaf(vec![
            vec![Value::from(5i64)],
            vec![Value::Null],
            vec![Value::from(-1i64)],
            vec![Value::from(9i64)],
        ]);
        let filtered = cols(&batch).filter(&BoundPredicate::Compare {
            pos: 0,
            op: CompareOp::Gt,
            value: Value::from(0i64),
        });
        let out = Batch::Cols(filtered).materialize(rel.schema());
        assert_eq!(
            out.rows()
                .iter()
                .map(|t| t.get(0).cloned().unwrap())
                .collect::<Vec<_>>(),
            vec![Value::from(5i64), Value::from(9i64)]
        );
    }

    #[test]
    fn cross_variant_comparisons_resolve_by_rank() {
        // Int column vs text constant: Lt for every non-null row, Eq for none.
        let (batch, _) = leaf(vec![vec![Value::from(4i64)], vec![Value::Null]]);
        let lt = cols(&batch).filter(&BoundPredicate::Compare {
            pos: 0,
            op: CompareOp::Lt,
            value: Value::from("zz"),
        });
        assert_eq!(lt.len(), 1);
        let eq = cols(&batch).filter(&BoundPredicate::Compare {
            pos: 0,
            op: CompareOp::Eq,
            value: Value::from("zz"),
        });
        assert!(eq.is_empty());
    }

    #[test]
    fn int_float_join_matches_cross_type() {
        let (l, _) = leaf(vec![vec![Value::from(1i64)], vec![Value::from(2i64)]]);
        let (r, _) = leaf(vec![vec![Value::from(2.0)], vec![Value::from(2.5)]]);
        let joined = cols(&l).hash_join(cols(&r), &[0], &[0]);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.columns[0].value_at(0), Value::from(2i64));
        assert_eq!(joined.columns[1].value_at(0), Value::from(2.0));
    }

    #[test]
    fn sum_skips_nulls_and_errors_on_text() {
        let (batch, _) = leaf(vec![
            vec![Value::from(1i64), Value::from("x")],
            vec![Value::Null, Value::Null],
            vec![Value::from(2i64), Value::from("y")],
        ]);
        assert_eq!(cols(&batch).sum(0), Some(3.0));
        assert_eq!(cols(&batch).sum(1), None);
        // Position past the arity: every cell is "missing", the sum is empty.
        assert_eq!(cols(&batch).sum(9), Some(0.0));
    }
}
