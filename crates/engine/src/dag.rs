//! The shared-operator DAG runtime: sharing as a first-class graph edge.
//!
//! Every sharing mechanism of the paper — e-MQO's global plans (§III-B.3), q-sharing's
//! representative queries (§IV) and o-sharing's e-units (§V–VI) — bottoms out in the same
//! observation: two queries (or two mapping partitions) that need the *same bound operator over
//! the same inputs* should execute it once and share the result.  Before this module, each
//! mechanism realised that observation with its own cache convention.  Here the observation is
//! the data structure:
//!
//! ```text
//!   bound plans  ──add_root()──►  OperatorDag  ──DagScheduler──►  root results
//!   (PhysicalPlan trees)          nodes deduplicated              every distinct node
//!                                 by fingerprint;                 executed exactly once;
//!                                 edges carry Arc<Relation>       fan-out is an Arc clone
//! ```
//!
//! * [`OperatorDag`] — the IR.  Nodes are bound physical operators, deduplicated by
//!   [`PhysicalPlan::fingerprint`]; an operator shared by `n` consumers is one node with `n`
//!   incoming edges.  Because children are inserted before parents, the node vector is a
//!   topological order by construction.
//! * [`DagScheduler`] — executes a DAG bottom-up.  The sequential mode walks the topological
//!   order; the parallel mode runs independent *ready* nodes on scoped worker threads (each
//!   with its own [`Executor`] over the shared catalog), merging statistics afterwards.  Both
//!   modes execute every distinct node **exactly once** and hand each result to all consumers
//!   as a shared `Arc<Relation>` — results are byte-identical regardless of mode or worker
//!   count because every operator is a pure function of its children's batches.
//! * [`DagExecutor`] — an incremental front-end for callers that discover operators one at a
//!   time (the o-sharing u-trace, q-sharing's representative queries): each submitted plan is
//!   merged into a growing DAG and only the nodes never executed before run.
//!
//! External caches (the bounded LRU of [`SharedPlanCache`]) plug in through
//! [`OperatorDag::resolve_root`], which consults a lookup closure before descending into a
//! subgraph — a cache hit prunes the entire subtree below it, exactly as the recursive cache
//! did, but the sharing structure itself now lives in one place.
//!
//! [`SharedPlanCache`]: ../../urm_mqo/struct.SharedPlanCache.html

use crate::executor::Executor;
use crate::feedback::{CardinalityStore, FeedbackSummary, JoinHint};
use crate::physical::PhysicalPlan;
use crate::{EngineError, EngineResult};
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use urm_storage::Relation;

/// Identifier of a node in an [`OperatorDag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// The node's position in the DAG's topological node order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// One deduplicated operator of the DAG.
#[derive(Debug)]
struct DagNode {
    /// The bound sub-plan rooted at this operator, *shared* with the caller's bound tree —
    /// inserting a node is an `Arc` clone, never a subtree deep-copy.  Execution only inspects
    /// the top-level variant (children arrive as materialised batches), but keeping the full
    /// subtree makes nodes self-describing (schema, display, re-fingerprinting).
    plan: Arc<PhysicalPlan>,
    /// Child node indices, in [`PhysicalPlan::children`] order (duplicates allowed: an operator
    /// may consume the same shared node twice).
    children: Vec<usize>,
    /// Consumer node indices (one entry per incoming edge, duplicates allowed).
    consumers: Vec<usize>,
    /// The node's sharing key.
    fingerprint: u64,
    /// Estimated output rows (bind-time, from captured row-buffer sizes).
    est_rows: u64,
    /// Estimated work to execute the node (input rows consumed + output rows produced); the
    /// parallel scheduler's ready queue is a max-heap over this.
    cost: u64,
}

/// A shared-operator DAG over bound physical plans.
///
/// Insert whole plans with [`add_root`](OperatorDag::add_root); every sub-plan is deduplicated
/// against everything inserted so far, so the DAG of a query batch contains each distinct bound
/// operator once, with fan-out edges to every consumer.  See the [module docs](self) for the
/// execution model and the sharing guarantees.
#[derive(Debug, Default)]
pub struct OperatorDag {
    nodes: Vec<DagNode>,
    index: HashMap<u64, usize>,
    roots: Vec<usize>,
    offered: u64,
    reused: u64,
    /// Feedback-computed execution hints by node index (today: hash-join build sides), set by
    /// [`apply_feedback`](OperatorDag::apply_feedback).  Empty on a DAG that never consulted a
    /// [`CardinalityStore`] — execution then follows the static plan exactly.
    hints: HashMap<usize, JoinHint>,
    /// When set, every node executed by a scheduler run over this DAG records its observed
    /// output (rows, bytes, wall-clock time) here under its fingerprint.
    recorder: Option<Arc<CardinalityStore>>,
}

impl OperatorDag {
    /// Creates an empty DAG.
    #[must_use]
    pub fn new() -> Self {
        OperatorDag::default()
    }

    /// Merges a bound plan into the DAG, returning the node its root deduplicated onto.
    ///
    /// Children are inserted before parents, so node indices are a topological order.  The
    /// plan's nodes are taken over by `Arc` handle — zero subtree clones on this path; the DAG
    /// node's stored plan (and each of its inputs) is pointer-identical to the caller's bound
    /// tree.
    pub fn add_plan(&mut self, plan: &Arc<PhysicalPlan>) -> NodeId {
        let children: Vec<usize> = plan.children_shared().map(|c| self.add_plan(c).0).collect();
        self.offered += 1;
        let fingerprint = plan.fingerprint();
        if let Some(&existing) = self.index.get(&fingerprint) {
            self.reused += 1;
            return NodeId(existing);
        }
        let id = self.nodes.len();
        for &child in &children {
            self.nodes[child].consumers.push(id);
        }
        let child_rows: Vec<u64> = children.iter().map(|&c| self.nodes[c].est_rows).collect();
        let est_rows = plan.estimate_from(&child_rows);
        let cost = child_rows.iter().sum::<u64>() + est_rows;
        self.nodes.push(DagNode {
            plan: Arc::clone(plan),
            children,
            consumers: Vec::new(),
            fingerprint,
            est_rows,
            cost,
        });
        self.index.insert(fingerprint, id);
        NodeId(id)
    }

    /// Like [`add_plan`](OperatorDag::add_plan), additionally recording the node as a *root*
    /// whose result [`DagScheduler::execute`] returns (in insertion order).  The same node may
    /// be a root many times — duplicate queries in a batch share one execution and one result.
    pub fn add_root(&mut self, plan: &Arc<PhysicalPlan>) -> NodeId {
        let id = self.add_plan(plan);
        self.roots.push(id.0);
        id
    }

    /// Number of distinct operator nodes (scans and `Values` leaves included).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of roots registered via [`add_root`](OperatorDag::add_root).
    #[must_use]
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Whether the DAG has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total sub-plan insertions offered (including ones answered by an existing node).
    #[must_use]
    pub fn operators_offered(&self) -> u64 {
        self.offered
    }

    /// Insertions that deduplicated onto an existing node — the sharing the DAG realises.
    #[must_use]
    pub fn operators_reused(&self) -> u64 {
        self.reused
    }

    /// The sharing key of a node.
    #[must_use]
    pub fn fingerprint_of(&self, id: NodeId) -> u64 {
        self.nodes[id.0].fingerprint
    }

    /// The sharing keys of every node, in topological node order.
    pub fn fingerprints(&self) -> impl Iterator<Item = u64> + '_ {
        self.nodes.iter().map(|node| node.fingerprint)
    }

    /// Number of incoming edges (consumers) of a node — its fan-out degree.
    #[must_use]
    pub fn consumer_count(&self, id: NodeId) -> usize {
        self.nodes[id.0].consumers.len()
    }

    /// The bound plan rooted at a node.
    #[must_use]
    pub fn plan_of(&self, id: NodeId) -> &PhysicalPlan {
        &self.nodes[id.0].plan
    }

    /// The shared handle of the bound plan rooted at a node — pointer-identical to the tree the
    /// node was inserted from (the zero-clone invariant of [`add_plan`](OperatorDag::add_plan)).
    #[must_use]
    pub fn plan_shared(&self, id: NodeId) -> &Arc<PhysicalPlan> {
        &self.nodes[id.0].plan
    }

    /// The bind-time cost estimate of a node (input rows consumed + estimated output rows).
    /// The parallel scheduler starts expensive ready nodes — joins over big buffers — first.
    #[must_use]
    pub fn cost_of(&self, id: NodeId) -> u64 {
        self.nodes[id.0].cost
    }

    /// Copies the subgraph reachable from `roots` into a standalone DAG, returning it together
    /// with the roots' node ids in the copy (in `roots` order; duplicates map to one node).
    ///
    /// The copy shares every bound plan by `Arc` handle and **carries fingerprints and cost
    /// estimates over verbatim** — no plan is re-hashed, so snapshotting a warm batch's
    /// frontier is a pointer walk, not O(subtree) hashing.  Consumer edges are recomputed
    /// locally: a node's consumers in the copy are exactly its consumers *within* the
    /// subgraph, which is what a scheduler's retention accounting wants.  This is the
    /// bind/execute pipeline's hand-off: the copy can execute on another thread while the
    /// original DAG keeps growing under its own lock.
    #[must_use]
    pub fn subgraph(&self, roots: &[NodeId]) -> (OperatorDag, Vec<NodeId>) {
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = roots.iter().map(|r| r.0).collect();
        while let Some(node) = stack.pop() {
            if reachable[node] {
                continue;
            }
            reachable[node] = true;
            stack.extend(self.nodes[node].children.iter().copied());
        }
        let mut remap = vec![usize::MAX; self.nodes.len()];
        let mut sub = OperatorDag::new();
        // Ascending node order is topological by construction, and the copy preserves it.
        for (i, node) in self.nodes.iter().enumerate() {
            if !reachable[i] {
                continue;
            }
            let id = sub.nodes.len();
            remap[i] = id;
            let children: Vec<usize> = node.children.iter().map(|&c| remap[c]).collect();
            for &child in &children {
                sub.nodes[child].consumers.push(id);
            }
            sub.nodes.push(DagNode {
                plan: Arc::clone(&node.plan),
                children,
                consumers: Vec::new(),
                fingerprint: node.fingerprint,
                est_rows: node.est_rows,
                cost: node.cost,
            });
            sub.index.insert(node.fingerprint, id);
        }
        let roots = roots.iter().map(|r| NodeId(remap[r.0])).collect();
        (sub, roots)
    }

    /// Attaches the epoch's [`CardinalityStore`]: every node a scheduler run executes over this
    /// DAG records its observed output (rows, bytes, execution time) under its fingerprint.
    pub fn set_recorder(&mut self, store: Arc<CardinalityStore>) {
        self.recorder = Some(store);
    }

    /// The feedback-computed execution hint of a node, if
    /// [`apply_feedback`](OperatorDag::apply_feedback) produced one.
    #[must_use]
    pub fn hint_of(&self, id: NodeId) -> Option<JoinHint> {
        self.hints.get(&id.0).copied()
    }

    /// Re-costs the DAG from observed cardinalities and computes per-join execution hints.
    ///
    /// One topological pass replaces each node's scheduling cost with its *effective* row
    /// count — the store's decayed observation where one exists, otherwise the static estimate
    /// recomputed over the children's effective counts (so a single observed child corrects
    /// every unobserved ancestor above it).  Hash joins with at least one observed side whose
    /// effective left side is strictly smaller than the right get a build-side flip hint; any
    /// join with an observed build side additionally carries its observed bytes for grace-join
    /// sizing.  With an empty store this is the identity: effective counts reproduce the
    /// bind-time estimates bit-for-bit, no hints are emitted, and scheduling order is exactly
    /// the static order — cold adaptive execution ≡ static execution.
    ///
    /// Semantics never change: hints steer build sides and fan-out, the flipped join restores
    /// canonical output order, and answers stay byte-identical (see `prop_adaptive.rs`).
    pub fn apply_feedback(&mut self, store: &CardinalityStore) -> FeedbackSummary {
        let mut summary = FeedbackSummary::default();
        let mut effective: Vec<u64> = Vec::with_capacity(self.nodes.len());
        let mut observed: Vec<Option<crate::feedback::Observed>> =
            Vec::with_capacity(self.nodes.len());
        let mut hints: HashMap<usize, JoinHint> = HashMap::new();
        for i in 0..self.nodes.len() {
            let obs = store.get(self.nodes[i].fingerprint);
            let child_rows: Vec<u64> = self.nodes[i]
                .children
                .iter()
                .map(|&c| effective[c])
                .collect();
            let rows = match &obs {
                Some(o) => {
                    summary.observed_nodes += 1;
                    o.rows_estimate()
                }
                None => self.nodes[i].plan.estimate_from(&child_rows),
            };
            self.nodes[i].cost = child_rows.iter().sum::<u64>() + rows;
            if let PhysicalPlan::HashJoin { .. } = *self.nodes[i].plan {
                let (l, r) = (self.nodes[i].children[0], self.nodes[i].children[1]);
                if (observed[l].is_some() || observed[r].is_some()) && effective[l] < effective[r] {
                    summary.reordered_joins += 1;
                    hints.insert(
                        i,
                        JoinHint {
                            build_left: true,
                            build_bytes: observed[l].map(|o| o.bytes_estimate()),
                        },
                    );
                } else if observed[r].is_some() {
                    hints.insert(
                        i,
                        JoinHint {
                            build_left: false,
                            build_bytes: observed[r].map(|o| o.bytes_estimate()),
                        },
                    );
                }
            }
            effective.push(rows);
            observed.push(obs);
        }
        self.hints = hints;
        summary
    }

    /// Executes one node through the driving executor, applying the node's feedback hint and —
    /// when a recorder is attached — timing the execution and recording the observed output.
    /// All scheduler paths (sequential, parallel workers, recursive resolve) funnel through
    /// here so feedback sees every execution exactly once.
    fn run_node(
        &self,
        node: usize,
        exec: &mut Executor<'_>,
        children: &[Arc<Relation>],
    ) -> EngineResult<Arc<Relation>> {
        let n = &self.nodes[node];
        let hint = self.hints.get(&node).copied();
        // Per-node trace span (inert when tracing is off).  `shared_by` is the node's consumer
        // count — the explicit MQO cost attribution: a span with `shared_by: 3` was executed
        // once on behalf of three downstream operators/queries.
        let mut span = exec.tracer().span("node");
        span.tag("node", node as u64);
        span.tag("shared_by", n.consumers.len().max(1) as u64);
        let result = match &self.recorder {
            Some(store) => {
                let started = Instant::now();
                let out = exec.execute_node_hinted(&n.plan, children, hint)?;
                store.record(
                    n.fingerprint,
                    out.len() as u64,
                    out.estimated_bytes() as u64,
                    started.elapsed().as_nanos() as u64,
                );
                Ok(out)
            }
            None => exec.execute_node_hinted(&n.plan, children, hint),
        };
        if let Ok(out) = &result {
            span.tag("rows", out.len() as u64);
        }
        result
    }

    /// Resolves a single root bottom-up through an external result cache.
    ///
    /// [`DagResultCache::lookup`] is consulted *before* descending into a node's children: a
    /// hit prunes the whole subgraph below it (and is the cache's to count).  Every computed
    /// result is handed to [`DagResultCache::publish`] exactly once.  Within one call, nodes
    /// reached through several consumers are resolved once (an internal memo, not a `lookup`
    /// hit).
    pub fn resolve_root(
        &self,
        root: NodeId,
        exec: &mut Executor<'_>,
        cache: &mut dyn DagResultCache,
    ) -> EngineResult<Arc<Relation>> {
        let mut memo: HashMap<usize, Arc<Relation>> = HashMap::new();
        self.resolve_node(root.0, exec, cache, &mut memo)
    }

    fn resolve_node(
        &self,
        node: usize,
        exec: &mut Executor<'_>,
        cache: &mut dyn DagResultCache,
        memo: &mut HashMap<usize, Arc<Relation>>,
    ) -> EngineResult<Arc<Relation>> {
        if let Some(done) = memo.get(&node) {
            return Ok(Arc::clone(done));
        }
        if let Some(hit) = cache.lookup(self.nodes[node].fingerprint) {
            memo.insert(node, Arc::clone(&hit));
            return Ok(hit);
        }
        let mut children = Vec::with_capacity(self.nodes[node].children.len());
        for &child in &self.nodes[node].children {
            children.push(self.resolve_node(child, exec, cache, memo)?);
        }
        let result = self.run_node(node, exec, &children)?;
        cache.publish(self.nodes[node].fingerprint, &result);
        memo.insert(node, Arc::clone(&result));
        Ok(result)
    }
}

/// An external result store plugged into [`OperatorDag::resolve_root`].
///
/// The bounded LRU of the shared-plan cache and the unbounded memo of the incremental
/// [`DagExecutor`] both implement this: `lookup` answers a node by fingerprint (pruning its
/// whole subgraph), `publish` receives every freshly computed result exactly once.
pub trait DagResultCache {
    /// Returns the stored result for a fingerprint, if any.
    fn lookup(&mut self, fingerprint: u64) -> Option<Arc<Relation>>;
    /// Stores a freshly computed result.
    fn publish(&mut self, fingerprint: u64, result: &Arc<Relation>);
}

/// Work accounting for one DAG run.
#[derive(Debug, Clone, Default)]
pub struct DagRunReport {
    /// Nodes actually executed (each exactly once).
    pub nodes_executed: u64,
    /// Operator insertions the DAG answered with an existing node — work *not* done.
    pub operators_reused: u64,
    /// Nodes answered by the external result cache instead of executing (the whole subgraph
    /// below each of them was pruned too).  Always 0 for plain [`DagScheduler::execute`].
    pub results_reused: u64,
    /// Worker threads the run was scheduled on (1 = sequential).
    pub workers: usize,
    /// Maximum number of nodes in flight at once (1 for sequential runs).
    pub peak_parallelism: usize,
}

/// The outcome of executing a DAG: one result per registered root, plus accounting.
#[derive(Debug)]
pub struct DagRun {
    /// Root results, in [`OperatorDag::add_root`] order.  Duplicate roots alias one `Arc`.
    pub root_results: Vec<Arc<Relation>>,
    /// Work accounting.
    pub report: DagRunReport,
}

/// Executes [`OperatorDag`]s: sequential topological walk, or parallel over scoped workers.
#[derive(Debug, Clone, Copy)]
pub struct DagScheduler {
    workers: usize,
}

impl DagScheduler {
    /// A scheduler that executes nodes one at a time in topological order.
    #[must_use]
    pub fn sequential() -> Self {
        DagScheduler { workers: 1 }
    }

    /// A scheduler running independent ready nodes on `workers` scoped threads (1 = sequential).
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        DagScheduler {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes every distinct node of the DAG exactly once, bottom-up, and returns the root
    /// results in registration order.
    ///
    /// Statistics (operators, scans, tuples, time) are charged to `exec`; in parallel mode each
    /// worker accumulates into a private [`Executor`] over the same catalog and the totals are
    /// merged into `exec` when the run completes, so counter totals are mode-independent.
    pub fn execute(&self, dag: &OperatorDag, exec: &mut Executor<'_>) -> EngineResult<DagRun> {
        let needed = vec![true; dag.nodes.len()];
        let roots = dag.roots.clone();
        self.run_nodes(
            dag,
            &roots,
            needed,
            HashMap::new(),
            exec,
            &mut NoCache,
            false,
        )
    }

    /// Executes only what the given roots need, answering nodes from an external result cache.
    ///
    /// This is the entry point of the per-epoch DAG: `cache.lookup` is consulted once per
    /// distinct node reachable from `roots`, a hit prunes the node's whole subgraph, and every
    /// freshly computed node result is handed to `cache.publish` exactly once.  Nodes of the
    /// DAG that no root reaches are not touched at all — a persistent DAG can therefore hold an
    /// epoch's whole operator history while each batch pays only for its own frontier.  Root
    /// results come back in `roots` order; duplicate roots alias one `Arc`.
    pub fn execute_roots(
        &self,
        dag: &OperatorDag,
        roots: &[NodeId],
        exec: &mut Executor<'_>,
        cache: &mut dyn DagResultCache,
    ) -> EngineResult<DagRun> {
        let roots: Vec<usize> = roots.iter().map(|r| r.0).collect();
        let (needed, seeds) = plan_nodes(dag, &roots, cache);
        self.run_nodes(dag, &roots, needed, seeds, exec, cache, true)
    }

    /// The shared engine behind [`execute`](DagScheduler::execute) and
    /// [`execute_roots`](DagScheduler::execute_roots): runs the `needed` nodes (sequentially or
    /// on workers), seeds child batches from `seeds`, and — when `publish` is set — hands every
    /// fresh result to `cache`.
    #[allow(clippy::too_many_arguments)]
    fn run_nodes(
        &self,
        dag: &OperatorDag,
        roots: &[usize],
        needed: Vec<bool>,
        seeds: HashMap<usize, Arc<Relation>>,
        exec: &mut Executor<'_>,
        cache: &mut dyn DagResultCache,
        publish: bool,
    ) -> EngineResult<DagRun> {
        let needed_count = needed.iter().filter(|&&n| n).count();
        let results_reused = seeds.len() as u64;
        let (results, peak_parallelism) = if self.workers <= 1 || needed_count <= 1 {
            (
                self.run_sequential(dag, roots, &needed, &seeds, exec, cache, publish)?,
                usize::from(needed_count > 0),
            )
        } else {
            self.run_parallel(dag, roots, &needed, &seeds, exec, cache, publish)?
        };
        let root_results = roots
            .iter()
            .map(|&r| Arc::clone(results[r].as_ref().expect("root result retained")))
            .collect();
        Ok(DagRun {
            root_results,
            report: DagRunReport {
                nodes_executed: needed_count as u64,
                operators_reused: dag.operators_reused(),
                results_reused,
                workers: self.workers,
                peak_parallelism,
            },
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_sequential(
        &self,
        dag: &OperatorDag,
        roots: &[usize],
        needed: &[bool],
        seeds: &HashMap<usize, Arc<Relation>>,
        exec: &mut Executor<'_>,
        cache: &mut dyn DagResultCache,
        publish: bool,
    ) -> EngineResult<Vec<Option<Arc<Relation>>>> {
        // Node indices are topological by construction: children precede parents.  A node's
        // result is dropped as soon as its last consumer has executed (roots are retained for
        // extraction), so peak memory tracks the live frontier, not the whole batch.
        let mut retain = retention(dag, needed, roots);
        let mut results: Vec<Option<Arc<Relation>>> = vec![None; dag.nodes.len()];
        for (&i, seed) in seeds {
            results[i] = Some(Arc::clone(seed));
        }
        for i in 0..dag.nodes.len() {
            if !needed[i] {
                continue;
            }
            let node = &dag.nodes[i];
            let children: Vec<Arc<Relation>> = node
                .children
                .iter()
                .map(|&c| Arc::clone(results[c].as_ref().expect("child resolved")))
                .collect();
            let out = dag.run_node(i, exec, &children)?;
            if publish {
                cache.publish(node.fingerprint, &out);
            }
            if retain[i] > 0 {
                results[i] = Some(out);
            }
            for &c in &node.children {
                retain[c] -= 1;
                if retain[c] == 0 {
                    results[c] = None;
                }
            }
        }
        Ok(results)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_parallel(
        &self,
        dag: &OperatorDag,
        roots: &[usize],
        needed: &[bool],
        seeds: &HashMap<usize, Arc<Relation>>,
        exec: &mut Executor<'_>,
        cache: &mut dyn DagResultCache,
        publish: bool,
    ) -> EngineResult<(Vec<Option<Arc<Relation>>>, usize)> {
        let catalog = exec.catalog();
        // Workers inherit the driving executor's spill pool (one shared budget, not one per
        // worker), so budgeted grace joins behave identically under parallel scheduling —
        // and its columnar toggle, so one flag governs the whole batch.
        let pool = exec.pool().cloned();
        let columnar = exec.columnar_enabled();
        let tracer = exec.tracer().clone();
        let needed_count = needed.iter().filter(|&&n| n).count();
        // Publishing happens single-threaded after the run, so a cache-backed run must keep
        // every fresh result alive until then (the cache wants all of them anyway — that is
        // what makes the next batch warm).
        let keep_all = publish;
        let shared = SchedState::new(dag, roots, needed, seeds, keep_all);
        let worker_count = self.workers.min(needed_count.max(1));
        let mut stats_parts = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..worker_count)
                .map(|_| {
                    let shared = &shared;
                    let pool = pool.clone();
                    let tracer = tracer.clone();
                    scope.spawn(move || {
                        let mut worker_exec = match pool {
                            Some(pool) => Executor::with_pool(catalog, pool),
                            None => Executor::new(catalog),
                        }
                        .with_columnar(columnar)
                        .with_tracer(tracer);
                        shared.run_worker(dag, &mut worker_exec);
                        worker_exec.into_stats()
                    })
                })
                .collect();
            for handle in handles {
                stats_parts.push(handle.join().expect("DAG worker panicked"));
            }
        });
        for part in &stats_parts {
            exec.stats_mut().merge(part);
        }
        let state = shared.state.into_inner().unwrap();
        if let Some(err) = state.error {
            return Err(err);
        }
        if publish {
            for (i, node) in dag.nodes.iter().enumerate() {
                if !needed[i] {
                    continue;
                }
                let result = state.results[i].as_ref().expect("fresh result retained");
                cache.publish(node.fingerprint, result);
            }
        }
        Ok((state.results, state.peak_parallel))
    }
}

/// The cache of a plain [`DagScheduler::execute`] run: answers nothing, records nothing.
struct NoCache;

impl DagResultCache for NoCache {
    fn lookup(&mut self, _fingerprint: u64) -> Option<Arc<Relation>> {
        None
    }
    fn publish(&mut self, _fingerprint: u64, _result: &Arc<Relation>) {}
}

/// Walks the DAG from `roots`, consulting the cache once per distinct node: a hit seeds the
/// node's result and prunes its subgraph, a miss marks the node (and its frontier below) as
/// needing execution.
fn plan_nodes(
    dag: &OperatorDag,
    roots: &[usize],
    cache: &mut dyn DagResultCache,
) -> (Vec<bool>, HashMap<usize, Arc<Relation>>) {
    let mut needed = vec![false; dag.nodes.len()];
    let mut visited = vec![false; dag.nodes.len()];
    let mut seeds: HashMap<usize, Arc<Relation>> = HashMap::new();
    let mut stack: Vec<usize> = roots.to_vec();
    while let Some(node) = stack.pop() {
        if visited[node] {
            continue;
        }
        visited[node] = true;
        if let Some(hit) = cache.lookup(dag.nodes[node].fingerprint) {
            seeds.insert(node, hit);
            continue;
        }
        needed[node] = true;
        stack.extend(dag.nodes[node].children.iter().copied());
    }
    (needed, seeds)
}

/// How many times each node's result is still needed during a run: once per consuming edge of
/// an executing node plus once per root registration.  The scheduler drops a node's
/// materialised result as soon as this count drains, bounding peak memory to the *live*
/// frontier of the DAG instead of every intermediate of the whole batch.
fn retention(dag: &OperatorDag, needed: &[bool], roots: &[usize]) -> Vec<usize> {
    let mut retain = vec![0usize; dag.nodes.len()];
    for (i, node) in dag.nodes.iter().enumerate() {
        if !needed[i] {
            continue;
        }
        for &c in &node.children {
            retain[c] += 1;
        }
    }
    for &r in roots {
        retain[r] += 1;
    }
    retain
}

/// A ready node in the parallel scheduler's queue, ordered by bind-time cost estimate.
///
/// The queue is a max-heap: the most expensive ready node (a hash join over big captured row
/// buffers rather than a cheap selection) is started first, which shortens the critical path
/// whenever workers outnumber heavy nodes.  Ties break towards the smaller node index — the
/// older, deeper node — keeping pop order deterministic.
#[derive(Debug, PartialEq, Eq)]
struct ReadyNode {
    cost: u64,
    node: usize,
}

impl Ord for ReadyNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost
            .cmp(&other.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for ReadyNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Shared scheduling state of one parallel run.
struct SchedState {
    state: Mutex<SchedInner>,
    ready_cv: Condvar,
    /// Which nodes this run executes (immutable; seeded or unreachable nodes are skipped).
    needed: Vec<bool>,
}

struct SchedInner {
    /// Nodes whose children are all resolved, awaiting a worker — max-heap by cost estimate,
    /// so expensive joins start before cheap selections.
    ready: BinaryHeap<ReadyNode>,
    /// Per-node results (`None` until executed, and again once no longer needed).
    results: Vec<Option<Arc<Relation>>>,
    /// Unresolved-child count per node (counts duplicate edges; seeded children are resolved).
    pending: Vec<usize>,
    /// Remaining uses of each node's result (consumer edges + root registrations); a result is
    /// dropped when this drains, bounding peak memory to the live frontier.
    retain: Vec<usize>,
    /// Nodes not yet finished.
    remaining: usize,
    /// Nodes currently executing on some worker.
    in_flight: usize,
    /// Maximum `in_flight` observed.
    peak_parallel: usize,
    /// First error raised by any worker (fails the whole run).
    error: Option<EngineError>,
}

impl SchedState {
    fn new(
        dag: &OperatorDag,
        roots: &[usize],
        needed: &[bool],
        seeds: &HashMap<usize, Arc<Relation>>,
        keep_all: bool,
    ) -> Self {
        let pending: Vec<usize> = dag
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                if needed[i] {
                    n.children.iter().filter(|&&c| needed[c]).count()
                } else {
                    0
                }
            })
            .collect();
        let ready: BinaryHeap<ReadyNode> = pending
            .iter()
            .enumerate()
            .filter(|&(i, &p)| needed[i] && p == 0)
            .map(|(i, _)| ReadyNode {
                cost: dag.nodes[i].cost,
                node: i,
            })
            .collect();
        let mut results: Vec<Option<Arc<Relation>>> = vec![None; dag.nodes.len()];
        for (&i, seed) in seeds {
            results[i] = Some(Arc::clone(seed));
        }
        let mut retain = retention(dag, needed, roots);
        if keep_all {
            for (i, r) in retain.iter_mut().enumerate() {
                if needed[i] {
                    *r += 1;
                }
            }
        }
        SchedState {
            state: Mutex::new(SchedInner {
                ready,
                results,
                pending,
                retain,
                remaining: needed.iter().filter(|&&n| n).count(),
                in_flight: 0,
                peak_parallel: 0,
                error: None,
            }),
            ready_cv: Condvar::new(),
            needed: needed.to_vec(),
        }
    }

    fn run_worker(&self, dag: &OperatorDag, exec: &mut Executor<'_>) {
        let mut guard = self.state.lock().unwrap();
        loop {
            if guard.error.is_some() || guard.remaining == 0 {
                return;
            }
            let Some(ReadyNode { node, .. }) = guard.ready.pop() else {
                if guard.in_flight == 0 {
                    // Unreachable for a well-formed DAG; bail rather than deadlock.
                    return;
                }
                guard = self.ready_cv.wait(guard).unwrap();
                continue;
            };
            guard.in_flight += 1;
            guard.peak_parallel = guard.peak_parallel.max(guard.in_flight);
            let children: Vec<Arc<Relation>> = dag.nodes[node]
                .children
                .iter()
                .map(|&c| Arc::clone(guard.results[c].as_ref().expect("child resolved")))
                .collect();
            drop(guard);

            let outcome = dag.run_node(node, exec, &children);

            guard = self.state.lock().unwrap();
            guard.in_flight -= 1;
            match outcome {
                Ok(result) => {
                    if guard.retain[node] > 0 {
                        guard.results[node] = Some(result);
                    }
                    guard.remaining -= 1;
                    // This node is done with its inputs: release each child edge, dropping a
                    // child's materialised result once its last use drains (roots keep one
                    // registration alive for extraction).
                    for &c in &dag.nodes[node].children {
                        guard.retain[c] -= 1;
                        if guard.retain[c] == 0 {
                            guard.results[c] = None;
                        }
                    }
                    let mut woke = 0usize;
                    for &consumer in &dag.nodes[node].consumers {
                        if !self.needed[consumer] {
                            continue;
                        }
                        guard.pending[consumer] -= 1;
                        if guard.pending[consumer] == 0 {
                            guard.ready.push(ReadyNode {
                                cost: dag.nodes[consumer].cost,
                                node: consumer,
                            });
                            woke += 1;
                        }
                    }
                    // Wake peers only when there is genuinely something for them: newly ready
                    // nodes beyond the one this worker will take itself, or run completion.
                    if guard.remaining == 0 || woke > 1 {
                        self.ready_cv.notify_all();
                    } else if woke == 1 && guard.ready.len() > 1 {
                        self.ready_cv.notify_one();
                    }
                }
                Err(err) => {
                    if guard.error.is_none() {
                        guard.error = Some(err);
                    }
                    self.ready_cv.notify_all();
                }
            }
        }
    }
}

/// An incremental DAG executor: plans arrive one at a time, distinct operators execute once.
///
/// This is the front-end the o-sharing u-trace and q-sharing use.  Each submitted logical plan
/// is bound, merged into a growing per-evaluation [`EpochDag`](crate::epoch::EpochDag) (pinning
/// every result — the evaluation *is* the epoch), and resolved against the results of every
/// earlier submission: an operator (or scan, or shared `Values` leaf) that any earlier step
/// already executed is answered with the stored `Arc` — sharing across sibling e-units and
/// across representative mappings falls out of the graph structure.
#[derive(Debug)]
pub struct DagExecutor {
    epoch: crate::epoch::EpochDag,
}

impl Default for DagExecutor {
    fn default() -> Self {
        DagExecutor::new()
    }
}

impl DagExecutor {
    /// Creates an empty incremental executor.
    #[must_use]
    pub fn new() -> Self {
        DagExecutor {
            epoch: crate::epoch::EpochDag::pinning_all(),
        }
    }

    /// Binds `plan`, merges it into the DAG, executes only the nodes never executed before, and
    /// returns the (shared) root result.
    pub fn run_shared(
        &mut self,
        plan: &crate::Plan,
        exec: &mut Executor<'_>,
    ) -> EngineResult<Arc<Relation>> {
        let physical = exec.bind(plan)?;
        self.run_physical(&physical, exec)
    }

    /// Like [`run_shared`](DagExecutor::run_shared) for an already-bound plan (merged by `Arc`
    /// handle — no subtree is ever cloned).
    pub fn run_physical(
        &mut self,
        physical: &Arc<PhysicalPlan>,
        exec: &mut Executor<'_>,
    ) -> EngineResult<Arc<Relation>> {
        self.epoch.resolve(physical, exec)
    }

    /// Distinct operator nodes merged into the DAG so far.
    #[must_use]
    pub fn distinct_nodes(&self) -> usize {
        self.epoch.node_count()
    }

    /// Resolutions answered from an earlier execution (shared work).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.epoch.result_hits()
    }

    /// Nodes actually executed so far (each exactly once).
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.epoch.nodes_executed()
    }

    /// The underlying DAG (metrics, inspection).
    #[must_use]
    pub fn dag(&self) -> &OperatorDag {
        self.epoch.dag()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Plan, Predicate};
    use urm_storage::{Attribute, Catalog, DataType, Schema, Tuple, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(
            "R",
            vec![
                Attribute::new("a", DataType::Int),
                Attribute::new("b", DataType::Text),
            ],
        );
        let rows = (0..20)
            .map(|i| {
                Tuple::new(vec![
                    Value::from(i as i64),
                    Value::from(if i % 2 == 0 { "x" } else { "y" }),
                ])
            })
            .collect();
        let mut cat = Catalog::new();
        cat.insert(urm_storage::Relation::new(schema, rows).unwrap());
        cat
    }

    fn queries() -> Vec<Plan> {
        let base = Plan::scan("R").select(Predicate::eq("R.b", Value::from("x")));
        vec![
            base.clone().project(vec!["R.a".into()]),
            base.clone().project(vec!["R.b".into()]),
            base.clone().project(vec!["R.a".into()]), // duplicate of the first
            Plan::scan("R").select(Predicate::eq("R.b", Value::from("y"))),
        ]
    }

    fn build_dag(exec: &Executor<'_>) -> OperatorDag {
        let mut dag = OperatorDag::new();
        for q in queries() {
            let physical = exec.bind(&q).unwrap();
            dag.add_root(&physical);
        }
        dag
    }

    #[test]
    fn merged_dag_deduplicates_shared_operators() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let dag = build_dag(&exec);
        // Distinct nodes: scan, select-x, project-a, project-b, select-y = 5.
        assert_eq!(dag.node_count(), 5);
        assert_eq!(dag.root_count(), 4);
        assert!(dag.operators_reused() > 0);
        assert_eq!(
            dag.operators_offered(),
            dag.node_count() as u64 + dag.operators_reused()
        );
    }

    #[test]
    fn every_distinct_node_executes_exactly_once() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let dag = build_dag(&exec);
        let run = DagScheduler::sequential().execute(&dag, &mut exec).unwrap();
        assert_eq!(run.report.nodes_executed, dag.node_count() as u64);
        // The executor's own counters agree: one scan + one execution per operator node.
        assert_eq!(
            exec.stats().scans + exec.stats().operators_executed,
            dag.node_count() as u64
        );
        assert_eq!(exec.stats().scans, 1);
        // Duplicate roots share one result allocation.
        assert!(Arc::ptr_eq(&run.root_results[0], &run.root_results[2]));
    }

    #[test]
    fn parallel_execution_is_byte_identical_to_sequential() {
        let cat = catalog();
        let mut seq_exec = Executor::new(&cat);
        let dag = build_dag(&seq_exec);
        let seq = DagScheduler::sequential()
            .execute(&dag, &mut seq_exec)
            .unwrap();
        for workers in [2, 4, 8] {
            let mut par_exec = Executor::new(&cat);
            let dag = build_dag(&par_exec);
            let par = DagScheduler::with_workers(workers)
                .execute(&dag, &mut par_exec)
                .unwrap();
            assert_eq!(par.root_results.len(), seq.root_results.len());
            for (a, b) in par.root_results.iter().zip(&seq.root_results) {
                assert_eq!(a.rows(), b.rows());
                assert_eq!(a.schema(), b.schema());
            }
            // Work counters are mode-independent.
            assert_eq!(par_exec.stats().scans, seq_exec.stats().scans);
            assert_eq!(
                par_exec.stats().operators_executed,
                seq_exec.stats().operators_executed
            );
            assert_eq!(par.report.workers, workers);
            assert!(par.report.peak_parallelism >= 1);
        }
    }

    #[test]
    fn parallel_execution_surfaces_errors() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        // SUM over a text column fails at execution time (not at bind time).
        let plan = Plan::scan("R").aggregate(crate::AggFunc::Sum("R.b".into()));
        let physical = exec.bind(&plan).unwrap();
        let mut dag = OperatorDag::new();
        dag.add_root(&physical);
        // Pad with healthy work so the scheduler genuinely runs multi-node.
        for q in queries() {
            dag.add_root(&exec.bind(&q).unwrap());
        }
        let err = DagScheduler::with_workers(4).execute(&dag, &mut exec);
        assert!(matches!(err, Err(EngineError::InvalidAggregate { .. })));
    }

    #[test]
    fn empty_dag_executes_to_nothing() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let dag = OperatorDag::new();
        let run = DagScheduler::with_workers(4)
            .execute(&dag, &mut exec)
            .unwrap();
        assert!(run.root_results.is_empty());
        assert_eq!(run.report.nodes_executed, 0);
        assert_eq!(run.report.peak_parallelism, 0);
    }

    #[test]
    fn dag_construction_never_deep_clones_a_subtree() {
        // The zero-clone invariant of the Arc'd plan refactor: every DAG node stores the bound
        // plan by pointer, so a node's input IS the bound plan's child, not a copy.
        let cat = catalog();
        let exec = Executor::new(&cat);
        let physical = exec
            .bind(
                &Plan::scan("R")
                    .select(Predicate::eq("R.b", Value::from("x")))
                    .hash_join(Plan::scan_as("R", "S"), vec![("R.a".into(), "S.a".into())])
                    .project(vec!["R.a".into()]),
            )
            .unwrap();
        let mut dag = OperatorDag::new();
        let root = dag.add_root(&physical);
        assert!(
            Arc::ptr_eq(dag.plan_shared(root), &physical),
            "root node must hold the bound tree itself"
        );
        // Walk the whole tree: re-adding any subtree dedups onto its node, and that node's
        // stored plan must be pointer-identical to the bound plan's child handle.
        fn check(dag: &mut OperatorDag, plan: &Arc<crate::PhysicalPlan>) {
            for child in plan.children_shared() {
                let node = dag.add_plan(child);
                assert!(
                    Arc::ptr_eq(dag.plan_shared(node), child),
                    "DAG node input is not the bound plan's child"
                );
                check(dag, child);
            }
        }
        check(&mut dag, &physical);
    }

    #[test]
    fn cost_estimates_rank_joins_above_selections() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut dag = OperatorDag::new();
        let select = dag.add_root(
            &exec
                .bind(&Plan::scan("R").select(Predicate::eq("R.b", Value::from("x"))))
                .unwrap(),
        );
        let join = dag.add_root(
            &exec
                .bind(
                    &Plan::scan("R")
                        .hash_join(Plan::scan_as("R", "S"), vec![("R.a".into(), "S.a".into())]),
                )
                .unwrap(),
        );
        let product = dag.add_root(
            &exec
                .bind(&Plan::scan("R").product(Plan::scan_as("R", "P")))
                .unwrap(),
        );
        assert!(
            dag.cost_of(join) > dag.cost_of(select),
            "a join over the same buffers must cost more than a selection"
        );
        assert!(
            dag.cost_of(product) > dag.cost_of(join),
            "a product must out-cost the equi-join"
        );
    }

    #[test]
    fn execute_roots_prunes_cached_subgraphs_and_skips_unrelated_nodes() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut dag = OperatorDag::new();
        let base = Plan::scan("R").select(Predicate::eq("R.b", Value::from("x")));
        let wanted = dag.add_plan(
            &exec
                .bind(&base.clone().project(vec!["R.a".into()]))
                .unwrap(),
        );
        // An unrelated plan merged into the same DAG must not execute.
        dag.add_plan(
            &exec
                .bind(&Plan::scan("R").select(Predicate::eq("R.b", Value::from("y"))))
                .unwrap(),
        );

        struct Memo(HashMap<u64, Arc<Relation>>);
        impl DagResultCache for Memo {
            fn lookup(&mut self, fingerprint: u64) -> Option<Arc<Relation>> {
                self.0.get(&fingerprint).cloned()
            }
            fn publish(&mut self, fingerprint: u64, result: &Arc<Relation>) {
                self.0.insert(fingerprint, Arc::clone(result));
            }
        }
        let mut memo = Memo(HashMap::new());
        for workers in [1usize, 3] {
            let cold = DagScheduler::with_workers(workers)
                .execute_roots(&dag, &[wanted], &mut exec, &mut memo)
                .unwrap();
            assert_eq!(cold.root_results.len(), 1);
            assert_eq!(cold.root_results[0].len(), 10);
            if workers == 1 {
                // First run: only the root's own 3 nodes execute, never the unrelated select.
                assert_eq!(cold.report.nodes_executed, 3);
                assert_eq!(exec.stats().scans + exec.stats().operators_executed, 3);
            } else {
                // Second run: the primed memo answers the root outright.
                assert_eq!(cold.report.nodes_executed, 0);
                assert_eq!(cold.report.results_reused, 1);
                assert_eq!(exec.stats().scans + exec.stats().operators_executed, 3);
            }
        }
    }

    #[test]
    fn subgraph_snapshot_executes_like_the_original() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut dag = OperatorDag::new();
        let base = Plan::scan("R").select(Predicate::eq("R.b", Value::from("x")));
        let a = dag.add_plan(
            &exec
                .bind(&base.clone().project(vec!["R.a".into()]))
                .unwrap(),
        );
        let b = dag.add_plan(
            &exec
                .bind(&base.clone().project(vec!["R.b".into()]))
                .unwrap(),
        );
        // An unrelated plan that the snapshot must not carry along.
        dag.add_plan(
            &exec
                .bind(&Plan::scan("R").select(Predicate::eq("R.b", Value::from("y"))))
                .unwrap(),
        );

        let (sub, roots) = dag.subgraph(&[a, b, a]);
        // scan, select-x, project-a, project-b — the unrelated select-y is excluded.
        assert_eq!(sub.node_count(), 4);
        assert_eq!(roots.len(), 3);
        assert_eq!(roots[0], roots[2], "duplicate roots map to one node");
        for (orig, copy) in [(a, roots[0]), (b, roots[1])] {
            assert_eq!(sub.fingerprint_of(copy), dag.fingerprint_of(orig));
            assert_eq!(sub.cost_of(copy), dag.cost_of(orig));
            assert!(
                Arc::ptr_eq(sub.plan_shared(copy), dag.plan_shared(orig)),
                "snapshot must share the bound plan by handle"
            );
        }

        let mut memo: HashMap<u64, Arc<Relation>> = HashMap::new();
        struct Memo<'m>(&'m mut HashMap<u64, Arc<Relation>>);
        impl DagResultCache for Memo<'_> {
            fn lookup(&mut self, fingerprint: u64) -> Option<Arc<Relation>> {
                self.0.get(&fingerprint).cloned()
            }
            fn publish(&mut self, fingerprint: u64, result: &Arc<Relation>) {
                self.0.insert(fingerprint, Arc::clone(result));
            }
        }
        for workers in [1usize, 3] {
            memo.clear();
            let run = DagScheduler::with_workers(workers)
                .execute_roots(&sub, &roots, &mut exec, &mut Memo(&mut memo))
                .unwrap();
            assert_eq!(run.report.nodes_executed, 4);
            assert_eq!(run.root_results.len(), 3);
            assert_eq!(run.root_results[0].len(), 10);
            assert!(Arc::ptr_eq(&run.root_results[0], &run.root_results[2]));
        }
    }

    #[test]
    fn fan_out_degree_is_tracked() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut dag = OperatorDag::new();
        let base = Plan::scan("R").select(Predicate::eq("R.b", Value::from("x")));
        let select = dag.add_root(&exec.bind(&base).unwrap());
        dag.add_root(
            &exec
                .bind(&base.clone().project(vec!["R.a".into()]))
                .unwrap(),
        );
        dag.add_root(
            &exec
                .bind(&base.clone().project(vec!["R.b".into()]))
                .unwrap(),
        );
        assert_eq!(dag.consumer_count(select), 2);
    }

    #[test]
    fn incremental_executor_shares_across_submissions() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let mut dag = DagExecutor::new();
        let base = Plan::scan("R").select(Predicate::eq("R.b", Value::from("x")));
        let a = dag
            .run_shared(&base.clone().project(vec!["R.a".into()]), &mut exec)
            .unwrap();
        let b = dag
            .run_shared(&base.clone().project(vec!["R.a".into()]), &mut exec)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(exec.stats().scans, 1);
        assert!(dag.hits() > 0);
        assert_eq!(dag.executed(), dag.distinct_nodes() as u64);
    }

    #[test]
    fn resolve_root_consults_the_external_cache_before_descending() {
        let cat = catalog();
        let mut exec = Executor::new(&cat);
        let plan = Plan::scan("R")
            .select(Predicate::eq("R.b", Value::from("x")))
            .project(vec!["R.a".into()]);
        let physical = exec.bind(&plan).unwrap();
        let mut dag = OperatorDag::new();
        let root = dag.add_root(&physical);

        // Prime an external store with the run's results; the second resolve must answer the
        // root from it without touching any node.
        struct Probe {
            store: HashMap<u64, Arc<Relation>>,
            lookups: u64,
            consult: bool,
            forbid_publish: bool,
        }
        impl DagResultCache for Probe {
            fn lookup(&mut self, fingerprint: u64) -> Option<Arc<Relation>> {
                if !self.consult {
                    return None;
                }
                self.lookups += 1;
                self.store.get(&fingerprint).cloned()
            }
            fn publish(&mut self, fingerprint: u64, result: &Arc<Relation>) {
                assert!(!self.forbid_publish, "nothing new should be published");
                self.store.insert(fingerprint, Arc::clone(result));
            }
        }

        let mut probe = Probe {
            store: HashMap::new(),
            lookups: 0,
            consult: false,
            forbid_publish: false,
        };
        let first = dag.resolve_root(root, &mut exec, &mut probe).unwrap();
        let ops_before = exec.stats().operators_executed + exec.stats().scans;
        probe.consult = true;
        probe.forbid_publish = true;
        let again = dag.resolve_root(root, &mut exec, &mut probe).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(probe.lookups, 1, "a root hit must prune the whole subgraph");
        assert_eq!(
            exec.stats().operators_executed + exec.stats().scans,
            ops_before
        );
    }
}
