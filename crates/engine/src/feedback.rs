//! Observed-cardinality feedback: the adaptive-execution loop's memory.
//!
//! Bind-time cost estimates ([`PhysicalPlan::estimate_from`](crate::PhysicalPlan::estimate_from))
//! are computed from captured row-buffer sizes with coarse selectivity rules — good enough to
//! rank a join above a selection, badly wrong on skewed data (a selective filter estimated at
//! half its input, a join whose small side is guessed large).  The per-epoch DAG executes the
//! *same* bound nodes batch after batch, so the fix is nearly free: record what each node
//! actually produced and feed it back.
//!
//! ```text
//!   execute node ──record(fingerprint, rows, bytes, nanos)──►  CardinalityStore (on the epoch)
//!   next batch   ──apply_feedback(store)──────────────────►  snapshot costs + join hints
//! ```
//!
//! A [`CardinalityStore`] lives on the [`EpochDag`](crate::EpochDag) and survives bind-cache
//! hits (the fingerprint is the bound node's sharing key, which is stable for the epoch's
//! lifetime).  Each batch's snapshot subgraph consults it before execution:
//!
//! * scheduler priorities — observed output rows replace the static estimate in every node's
//!   cost, so the parallel scheduler's max-heap starts the *actually* expensive nodes first;
//! * build-side choice — a hash join whose observed left side is smaller than its right gets a
//!   [`JoinHint`] flipping the build side (answers stay byte-identical: the flipped join
//!   restores canonical probe order before returning);
//! * grace sizing — the observed build-side bytes feed the grace join's partition fan-out and
//!   the pool's admission reservation in place of the static `budget/4` heuristic.
//!
//! Observations decay exponentially (EWMA, α = ½), so an epoch whose data characteristics
//! drift between batches converges onto the recent truth instead of averaging over history.
//! The whole loop is togglable (`ServiceConfig.adaptive`, `urm-cli --adaptive on|off`); with
//! it off, nothing records and nothing is consulted — bit-for-bit the static behaviour.

use std::collections::HashMap;
use std::sync::Mutex;

/// Exponential-decay weight of the newest observation (older history keeps `1 - ALPHA`).
const ALPHA: f64 = 0.5;

/// One node's exponentially-decayed execution history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observed {
    /// Decayed observed output rows.
    pub rows: f64,
    /// Decayed observed output bytes (estimated in-memory footprint of the result).
    pub bytes: f64,
    /// Decayed observed execution wall-clock nanoseconds.
    pub nanos: f64,
    /// Number of executions folded in (undecayed — a recency-independent confidence signal).
    pub samples: u64,
}

impl Observed {
    /// The decayed observed row count, rounded to the cost model's integer domain.
    #[must_use]
    pub fn rows_estimate(&self) -> u64 {
        self.rows.round().max(0.0) as u64
    }

    /// The decayed observed byte count, rounded.
    #[must_use]
    pub fn bytes_estimate(&self) -> u64 {
        self.bytes.round().max(0.0) as u64
    }
}

/// Fingerprint → [`Observed`]: the epoch's memory of what its nodes actually produced.
///
/// Keys are bound-plan fingerprints ([`PhysicalPlan::fingerprint`](crate::PhysicalPlan)), the
/// same identity the bind cache and result caches use, so an observation recorded by one batch
/// is found by every later batch that re-binds (or bind-cache-hits) the same node.  Internally
/// mutexed: parallel scheduler workers record concurrently.
#[derive(Debug, Default)]
pub struct CardinalityStore {
    inner: Mutex<HashMap<u64, Observed>>,
}

impl CardinalityStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        CardinalityStore::default()
    }

    /// Folds one execution of the node identified by `fingerprint` into its decayed history.
    pub fn record(&self, fingerprint: u64, rows: u64, bytes: u64, nanos: u64) {
        let mut inner = self.inner.lock().unwrap();
        match inner.get_mut(&fingerprint) {
            Some(obs) => {
                obs.rows = (1.0 - ALPHA) * obs.rows + ALPHA * rows as f64;
                obs.bytes = (1.0 - ALPHA) * obs.bytes + ALPHA * bytes as f64;
                obs.nanos = (1.0 - ALPHA) * obs.nanos + ALPHA * nanos as f64;
                obs.samples += 1;
            }
            None => {
                inner.insert(
                    fingerprint,
                    Observed {
                        rows: rows as f64,
                        bytes: bytes as f64,
                        nanos: nanos as f64,
                        samples: 1,
                    },
                );
            }
        }
    }

    /// The decayed history of a node, if it has ever executed under recording.
    #[must_use]
    pub fn get(&self, fingerprint: u64) -> Option<Observed> {
        self.inner.lock().unwrap().get(&fingerprint).copied()
    }

    /// Number of distinct nodes observed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether nothing has been observed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }

    /// The full store contents, in fingerprint order (deterministic for carry-over folding).
    ///
    /// Used by the service layer to persist an epoch's observations past its retirement: the
    /// snapshot taken at `drop_epoch` seeds the [`CardinalityStore`] of the next epoch built
    /// over the same catalog, so cold-after-retirement batches reorder joins immediately.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(u64, Observed)> {
        let inner = self.inner.lock().unwrap();
        let mut entries: Vec<_> = inner.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_by_key(|(k, _)| *k);
        entries
    }

    /// Seeds the store with carried-over observations, folding duplicates through the same
    /// EWMA as [`record`](CardinalityStore::record) (a fingerprint already observed in this
    /// store decays towards the absorbed history's estimate).
    pub fn absorb(&self, entries: &[(u64, Observed)]) {
        let mut inner = self.inner.lock().unwrap();
        for (fingerprint, obs) in entries {
            match inner.get_mut(fingerprint) {
                Some(current) => {
                    current.rows = (1.0 - ALPHA) * current.rows + ALPHA * obs.rows;
                    current.bytes = (1.0 - ALPHA) * current.bytes + ALPHA * obs.bytes;
                    current.nanos = (1.0 - ALPHA) * current.nanos + ALPHA * obs.nanos;
                    current.samples += obs.samples;
                }
                None => {
                    inner.insert(*fingerprint, *obs);
                }
            }
        }
    }
}

/// A per-node execution hint computed from observed cardinalities (today: hash joins only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinHint {
    /// Build the hash table on the *left* (probe) side instead of the canonical right side —
    /// chosen when the observed left side is smaller.  The executor restores canonical output
    /// order, so flipping never changes the answer.
    pub build_left: bool,
    /// Observed (decayed) bytes of whichever side the hint builds on, when that side has been
    /// observed — sizes the grace join's partition fan-out and pool reservation in place of
    /// the static heuristic.
    pub build_bytes: Option<u64>,
}

/// What [`OperatorDag::apply_feedback`](crate::OperatorDag::apply_feedback) changed on a
/// batch's snapshot: the adaptive loop's visible accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedbackSummary {
    /// Nodes whose scheduling cost was replaced by an observed cardinality.
    pub observed_nodes: u64,
    /// Hash joins whose build side was flipped by observation.
    pub reordered_joins: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_is_taken_verbatim() {
        let store = CardinalityStore::new();
        store.record(7, 100, 4000, 9000);
        let obs = store.get(7).unwrap();
        assert_eq!(obs.rows_estimate(), 100);
        assert_eq!(obs.bytes_estimate(), 4000);
        assert_eq!(obs.samples, 1);
        assert!(store.get(8).is_none());
    }

    #[test]
    fn observations_decay_towards_the_recent() {
        let store = CardinalityStore::new();
        store.record(7, 100, 0, 0);
        store.record(7, 0, 0, 0);
        let obs = store.get(7).unwrap();
        assert_eq!(obs.rows_estimate(), 50, "α=½ halves the stale estimate");
        store.record(7, 0, 0, 0);
        assert_eq!(store.get(7).unwrap().rows_estimate(), 25);
        assert_eq!(store.get(7).unwrap().samples, 3);
    }

    #[test]
    fn snapshot_and_absorb_round_trip() {
        let store = CardinalityStore::new();
        store.record(2, 20, 200, 2000);
        store.record(1, 10, 100, 1000);
        let snap = store.snapshot();
        assert_eq!(snap.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![1, 2]);
        let fresh = CardinalityStore::new();
        fresh.absorb(&snap);
        assert_eq!(fresh.get(1), store.get(1));
        assert_eq!(fresh.get(2), store.get(2));
        // Absorbing into a store that already saw the node folds via the EWMA.
        let warm = CardinalityStore::new();
        warm.record(1, 30, 0, 0);
        warm.absorb(&snap);
        assert_eq!(warm.get(1).unwrap().rows_estimate(), 20);
        assert_eq!(warm.get(1).unwrap().samples, 2);
    }

    #[test]
    fn stores_are_independent_per_fingerprint() {
        let store = CardinalityStore::new();
        store.record(1, 10, 0, 0);
        store.record(2, 20, 0, 0);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(1).unwrap().rows_estimate(), 10);
        assert_eq!(store.get(2).unwrap().rows_estimate(), 20);
    }
}
