//! The bound physical-plan layer: logical [`Plan`]s compiled against a catalog.
//!
//! The logical [`Plan`] tree names columns by string (`alias.attr`) and names base relations by
//! catalog key.  Executing it directly means re-resolving every column name per operator — and,
//! before this layer existed, per *row* — and deep-copying every `Values` leaf.  Binding runs
//! that resolution exactly once:
//!
//! ```text
//!   logical Plan  ──bind()──►  PhysicalPlan  ──execute──►  row batches (Arc<Relation>)
//!   columns by name            columns by index            shared, never cloned
//!   relations by name          row buffers captured        one Vec<Tuple> per operator
//! ```
//!
//! * every column reference becomes a positional index into the input batch;
//! * every predicate is compiled to a [`BoundPredicate`] evaluated without name lookups;
//! * every scan captures the base relation's shared row buffer (`Arc<Vec<Tuple>>`), so
//!   executing a scan or a `Values` leaf hands out a *view* of existing rows, not a copy;
//! * every node carries its output [`Schema`], computed once.
//!
//! The executor then evaluates physical operators batch-at-a-time: each operator consumes its
//! children's output batches and produces one output batch, with tuple copies limited to the
//! places where new rows genuinely come into existence (projection narrowing, join
//! concatenation).  Binding errors (unknown relation, unknown projection column, unresolvable
//! join key) surface before any operator runs.
//!
//! [`PhysicalPlan::fingerprint`] identifies bound sub-plans for the shared-plan cache: two
//! queries that reformulate onto the same source sub-plan over the same row buffers share one
//! fingerprint, which is what makes cross-query sub-plan reuse zero-copy end-to-end.

use crate::plan::qualify_schema;
use crate::{AggFunc, CompareOp, EngineError, EngineResult, Plan, Predicate};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use urm_storage::{Catalog, Relation, Schema, Tuple, Value};

/// A predicate with every column reference resolved to a positional index.
///
/// Compiled once at bind time; evaluated per row with no name lookups.  A reference to a column
/// the input schema does not provide compiles to [`BoundPredicate::Never`]: a reformulated
/// predicate over an attribute a partial mapping did not cover can never be satisfied, matching
/// the by-name evaluation semantics of [`Predicate::eval`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BoundPredicate {
    /// `input[pos] op constant`.
    Compare {
        /// Position of the column in the input batch.
        pos: usize,
        /// Comparison operator.
        op: CompareOp,
        /// Constant to compare against.
        value: Value,
    },
    /// `input[left] = input[right]`.
    ColumnEq {
        /// Position of the left column.
        left: usize,
        /// Position of the right column.
        right: usize,
    },
    /// Conjunction of bound predicates (empty conjunction is `true`).
    And(Vec<BoundPredicate>),
    /// A predicate that referenced a missing column: satisfied by no row.
    Never,
}

impl BoundPredicate {
    /// Evaluates the predicate against a tuple of the batch it was bound for.
    #[inline]
    #[must_use]
    pub fn matches(&self, tuple: &Tuple) -> bool {
        match self {
            BoundPredicate::Compare { pos, op, value } => tuple
                .get(*pos)
                .map(|v| !v.is_null() && op.eval(v, value))
                .unwrap_or(false),
            BoundPredicate::ColumnEq { left, right } => {
                match (tuple.get(*left), tuple.get(*right)) {
                    (Some(a), Some(b)) => !a.is_null() && !b.is_null() && a == b,
                    _ => false,
                }
            }
            BoundPredicate::And(parts) => parts.iter().all(|p| p.matches(tuple)),
            BoundPredicate::Never => false,
        }
    }
}

/// An aggregate with its input column resolved to a position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BoundAggregate {
    /// `COUNT(*)`.
    Count,
    /// `SUM(input[pos])`; the original column name is retained for error messages.
    Sum {
        /// Position of the summed column.
        pos: usize,
        /// Qualified name of the summed column (diagnostics only).
        column: String,
    },
}

/// A bound, executable plan: columns positional, predicates compiled, schemas precomputed, base
/// row buffers captured.  Built by [`bind`]; evaluated by
/// [`Executor`](crate::Executor) batch-at-a-time.
///
/// Children are `Arc`-shared: handing a bound subtree to the shared-operator DAG, the
/// shared-plan cache or the per-epoch DAG is a pointer bump, never a deep clone — the same
/// zero-copy discipline [`Relation`] rows follow.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Scan of a base relation: a zero-copy view of the captured row buffer under the
    /// alias-qualified schema, built once at bind time so execution is a pure `Arc` clone.
    Scan {
        /// Catalog relation name (fingerprinting / display).
        relation: String,
        /// Scan alias (fingerprinting / display).
        alias: String,
        /// The base relation's row buffer under the qualified schema, sharing the catalog
        /// relation's storage.
        view: Arc<Relation>,
    },
    /// An already-materialised relation, handed out as a shared view.
    Values {
        /// The shared relation.
        rel: Arc<Relation>,
    },
    /// Filter by a compiled predicate.
    Select {
        /// Compiled predicate.
        predicate: BoundPredicate,
        /// Input operator (shared).
        input: Arc<PhysicalPlan>,
        /// Output schema (same attributes as the input).
        schema: Schema,
    },
    /// Keep the columns at `positions`, in that order.
    Project {
        /// Input positions of the output columns.
        positions: Vec<usize>,
        /// Input operator (shared).
        input: Arc<PhysicalPlan>,
        /// Output schema.
        schema: Schema,
    },
    /// Cartesian product.
    Product {
        /// Left input (shared).
        left: Arc<PhysicalPlan>,
        /// Right input (shared).
        right: Arc<PhysicalPlan>,
        /// Output schema (left ++ right).
        schema: Schema,
    },
    /// Hash equi-join on positional key pairs (`left_keys[i] = right_keys[i]`).
    HashJoin {
        /// Left input (shared).
        left: Arc<PhysicalPlan>,
        /// Right input (shared).
        right: Arc<PhysicalPlan>,
        /// Key positions in the left batch.
        left_keys: Vec<usize>,
        /// Key positions in the right batch.
        right_keys: Vec<usize>,
        /// Output schema (left ++ right).
        schema: Schema,
    },
    /// Aggregation producing a single-row batch.
    Aggregate {
        /// Bound aggregate function.
        func: BoundAggregate,
        /// Input operator (shared).
        input: Arc<PhysicalPlan>,
        /// Output schema (one attribute).
        schema: Schema,
    },
}

impl PhysicalPlan {
    /// The operator's output schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        match self {
            PhysicalPlan::Select { schema, .. }
            | PhysicalPlan::Project { schema, .. }
            | PhysicalPlan::Product { schema, .. }
            | PhysicalPlan::HashJoin { schema, .. }
            | PhysicalPlan::Aggregate { schema, .. } => schema,
            PhysicalPlan::Scan { view, .. } => view.schema(),
            PhysicalPlan::Values { rel } => rel.schema(),
        }
    }

    /// Direct children of this node, in evaluation order (allocation-free).
    pub fn children(&self) -> impl Iterator<Item = &PhysicalPlan> {
        self.children_shared().map(Arc::as_ref)
    }

    /// Direct children as their shared handles, in evaluation order.
    ///
    /// This is what the shared-operator DAG consumes: storing a child is `Arc::clone`, so a
    /// DAG node's input *is* the bound plan's child (pointer-identical), never a copy.
    pub fn children_shared(&self) -> impl Iterator<Item = &Arc<PhysicalPlan>> {
        let (a, b): (Option<&Arc<PhysicalPlan>>, Option<&Arc<PhysicalPlan>>) = match self {
            PhysicalPlan::Scan { .. } | PhysicalPlan::Values { .. } => (None, None),
            PhysicalPlan::Select { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Aggregate { input, .. } => (Some(input), None),
            PhysicalPlan::Product { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. } => (Some(left), Some(right)),
        };
        a.into_iter().chain(b)
    }

    /// The number of rows this operator is estimated to produce, given its children's
    /// estimates — from the row buffers captured at bind time (leaves are exact; operators use
    /// coarse selectivity rules).  This is the cost signal the parallel DAG scheduler orders
    /// its ready queue by; the DAG supplies the child estimates so each node's estimate is
    /// computed exactly once even when subtrees are shared.
    #[must_use]
    pub fn estimate_from(&self, child_rows: &[u64]) -> u64 {
        match self {
            PhysicalPlan::Scan { view, .. } => view.len() as u64,
            PhysicalPlan::Values { rel } => rel.len() as u64,
            // Equality-style filters are selective; keep a floor of 1 so chains of selections
            // never decay to "free".
            PhysicalPlan::Select { .. } => (child_rows[0] / 2).max(1),
            PhysicalPlan::Project { .. } => child_rows[0],
            PhysicalPlan::Product { .. } => child_rows[0].saturating_mul(child_rows[1]).max(1),
            // The common shape is a foreign-key join: output on the order of the larger side.
            PhysicalPlan::HashJoin { .. } => child_rows[0].max(child_rows[1]).max(1),
            PhysicalPlan::Aggregate { .. } => 1,
        }
    }

    /// A structural fingerprint of the *bound* plan, the sharing key of the
    /// [`SharedPlanCache`](../../urm_mqo/struct.SharedPlanCache.html).
    ///
    /// Leaves hash by identity, not content: a scan hashes its relation name, alias and the
    /// *pointer* of the captured row buffer, and a `Values` leaf hashes its schema plus the
    /// pointer of its shared row buffer.  Identity hashing makes fingerprints O(plan size)
    /// instead of O(data size) and ties every fingerprint to a concrete catalog snapshot — two
    /// epochs' scans of a same-named relation no longer collide.  The trade-off is that a cache
    /// keyed on these fingerprints must not outlive the relations its plans were bound against
    /// (the shared-plan cache is per batch/epoch, which guarantees exactly that).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hasher = DefaultHasher::new();
        self.hash_structure(&mut hasher);
        hasher.finish()
    }

    fn hash_structure(&self, h: &mut DefaultHasher) {
        match self {
            PhysicalPlan::Scan {
                relation,
                alias,
                view,
            } => {
                0u8.hash(h);
                relation.hash(h);
                alias.hash(h);
                (Arc::as_ptr(&view.shared_rows()) as usize).hash(h);
            }
            PhysicalPlan::Values { rel } => {
                1u8.hash(h);
                rel.schema().hash(h);
                (Arc::as_ptr(&rel.shared_rows()) as usize).hash(h);
            }
            PhysicalPlan::Select {
                predicate, input, ..
            } => {
                2u8.hash(h);
                predicate.hash(h);
                input.hash_structure(h);
            }
            PhysicalPlan::Project {
                positions, input, ..
            } => {
                3u8.hash(h);
                positions.hash(h);
                input.hash_structure(h);
            }
            PhysicalPlan::Product { left, right, .. } => {
                4u8.hash(h);
                left.hash_structure(h);
                right.hash_structure(h);
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                ..
            } => {
                5u8.hash(h);
                left_keys.hash(h);
                right_keys.hash(h);
                left.hash_structure(h);
                right.hash_structure(h);
            }
            PhysicalPlan::Aggregate { func, input, .. } => {
                6u8.hash(h);
                func.hash(h);
                input.hash_structure(h);
            }
        }
    }

    /// Number of operator nodes (leaves excluded), mirroring
    /// [`Plan::operator_count`](crate::Plan::operator_count).
    #[must_use]
    pub fn operator_count(&self) -> usize {
        let own = match self {
            PhysicalPlan::Scan { .. } | PhysicalPlan::Values { .. } => 0,
            _ => 1,
        };
        own + self.children().map(|c| c.operator_count()).sum::<usize>()
    }
}

/// Compiles a predicate against the schema of its input batch.
fn bind_predicate(predicate: &Predicate, schema: &Schema) -> BoundPredicate {
    match predicate {
        Predicate::Compare { column, op, value } => match schema.position(column) {
            Some(pos) => BoundPredicate::Compare {
                pos,
                op: *op,
                value: value.clone(),
            },
            None => BoundPredicate::Never,
        },
        Predicate::ColumnEq { left, right } => {
            match (schema.position(left), schema.position(right)) {
                (Some(left), Some(right)) => BoundPredicate::ColumnEq { left, right },
                _ => BoundPredicate::Never,
            }
        }
        Predicate::And(parts) => {
            let bound: Vec<BoundPredicate> =
                parts.iter().map(|p| bind_predicate(p, schema)).collect();
            if bound.iter().any(|p| matches!(p, BoundPredicate::Never)) {
                BoundPredicate::Never
            } else {
                BoundPredicate::And(bound)
            }
        }
    }
}

/// Binds a logical plan against a catalog: resolves relations to row buffers, columns to
/// positions, predicates to [`BoundPredicate`]s, and precomputes every output schema.
///
/// Every node of the returned tree is behind an `Arc` (see [`PhysicalPlan`]), so downstream
/// layers — the shared-operator DAG, the shared-plan cache, the per-epoch DAG — take over
/// subtrees by pointer, never by deep clone.
///
/// Errors that the row-at-a-time evaluator reported lazily (unknown relation, unknown
/// projection column, unresolvable join key) are reported here, before any operator executes.
/// Missing *predicate* columns are not errors — they compile to [`BoundPredicate::Never`],
/// preserving reformulation semantics.
pub fn bind(plan: &Plan, catalog: &Catalog) -> EngineResult<Arc<PhysicalPlan>> {
    match plan {
        Plan::Scan { relation, alias } => {
            let base = catalog.require(relation)?;
            // Build the qualified view once; every execution of this scan is then a pure
            // `Arc` clone of it.
            let view = Arc::new(Relation::from_shared(
                qualify_schema(base.schema(), alias),
                base.shared_rows(),
            ));
            Ok(Arc::new(PhysicalPlan::Scan {
                relation: relation.clone(),
                alias: alias.clone(),
                view,
            }))
        }
        Plan::Values(rel) => Ok(Arc::new(PhysicalPlan::Values {
            rel: Arc::clone(rel),
        })),
        Plan::Select { predicate, input } => {
            let input = bind(input, catalog)?;
            let predicate = bind_predicate(predicate, input.schema());
            Ok(Arc::new(PhysicalPlan::Select {
                predicate,
                schema: input.schema().clone(),
                input,
            }))
        }
        Plan::Project { columns, input } => {
            let input = bind(input, catalog)?;
            if columns.is_empty() {
                return Err(EngineError::InvalidPlan(
                    "projection must keep at least one column".into(),
                ));
            }
            let in_schema = input.schema();
            let mut positions = Vec::with_capacity(columns.len());
            let mut attrs = Vec::with_capacity(columns.len());
            for c in columns {
                let pos = in_schema
                    .position(c)
                    .ok_or_else(|| EngineError::UnknownColumn {
                        column: c.clone(),
                        schema: in_schema.to_string(),
                    })?;
                positions.push(pos);
                attrs.push(in_schema.attributes()[pos].clone());
            }
            let schema = Schema::new(format!("π({})", in_schema.name()), attrs);
            Ok(Arc::new(PhysicalPlan::Project {
                positions,
                schema,
                input,
            }))
        }
        Plan::Product { left, right } => {
            let left = bind(left, catalog)?;
            let right = bind(right, catalog)?;
            Ok(product_node(left, right))
        }
        Plan::HashJoin { left, right, on } => {
            let left = bind(left, catalog)?;
            let right = bind(right, catalog)?;
            if on.is_empty() {
                // Mirrors the by-name evaluator: a join with no conditions *is* the product,
                // down to the output schema name.
                return Ok(product_node(left, right));
            }
            let ls = left.schema();
            let rs = right.schema();
            let mut left_keys = Vec::with_capacity(on.len());
            let mut right_keys = Vec::with_capacity(on.len());
            for (l, r) in on {
                // Join columns may arrive in either order; resolve each against the side that
                // has it.
                let (lcol, rcol) = if ls.contains(l) && rs.contains(r) {
                    (l, r)
                } else if ls.contains(r) && rs.contains(l) {
                    (r, l)
                } else {
                    return Err(EngineError::UnknownColumn {
                        column: format!("{l} / {r}"),
                        schema: format!("{ls} ⋈ {rs}"),
                    });
                };
                left_keys.push(ls.require(lcol).map_err(EngineError::from)?);
                right_keys.push(rs.require(rcol).map_err(EngineError::from)?);
            }
            let schema = ls.product(rs, format!("{}⋈{}", ls.name(), rs.name()));
            Ok(Arc::new(PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                schema,
            }))
        }
        Plan::Aggregate { func, input } => {
            let input = bind(input, catalog)?;
            let in_schema = input.schema();
            let (func, attr) = match func {
                AggFunc::Count => (
                    BoundAggregate::Count,
                    urm_storage::Attribute::new("count", urm_storage::DataType::Int),
                ),
                AggFunc::Sum(col) => {
                    let pos =
                        in_schema
                            .position(col)
                            .ok_or_else(|| EngineError::UnknownColumn {
                                column: col.clone(),
                                schema: in_schema.to_string(),
                            })?;
                    (
                        BoundAggregate::Sum {
                            pos,
                            column: col.clone(),
                        },
                        urm_storage::Attribute::new(
                            format!("sum({col})"),
                            urm_storage::DataType::Float,
                        ),
                    )
                }
            };
            let schema = Schema::new(format!("agg({})", in_schema.name()), vec![attr]);
            Ok(Arc::new(PhysicalPlan::Aggregate {
                func,
                schema,
                input,
            }))
        }
    }
}

/// Builds a product node over two bound inputs (shared by `Product` and key-less `HashJoin`).
fn product_node(left: Arc<PhysicalPlan>, right: Arc<PhysicalPlan>) -> Arc<PhysicalPlan> {
    let schema = left.schema().product(
        right.schema(),
        format!("{}×{}", left.schema().name(), right.schema().name()),
    );
    Arc::new(PhysicalPlan::Product {
        left,
        right,
        schema,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use urm_storage::{Attribute, DataType};

    fn catalog() -> Catalog {
        let schema = Schema::new(
            "R",
            vec![
                Attribute::new("a", DataType::Int),
                Attribute::new("b", DataType::Text),
            ],
        );
        let rows = (0..4)
            .map(|i| {
                Tuple::new(vec![
                    Value::from(i as i64),
                    Value::from(if i % 2 == 0 { "x" } else { "y" }),
                ])
            })
            .collect();
        let mut cat = Catalog::new();
        cat.insert(Relation::new(schema, rows).unwrap());
        cat
    }

    #[test]
    fn bind_resolves_columns_to_positions() {
        let cat = catalog();
        let plan = Plan::scan("R")
            .select(Predicate::eq("R.b", Value::from("x")))
            .project(vec!["R.a".into()]);
        let phys = bind(&plan, &cat).unwrap();
        let PhysicalPlan::Project {
            positions, input, ..
        } = phys.as_ref()
        else {
            panic!("expected projection on top");
        };
        assert_eq!(positions, &vec![0]);
        let PhysicalPlan::Select { predicate, .. } = input.as_ref() else {
            panic!("expected selection below");
        };
        assert_eq!(
            predicate,
            &BoundPredicate::Compare {
                pos: 1,
                op: CompareOp::Eq,
                value: Value::from("x"),
            }
        );
    }

    #[test]
    fn bind_captures_the_base_row_buffer() {
        let cat = catalog();
        let phys = bind(&Plan::scan("R"), &cat).unwrap();
        let PhysicalPlan::Scan { view, .. } = phys.as_ref() else {
            panic!("expected a scan");
        };
        assert!(view.shares_rows_with(&cat.get("R").unwrap()));
    }

    #[test]
    fn missing_predicate_column_binds_to_never() {
        let cat = catalog();
        let plan = Plan::scan("R").select(Predicate::eq("R.ghost", Value::from(1i64)));
        let phys = bind(&plan, &cat).unwrap();
        let PhysicalPlan::Select { predicate, .. } = phys.as_ref() else {
            panic!("expected selection");
        };
        assert_eq!(predicate, &BoundPredicate::Never);

        let conj = Plan::scan("R").select(Predicate::And(vec![
            Predicate::eq("R.a", Value::from(1i64)),
            Predicate::column_eq("R.a", "R.ghost"),
        ]));
        let phys = bind(&conj, &cat).unwrap();
        let PhysicalPlan::Select { predicate, .. } = phys.as_ref() else {
            panic!("expected selection");
        };
        assert_eq!(predicate, &BoundPredicate::Never);
    }

    #[test]
    fn missing_projection_column_is_a_bind_error() {
        let cat = catalog();
        let plan = Plan::scan("R").project(vec!["R.ghost".into()]);
        assert!(matches!(
            bind(&plan, &cat),
            Err(EngineError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn keyless_join_binds_to_a_product() {
        let cat = catalog();
        let plan = Plan::scan("R").hash_join(Plan::scan_as("R", "S"), vec![]);
        let phys = bind(&plan, &cat).unwrap();
        assert!(matches!(phys.as_ref(), PhysicalPlan::Product { .. }));
        assert!(phys.schema().name().contains('×'));
    }

    #[test]
    fn join_keys_resolve_in_either_order() {
        let cat = catalog();
        let forward =
            Plan::scan("R").hash_join(Plan::scan_as("R", "S"), vec![("R.a".into(), "S.a".into())]);
        let swapped =
            Plan::scan("R").hash_join(Plan::scan_as("R", "S"), vec![("S.a".into(), "R.a".into())]);
        for plan in [forward, swapped] {
            let phys = bind(&plan, &cat).unwrap();
            let PhysicalPlan::HashJoin {
                left_keys,
                right_keys,
                ..
            } = phys.as_ref()
            else {
                panic!("expected a hash join");
            };
            assert_eq!(left_keys, &vec![0]);
            assert_eq!(right_keys, &vec![0]);
        }
    }

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        let cat = catalog();
        let make = || {
            bind(
                &Plan::scan("R")
                    .select(Predicate::eq("R.b", Value::from("x")))
                    .project(vec!["R.a".into()]),
                &cat,
            )
            .unwrap()
        };
        assert_eq!(make().fingerprint(), make().fingerprint());
        let scan = bind(&Plan::scan("R"), &cat).unwrap();
        assert_ne!(make().fingerprint(), scan.fingerprint());
        // An aliased scan of the same buffer is a different bound plan.
        let aliased = bind(&Plan::scan_as("R", "S"), &cat).unwrap();
        assert_ne!(scan.fingerprint(), aliased.fingerprint());
    }

    #[test]
    fn values_fingerprints_are_identity_based() {
        let rel = Relation::new(
            Schema::new("V", vec![Attribute::new("v", DataType::Int)]),
            vec![Tuple::new(vec![Value::from(1i64)])],
        )
        .unwrap();
        let shared = Arc::new(rel.clone());
        let cat = Catalog::new();
        let a = bind(&Plan::values_shared(Arc::clone(&shared)), &cat).unwrap();
        let b = bind(&Plan::values_shared(Arc::clone(&shared)), &cat).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // An equal-content relation in a *different* buffer is a different bound leaf.
        let other = bind(
            &Plan::values(rel.into_rows().into_iter().fold(
                Relation::empty(Schema::new("V", vec![Attribute::new("v", DataType::Int)])),
                |mut r, t| {
                    r.push_unchecked(t);
                    r
                },
            )),
            &cat,
        )
        .unwrap();
        assert_ne!(a.fingerprint(), other.fingerprint());
    }

    #[test]
    fn operator_count_matches_logical() {
        let cat = catalog();
        let plan = Plan::scan("R")
            .select(Predicate::eq("R.b", Value::from("x")))
            .product(Plan::scan_as("R", "S"))
            .project(vec!["R.a".into()]);
        let phys = bind(&plan, &cat).unwrap();
        assert_eq!(phys.operator_count(), plan.operator_count());
    }
}
