//! Offline shim for `serde`.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derive macros so that workspace types
//! can keep their upstream derive annotations while building without registry access.
//! The marker traits below exist so that generic code may bound on `serde::Serialize`;
//! they are implemented for every type and carry no behaviour.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented for every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
