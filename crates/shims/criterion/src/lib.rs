//! Offline shim for `criterion`.
//!
//! Supports the API subset the workspace benchmarks use: `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.  Instead of statistical sampling it times `sample_size`
//! iterations of each closure and prints the mean, which is enough to run `cargo bench`
//! without registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations, recording the total time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many iterations each benchmark closure is timed for.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    fn run_one(&self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed.as_secs_f64() * 1000.0 / b.iterations.max(1) as f64;
        println!(
            "bench {label:<40} {mean:>10.3} ms/iter ({} iters)",
            b.iterations
        );
    }

    /// Benchmarks a single closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, &mut f);
        self
    }

    /// Benchmarks a closure parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Ends the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function (subset of `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| b.iter(|| n * 2));
        group.bench_function(BenchmarkId::new("f", "x"), |b| b.iter(|| ()));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = sample_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
