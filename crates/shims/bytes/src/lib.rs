//! Offline shim for `bytes`.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`] / [`BufMut`] trait methods the storage
//! codec relies on.  Unlike the upstream crate there is no reference-counted zero-copy
//! machinery — `Bytes` owns a `Vec<u8>` plus a cursor — which is fully sufficient for the
//! in-memory snapshot use in this workspace.

use std::ops::Deref;

/// An immutable byte buffer with a read cursor (subset of `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Number of unread bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the sub-range `range` of the *remaining* bytes into a new `Bytes`.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[self.pos + range.start..self.pos + range.end].to_vec(),
            pos: 0,
        }
    }

    /// Splits off and returns the first `at` remaining bytes, advancing the cursor.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let out = Bytes {
            data: self.data[self.pos..self.pos + at].to_vec(),
            pos: 0,
        };
        self.pos += at;
        out
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// A growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` bytes preallocated.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of written bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the written bytes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

/// Read access to a byte buffer (subset of `bytes::Buf`).
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` raw bytes.
    fn copy_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_bytes(1)[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_bytes(4).try_into().unwrap())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_bytes(8).try_into().unwrap())
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.copy_bytes(8).try_into().unwrap())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.copy_bytes(8).try_into().unwrap())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.len(), "buffer underflow");
        let out = self.data[self.pos..self.pos + n].to_vec();
        self.pos += n;
        out
    }
}

/// Write access to a byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(1234);
        buf.put_i64_le(-99);
        buf.put_f64_le(2.5);
        buf.put_u64_le(u64::MAX);
        buf.put_slice(b"abc");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32_le(), 1234);
        assert_eq!(bytes.get_i64_le(), -99);
        assert_eq!(bytes.get_f64_le(), 2.5);
        assert_eq!(bytes.get_u64_le(), u64::MAX);
        assert_eq!(&bytes[..], b"abc");
        let tail = bytes.split_to(3);
        assert_eq!(&tail[..], b"abc");
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slice_is_relative_to_the_cursor() {
        let mut bytes = Bytes::from(vec![1, 2, 3, 4, 5]);
        let _ = bytes.get_u8();
        let s = bytes.slice(1..3);
        assert_eq!(&s[..], &[3, 4]);
        assert_eq!(bytes.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn reading_past_the_end_panics() {
        let mut bytes = Bytes::from(vec![1]);
        let _ = bytes.get_u32_le();
    }
}
