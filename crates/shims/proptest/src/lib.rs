//! Offline shim for `proptest`.
//!
//! A miniature property-testing harness covering the API subset the workspace tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and `any::<T>()` strategies,
//! tuple and `Vec` composition, `prop::collection::vec`, [`Just`], `prop_oneof!`, simple
//! `[class]{m,n}` string patterns, and the [`proptest!`] / `prop_assert*` macros.
//!
//! Unlike upstream proptest there is no shrinking and no failure persistence: each property
//! runs for [`ProptestConfig::cases`] deterministic pseudo-random cases and failures surface
//! as ordinary panics with the offending inputs printed by the assertion message.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is executed for.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator driving value production (xorshift*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15 | 1,
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform index in `0..n` (n > 0).
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generation strategy for values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (subset of `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (subset of `proptest::prelude::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

/// String patterns: a `&str` of the shape `[class]{m,n}` acts as a strategy producing strings
/// of `m..=n` characters drawn from the class (character ranges like `a-z` plus literals; a
/// trailing `-` is literal).  This covers the patterns used by the workspace tests; other
/// regex features are not supported and panic.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) =
            parse_pattern(self).unwrap_or_else(|| panic!("unsupported string pattern: {self:?}"));
        let len = min + rng.index(max - min + 1);
        (0..len)
            .map(|_| alphabet[rng.index(alphabet.len())])
            .collect()
    }
}

/// Parses `[class]{m,n}` into (alphabet, m, n).
fn parse_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
    if min > max {
        return None;
    }

    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo > hi {
                return None;
            }
            alphabet.extend((lo..=hi).filter(|c| c.is_ascii()));
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, min, max))
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+ );)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// A `Vec` of strategies generates element-wise (subset of proptest's `Vec<S>: Strategy`).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// A uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives (must be non-empty).
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.index(self.options.len())].generate(rng)
    }
}

/// Boxes a strategy for storage in a [`Union`] (used by `prop_oneof!`).
pub fn boxed_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min + rng.index(self.size.max - self.size.min + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` strategy with element strategy `element` and length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The `prop` namespace mirror (`prop::collection::vec` etc.).
pub mod prop {
    pub use crate::collection;
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Uniform choice among strategies (subset of `proptest::prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strategy)),+])
    };
}

/// Asserts a condition inside a property (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }` becomes a `#[test]`
/// that runs `body` for [`ProptestConfig::cases`] generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])+
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // Seed per test so properties are independent yet deterministic.
            let seed = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
                });
            let mut rng = $crate::TestRng::seed_from_u64(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let run = || $body;
                let _ = case;
                run();
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_generate_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (0usize..5).generate(&mut rng);
            assert!(v < 5);
            let v = (2u32..=4).generate(&mut rng);
            assert!((2..=4).contains(&v));
            let f = (-1.0..1.0f64).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let _ = any::<i64>().generate(&mut rng);
        }
    }

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = crate::TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = "[a-c0-1 _-]{2,5}".generate(&mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "abc01 _-".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::TestRng::seed_from_u64(3);
        let strat = (0..10u32)
            .prop_map(|x| x * 2)
            .prop_flat_map(|x| (x..x + 3).prop_map(move |y| (x, y)));
        for _ in 0..100 {
            let (x, y) = strat.generate(&mut rng);
            assert!(x % 2 == 0 && y >= x && y < x + 3);
        }
        let choice = prop_oneof![Just(1u8), Just(2u8), 5u8..7];
        for _ in 0..100 {
            let v = choice.generate(&mut rng);
            assert!([1, 2, 5, 6].contains(&v));
        }
        let vecs = prop::collection::vec(0..3u8, 1..4);
        for _ in 0..100 {
            let v = vecs.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_works(x in 0usize..10, v in prop::collection::vec(any::<i8>(), 0..5)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 5);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_works(b in any::<bool>()) {
            let flipped = !b;
            prop_assert!(b != flipped);
        }
    }
}
