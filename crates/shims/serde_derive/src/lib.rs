//! Offline shim for `serde_derive`.
//!
//! The build environment has no access to a crate registry, so the workspace vendors a
//! no-op stand-in: the derives accept the same input (including `#[serde(...)]` helper
//! attributes) and expand to nothing.  Nothing in the workspace performs actual
//! serialization; the derives exist so that type definitions can keep the upstream
//! `#[derive(Serialize, Deserialize)]` annotations verbatim.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
