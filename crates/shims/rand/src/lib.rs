//! Offline shim for `rand`.
//!
//! Implements the small API subset the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`
//! and `Rng::gen_range` over half-open ranges — on top of the public-domain xoshiro256++
//! generator.  The sequence differs from upstream `rand`, but every consumer in the workspace
//! only requires determinism per seed, which this shim provides.

use std::ops::Range;

/// Seeding support (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from the half-open range `low..high`.
    ///
    /// Panics when the range is empty, matching upstream behaviour.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one sample from `range` using `rng`.
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        // 53 uniformly distributed mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as the xoshiro authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let i = rng.gen_range(10..20);
            assert!((10..20).contains(&i));
            let f = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
