//! Structured trace spans: a thread-safe, cheaply cloneable [`Tracer`] recording nested spans
//! across threads, exported as Chrome trace-event JSON (loadable in `chrome://tracing` /
//! Perfetto) and as JSONL.
//!
//! Design constraints, in order:
//!
//! * **Off is free.**  A disabled tracer is `None` inside: [`Tracer::span`] returns an inert
//!   guard without allocating, locking or reading the clock.  Hot paths call it
//!   unconditionally.
//! * **Clone is a pointer bump.**  The tracer is an `Option<Arc<…>>`, so it rides along in
//!   executors, worker threads, buffer pools and batch options without lifetime plumbing.
//! * **Cross-thread parenting is explicit.**  Each thread keeps its own open-span stack
//!   inside the tracer (a span's parent is the innermost open span *of its thread*).  A
//!   scheduler that fans work out to workers first [sets an anchor](Tracer::set_anchor): spans
//!   started on threads with an empty stack parent to the anchor instead of floating free.
//!
//! Spans carry integer tags (`shared_by`, shard/node indices, byte counts) attached via
//! [`SpanGuard::tag`]; tag keys are `&'static str` so tagging never allocates either.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Process-wide small integer tags for threads (stable for a thread's lifetime, compact in
/// trace output — unlike `ThreadId`, which is opaque).
static NEXT_THREAD_TAG: AtomicU64 = AtomicU64::new(1);

fn thread_tag() -> u64 {
    thread_local! {
        static TAG: u64 = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
    }
    TAG.with(|t| *t)
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within the trace (1-based).
    pub id: u64,
    /// Parent span id; 0 = a root span.
    pub parent: u64,
    /// Stage name (`"batch"`, `"rewrite"`, `"node"`, `"spill_write"`, …).
    pub name: &'static str,
    /// Start, in nanoseconds since the trace began.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// The recording thread's process-wide tag.
    pub tid: u64,
    /// Integer tags (`("shared_by", 3)`, `("shard", 1)`, …).
    pub tags: Vec<(&'static str, u64)>,
}

struct TraceState {
    spans: Vec<SpanRecord>,
    /// Per-thread stacks of open span ids: the innermost is the parent of the next span
    /// started on that thread.
    stacks: HashMap<u64, Vec<u64>>,
}

struct TraceInner {
    id: String,
    start: Instant,
    next_span: AtomicU64,
    /// Fallback parent for spans started on threads with an empty local stack (worker threads
    /// inside a scheduler fan-out); 0 = none.
    anchor: AtomicU64,
    state: Mutex<TraceState>,
}

/// A handle on one trace — disabled by default, enabled with an id.  Clones share the trace.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TraceInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "Tracer({:?})", inner.id),
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// The no-op tracer (same as `Tracer::default()`): spans are inert, nothing allocates.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer recording under `id` (the `X-Trace-Id` / batch id).
    #[must_use]
    pub fn enabled(id: impl Into<String>) -> Self {
        Tracer {
            inner: Some(Arc::new(TraceInner {
                id: id.into(),
                start: Instant::now(),
                next_span: AtomicU64::new(1),
                anchor: AtomicU64::new(0),
                state: Mutex::new(TraceState {
                    spans: Vec::new(),
                    stacks: HashMap::new(),
                }),
            })),
        }
    }

    /// Whether spans are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id, when enabled.
    #[must_use]
    pub fn id(&self) -> Option<&str> {
        self.inner.as_deref().map(|inner| inner.id.as_str())
    }

    /// Opens a span; it closes (and is recorded) when the guard drops.  On a disabled tracer
    /// this is a no-op: no clock read, no lock, no allocation.
    #[must_use]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                inner: None,
                id: 0,
                parent: 0,
                name,
                start_ns: 0,
                tid: 0,
                tags: Vec::new(),
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let tid = thread_tag();
        let start_ns = u64::try_from(inner.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let parent = {
            let mut state = inner.state.lock().unwrap();
            let stack = state.stacks.entry(tid).or_default();
            let parent = match stack.last() {
                Some(&top) => top,
                None => inner.anchor.load(Ordering::Relaxed),
            };
            stack.push(id);
            parent
        };
        SpanGuard {
            inner: Some(Arc::clone(inner)),
            id,
            parent,
            name,
            start_ns,
            tid,
            tags: Vec::new(),
        }
    }

    /// Sets the fallback parent for spans started on threads with no open span of their own —
    /// call with the scheduler/execute span's [id](SpanGuard::id) before fanning work out to
    /// worker threads, and [clear](Tracer::clear_anchor) after they join.
    pub fn set_anchor(&self, span_id: u64) {
        if let Some(inner) = &self.inner {
            inner.anchor.store(span_id, Ordering::Relaxed);
        }
    }

    /// Clears the cross-thread anchor.
    pub fn clear_anchor(&self) {
        self.set_anchor(0);
    }

    /// Snapshots the recorded spans (sorted by start) as a [`TraceReport`]; `None` when
    /// disabled.  Open spans are not included — finish after the guards have dropped.
    #[must_use]
    pub fn finish(&self) -> Option<TraceReport> {
        let inner = self.inner.as_deref()?;
        let mut spans = inner.state.lock().unwrap().spans.clone();
        spans.sort_by_key(|s| (s.start_ns, s.id));
        Some(TraceReport {
            id: inner.id.clone(),
            spans,
        })
    }
}

/// An open span; records itself when dropped.  Inert (all-zero) on a disabled tracer.
pub struct SpanGuard {
    inner: Option<Arc<TraceInner>>,
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    tid: u64,
    tags: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// The span id (0 on a disabled tracer) — what [`Tracer::set_anchor`] takes.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches an integer tag (no-op when disabled — the tag vector only grows on enabled
    /// guards).
    pub fn tag(&mut self, key: &'static str, value: u64) {
        if self.inner.is_some() {
            self.tags.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let end_ns = u64::try_from(inner.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_ns: self.start_ns,
            dur_ns: end_ns.saturating_sub(self.start_ns),
            tid: self.tid,
            tags: std::mem::take(&mut self.tags),
        };
        let mut state = inner.state.lock().unwrap();
        if let Some(stack) = state.stacks.get_mut(&self.tid) {
            // Guards drop LIFO per thread in practice; tolerate out-of-order drops anyway.
            if let Some(pos) = stack.iter().rposition(|&open| open == self.id) {
                stack.remove(pos);
            }
        }
        state.spans.push(record);
    }
}

/// A finished trace: the id plus every recorded span, exportable as Chrome trace-event JSON
/// or JSONL.
#[derive(Debug, Clone)]
pub struct TraceReport {
    id: String,
    spans: Vec<SpanRecord>,
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Nanoseconds rendered as the microsecond decimal Chrome's `ts`/`dur` fields expect.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

impl TraceReport {
    /// The trace id.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The recorded spans, sorted by start time.
    #[must_use]
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// The comma-joined Chrome trace events of this report under process id `pid` (used by
    /// [`merge_chrome_json`] to lay several traces side by side in one timeline).
    #[must_use]
    pub fn chrome_events(&self, pid: u64) -> String {
        let mut out = String::new();
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(span.name);
            out.push_str("\",\"ph\":\"X\",\"ts\":");
            out.push_str(&micros(span.start_ns));
            out.push_str(",\"dur\":");
            out.push_str(&micros(span.dur_ns));
            out.push_str(&format!(",\"pid\":{pid},\"tid\":{}", span.tid));
            out.push_str(&format!(
                ",\"args\":{{\"trace\":\"{}\",\"span\":{},\"parent\":{}",
                {
                    let mut id = String::new();
                    escape_json(&self.id, &mut id);
                    id
                },
                span.id,
                span.parent
            ));
            for (key, value) in &span.tags {
                out.push_str(&format!(",\"{key}\":{value}"));
            }
            out.push_str("}}");
        }
        out
    }

    /// The whole trace as one `chrome://tracing`-loadable document.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        format!("{{\"traceEvents\":[{}]}}", self.chrome_events(1))
    }

    /// One JSON object per span, newline-separated.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            out.push_str(&self.span_json(span));
            out.push('\n');
        }
        out
    }

    /// The report as one JSON object: `{"id": …, "spans": […]}` (the `/debug/traces` shape).
    #[must_use]
    pub fn to_json_object(&self) -> String {
        let mut out = String::from("{\"id\":\"");
        escape_json(&self.id, &mut out);
        out.push_str("\",\"spans\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&self.span_json(span));
        }
        out.push_str("]}");
        out
    }

    fn span_json(&self, span: &SpanRecord) -> String {
        let mut out = format!(
            "{{\"span\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"tid\":{}",
            span.id, span.parent, span.name, span.start_ns, span.dur_ns, span.tid
        );
        out.push_str(",\"tags\":{");
        for (i, (key, value)) in span.tags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{key}\":{value}"));
        }
        out.push_str("}}");
        out
    }
}

/// Merges several reports into one Chrome trace document, one `pid` lane per trace.
#[must_use]
pub fn merge_chrome_json(reports: &[TraceReport]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (i, report) in reports.iter().enumerate() {
        let events = report.chrome_events(i as u64 + 1);
        if events.is_empty() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&events);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        assert!(tracer.id().is_none());
        let mut guard = tracer.span("batch");
        guard.tag("ignored", 1);
        assert_eq!(guard.id(), 0);
        drop(guard);
        assert!(tracer.finish().is_none());
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let tracer = Tracer::enabled("t");
        {
            let outer = tracer.span("batch");
            let outer_id = outer.id();
            {
                let mut inner = tracer.span("rewrite");
                inner.tag("queries", 3);
                assert_ne!(inner.id(), outer_id);
            }
            let _sibling = tracer.span("plan");
        }
        let report = tracer.finish().unwrap();
        assert_eq!(report.id(), "t");
        let spans = report.spans();
        assert_eq!(spans.len(), 3);
        let batch = spans.iter().find(|s| s.name == "batch").unwrap();
        let rewrite = spans.iter().find(|s| s.name == "rewrite").unwrap();
        let plan = spans.iter().find(|s| s.name == "plan").unwrap();
        assert_eq!(batch.parent, 0);
        assert_eq!(rewrite.parent, batch.id);
        assert_eq!(plan.parent, batch.id);
        assert_eq!(rewrite.tags, vec![("queries", 3)]);
        assert!(batch.dur_ns >= rewrite.dur_ns);
    }

    #[test]
    fn worker_threads_parent_to_the_anchor() {
        let tracer = Tracer::enabled("t");
        let execute = tracer.span("execute");
        tracer.set_anchor(execute.id());
        let execute_id = execute.id();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    let mut node = tracer.span("node");
                    node.tag("shared_by", 2);
                });
            }
        });
        tracer.clear_anchor();
        drop(execute);
        let report = tracer.finish().unwrap();
        let nodes: Vec<_> = report.spans().iter().filter(|s| s.name == "node").collect();
        assert_eq!(nodes.len(), 2);
        for node in nodes {
            assert_eq!(node.parent, execute_id);
        }
    }

    #[test]
    fn chrome_export_is_well_formed() {
        let tracer = Tracer::enabled("q\"uote");
        {
            let _span = tracer.span("batch");
        }
        let report = tracer.finish().unwrap();
        let chrome = report.to_chrome_json();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("q\\\"uote"), "trace id must be escaped");
        let jsonl = report.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        let merged = merge_chrome_json(&[report.clone(), report]);
        assert!(merged.contains("\"pid\":1") && merged.contains("\"pid\":2"));
    }
}
