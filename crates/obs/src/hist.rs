//! Log-bucketed latency histograms (HDR-style) and the nearest-rank percentile helpers.
//!
//! A [`Histogram`] is a fixed array of `AtomicU64` buckets covering the whole `u64` range with
//! a bounded relative error: each power of two is split into 8 linear sub-buckets, so a
//! recorded value lands in a bucket whose upper bound is at most 12.5% above it.  Recording is
//! one atomic increment plus two atomic adds — no locks, no allocation — so histograms can sit
//! on hot paths and be shared freely across worker threads.  Snapshots are plain vectors that
//! [merge](HistSnapshot::merge) bucket-wise, which is how per-shard and per-worker histograms
//! roll up into one service-wide distribution.
//!
//! The sort-based [`LatencySummary`]/[`percentile`] pair (exact nearest-rank percentiles over
//! a sample vector) lives here too: it predates the histogram and remains the right tool for
//! small bounded sample sets (per-batch reports), while the histogram serves unbounded
//! streams (per-stage, per-endpoint).  Both use the same nearest-rank convention.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per power of two: values within one octave resolve to 8 linear steps, bounding
/// the relative error of any reported quantile at `1/8 = 12.5%`.
const SUBS: usize = 8;
/// Values below `2^LINEAR_BITS` get one bucket each (exact small values).
const LINEAR_BITS: u32 = 3;
/// Total buckets: 8 exact small values + 8 sub-buckets for each of the 61 octaves `2^3..2^63`.
pub const NUM_BUCKETS: usize = SUBS + (64 - LINEAR_BITS as usize) * SUBS;

/// The bucket index a value lands in.
fn bucket_index(value: u64) -> usize {
    if value < (1 << LINEAR_BITS) {
        return value as usize;
    }
    let h = 63 - value.leading_zeros(); // h >= LINEAR_BITS
    let sub = ((value >> (h - LINEAR_BITS)) & (SUBS as u64 - 1)) as usize;
    SUBS + (h - LINEAR_BITS) as usize * SUBS + sub
}

/// The largest value that maps to `index` (inclusive) — what quantile queries report, so a
/// reported percentile never understates the true one.
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUBS {
        return index as u64;
    }
    let h = LINEAR_BITS + ((index - SUBS) / SUBS) as u32;
    let sub = ((index - SUBS) % SUBS) as u128;
    let bound = (1u128 << h) + ((sub + 1) << (h - LINEAR_BITS)) - 1;
    u64::try_from(bound).unwrap_or(u64::MAX)
}

/// A lock-free log-bucketed histogram over `u64` values (typically nanoseconds).
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value: one relaxed increment per field, no lock, no allocation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in integer nanoseconds (saturating at `u64::MAX` ≈ 584 years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A consistent-enough copy of the current state (relaxed loads; concurrent recording may
    /// skew `count` vs the buckets by in-flight increments, never by more).
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], mergeable across shards and workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Total recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The largest recorded value (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds another snapshot in bucket-wise (shard/worker roll-up).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The nearest-rank `q` quantile (`0.0..=1.0`), reported as the owning bucket's upper
    /// bound (≤ 12.5% above the true value); 0 when empty.  The exact `max` caps the answer,
    /// so `value_at_quantile(1.0) == max()`.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(index).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.value_at_quantile(0.95)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// 99.9th percentile.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.value_at_quantile(0.999)
    }

    /// The non-empty buckets as `(inclusive upper bound, cumulative count)` pairs, upper
    /// bounds strictly ascending and cumulative counts monotone — the exact series a
    /// Prometheus `_bucket`/`le` exposition needs (the final `+Inf` bucket is the writer's).
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cumulative += n;
            out.push((bucket_upper_bound(index), cumulative));
        }
        out
    }
}

/// The nearest-rank percentile of an ascending-sorted sample set; `q` is in percent
/// (`50.0` = median).  Empty input reports [`Duration::ZERO`].
#[must_use]
pub fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Exact p50/p95/p99 over a bounded sample vector (sorted here, in one place).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
}

impl LatencySummary {
    /// Summarises a sample set (consumed: sorting is done here, in one place).
    #[must_use]
    pub fn from_samples(mut samples: Vec<Duration>) -> Self {
        samples.sort_unstable();
        LatencySummary {
            p50: percentile(&samples, 50.0),
            p95: percentile(&samples, 95.0),
            p99: percentile(&samples, 99.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact_and_buckets_cover_u64() {
        for v in 0..64u64 {
            let bound = bucket_upper_bound(bucket_index(v));
            assert!(bound >= v, "bucket for {v} tops out below it");
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
        for v in 0..8u64 {
            assert_eq!(
                bucket_upper_bound(bucket_index(v)),
                v,
                "small values are exact"
            );
        }
    }

    #[test]
    fn bucket_bounds_are_strictly_increasing_and_relative_error_is_bounded() {
        let mut prev = None;
        for index in 0..NUM_BUCKETS {
            let bound = bucket_upper_bound(index);
            if let Some(p) = prev {
                assert!(bound > p, "bucket {index} bound not increasing");
            }
            prev = Some(bound);
        }
        // Any value's reported bound is within 12.5% above it.
        for v in [9u64, 100, 1_000, 123_456, 10_000_000_000, u64::MAX / 3] {
            let bound = bucket_upper_bound(bucket_index(v));
            assert!(
                bound as f64 <= v as f64 * 1.125 + 1.0,
                "error too large for {v}"
            );
        }
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        assert_eq!(s.max(), 1000);
        let p50 = s.p50();
        assert!((450..=563).contains(&p50), "p50 {p50} outside 12.5% of 500");
        let p99 = s.p99();
        assert!((980..=1000).contains(&p99), "p99 {p99} off");
        assert_eq!(s.value_at_quantile(1.0), 1000, "q=1.0 is the exact max");
        assert_eq!(
            HistSnapshot::default().p999(),
            0,
            "empty histogram quantiles are 0"
        );
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 1000);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 200);
        assert_eq!(merged.max(), 99_000);
        let cumulative = merged.cumulative_buckets();
        assert_eq!(
            cumulative.last().unwrap().1,
            200,
            "cumulative tops out at count"
        );
        let mut prev = (0u64, 0u64);
        for &(le, n) in &cumulative {
            assert!(le > prev.0 || prev == (0, 0), "le series must ascend");
            assert!(n >= prev.1, "cumulative counts must be monotone");
            prev = (le, n);
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for v in 0..10_000u64 {
                        h.record(v + t);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 40_000);
    }

    #[test]
    fn percentiles_use_nearest_rank_and_survive_empty_samples() {
        let samples: Vec<Duration> = (1..=100).rev().map(Duration::from_millis).collect();
        let summary = LatencySummary::from_samples(samples);
        assert_eq!(summary.p50, Duration::from_millis(50));
        assert_eq!(summary.p95, Duration::from_millis(95));
        assert_eq!(summary.p99, Duration::from_millis(99));
        assert_eq!(
            LatencySummary::from_samples(Vec::new()),
            LatencySummary::default()
        );
        let single = LatencySummary::from_samples(vec![Duration::from_millis(7)]);
        assert_eq!(single.p50, Duration::from_millis(7));
        assert_eq!(single.p99, Duration::from_millis(7));
    }
}
