//! Prometheus text-exposition rendering (version 0.0.4): counters, gauges and histogram
//! `_bucket`/`_sum`/`_count` series, written by hand so the workspace stays dependency-free.

use crate::hist::HistSnapshot;

/// How a metric behaves over time — what the `# TYPE` line declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing.
    Counter,
    /// Goes up and down.
    Gauge,
}

impl MetricKind {
    fn type_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// Renders one `f64` the way Prometheus samples are conventionally written: integers without
/// a decimal point, everything else in plain decimal.
fn sample(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 9e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// An exposition document under construction.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty document.
    #[must_use]
    pub fn new() -> Self {
        PromWriter::default()
    }

    /// One single-sample metric with its `# HELP`/`# TYPE` header.
    pub fn metric(&mut self, name: &str, kind: MetricKind, help: &str, value: f64) {
        self.header(name, kind, help);
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(&sample(value));
        self.out.push('\n');
    }

    /// A histogram family: one `# HELP`/`# TYPE histogram` header, then per labelled series
    /// the cumulative `_bucket{…,le="…"}` samples (ending with `le="+Inf"`), `_sum` and
    /// `_count`.  `label` is the label name shared by every series (e.g. `stage`).
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        series: &[(&str, &HistSnapshot)],
    ) {
        self.out
            .push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
        for (value, snapshot) in series {
            let sel = format!("{label}=\"{value}\"");
            for (le, cumulative) in snapshot.cumulative_buckets() {
                self.out.push_str(&format!(
                    "{name}_bucket{{{sel},le=\"{le}\"}} {cumulative}\n"
                ));
            }
            self.out.push_str(&format!(
                "{name}_bucket{{{sel},le=\"+Inf\"}} {}\n",
                snapshot.count()
            ));
            self.out
                .push_str(&format!("{name}_sum{{{sel}}} {}\n", snapshot.sum()));
            self.out
                .push_str(&format!("{name}_count{{{sel}}} {}\n", snapshot.count()));
        }
    }

    fn header(&mut self, name: &str, kind: MetricKind, help: &str) {
        self.out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} {}\n",
            kind.type_name()
        ));
    }

    /// The finished exposition body.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn counters_gauges_and_histograms_render() {
        let h = Histogram::new();
        for v in [5u64, 50, 500] {
            h.record(v);
        }
        let snapshot = h.snapshot();
        let mut w = PromWriter::new();
        w.metric("urm_batches", MetricKind::Counter, "batches run", 3.0);
        w.metric("urm_rate", MetricKind::Gauge, "a ratio", 0.25);
        w.histogram(
            "urm_stage_duration_ns",
            "per-stage latency",
            "stage",
            &[("rewrite", &snapshot)],
        );
        let body = w.finish();
        assert!(body.contains("# TYPE urm_batches counter\nurm_batches 3\n"));
        assert!(body.contains("urm_rate 0.25\n"));
        assert!(body.contains("urm_stage_duration_ns_bucket{stage=\"rewrite\",le=\"+Inf\"} 3\n"));
        assert!(body.contains("urm_stage_duration_ns_sum{stage=\"rewrite\"} 555\n"));
        assert!(body.contains("urm_stage_duration_ns_count{stage=\"rewrite\"} 3\n"));
        // The cumulative bucket series must be monotone and end at the count.
        let buckets: Vec<u64> = body
            .lines()
            .filter(|l| l.contains("_bucket{stage=\"rewrite\",le=\"") && !l.contains("+Inf"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*buckets.last().unwrap(), 3);
    }
}
