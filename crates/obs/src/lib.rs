//! # urm-obs
//!
//! The dependency-free observability layer of the URM workspace: every crate above
//! `urm-storage` reports through the three primitives here, and nothing here depends on any
//! other workspace crate (it sits below `urm-storage` in the stack).
//!
//! * [`trace`] — structured trace spans: a cheaply cloneable [`Tracer`] records nested,
//!   cross-thread spans (batch → rewrite/plan → per-DAG-node execute, spill I/O, grace
//!   partitioning, shard scatter/execute/gather, admission) and exports them as Chrome
//!   trace-event JSON or JSONL.  A disabled tracer is a no-op: no allocation, no lock, no
//!   clock read on the hot path — `obs_bench` holds the overhead to that.
//! * [`hist`] — HDR-style log-bucketed [`Histogram`]s (fixed bucket array, lock-free atomic
//!   increments, ≤ 12.5% relative error) for per-stage and per-endpoint latency, merged
//!   across shards and workers via [`HistSnapshot::merge`]; plus the exact sort-based
//!   [`LatencySummary`]/[`percentile`] pair for bounded sample sets.
//! * [`prom`] — Prometheus text-exposition rendering ([`PromWriter`]): counters, gauges and
//!   histogram `_bucket`/`_sum`/`_count` series for `GET /metrics`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod hist;
pub mod prom;
pub mod trace;

pub use hist::{percentile, HistSnapshot, Histogram, LatencySummary};
pub use prom::{MetricKind, PromWriter};
pub use trace::{merge_chrome_json, SpanGuard, SpanRecord, TraceReport, Tracer};
