//! Columnar relation layout: typed per-column vectors with null bitmaps.
//!
//! The engine's hot operators (predicate evaluation, hash join build/probe, aggregate folds)
//! spend most of their time matching on the [`Value`] enum one cell at a time.  A
//! [`ColumnarRelation`] re-shapes a row [`Relation`] into per-column typed vectors — `i64`,
//! `f64` and `bool` columns as flat vectors plus null bitmaps, text columns
//! dictionary-encoded as `u32` codes — so those operators can run as tight per-column loops
//! driven by selection vectors.  Columns are classified by the *values actually present*
//! (not the declared schema type): a column whose non-null values are all `Int` becomes an
//! [`Column::Int`] vector even if the schema declares `Float` (which accepts ints).  Columns
//! mixing variants, and text columns whose distinct-string count overflows the dictionary
//! limit, fall back to [`Column::Mixed`] plain value storage — so reconstruction via
//! [`Column::value_at`] is always *exactly* the original [`Value`] sequence, bit-for-bit
//! (float NaN payloads and `-0.0` included).
//!
//! The row buffer stays the interchange format: a `ColumnarRelation` keeps a strong reference
//! to the `Arc<Vec<Tuple>>` it was built from, so engines can hand out zero-copy row views of
//! a scanned base relation while running the columnar kernels, and caches can key conversions
//! by buffer identity.

use crate::dictionary::{Dictionary, DEFAULT_DICT_LIMIT};
use crate::{Relation, Tuple, Value};
use std::sync::Arc;

/// A fixed-length bitmap marking null slots of a column (bit set = NULL).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NullBitmap {
    words: Vec<u64>,
    len: usize,
}

impl NullBitmap {
    /// An all-valid bitmap over `len` slots.
    #[must_use]
    pub fn new(len: usize) -> Self {
        NullBitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Rebuilds a bitmap from its packed words (decoded spill segments).  Bits past `len` are
    /// cleared so equality and null counts stay well defined.
    #[must_use]
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        words.resize(len.div_ceil(64), 0);
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        NullBitmap { words, len }
    }

    /// Marks slot `i` as null.
    pub fn set_null(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether slot `i` is null (out-of-range slots read as valid).
    #[must_use]
    pub fn is_null(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of null slots.
    #[must_use]
    pub fn count_nulls(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The packed words (64 slots per word, LSB first).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// One column of a [`ColumnarRelation`]: a typed flat vector, or plain values when the column
/// mixes variants.  Null slots of typed columns hold a placeholder (`0` / `0.0` / `false` /
/// code `0`) and are masked by the bitmap.
#[derive(Debug, Clone)]
pub enum Column {
    /// All non-null values are `Value::Int`.
    Int {
        /// Per-row integers (placeholder `0` in null slots).
        values: Vec<i64>,
        /// Null mask, if the column has any nulls.
        nulls: Option<NullBitmap>,
    },
    /// All non-null values are `Value::Float`.
    Float {
        /// Per-row floats, bit-exact (placeholder `0.0` in null slots).
        values: Vec<f64>,
        /// Null mask, if the column has any nulls.
        nulls: Option<NullBitmap>,
    },
    /// All non-null values are `Value::Bool`.
    Bool {
        /// Per-row booleans (placeholder `false` in null slots).
        values: Vec<bool>,
        /// Null mask, if the column has any nulls.
        nulls: Option<NullBitmap>,
    },
    /// All non-null values are `Value::Text`, dictionary-encoded.
    Text {
        /// Per-row dictionary codes (placeholder `0` in null slots).
        codes: Vec<u32>,
        /// The column's dictionary (shared between gathered views of the column).
        dict: Arc<Dictionary>,
        /// Null mask, if the column has any nulls.
        nulls: Option<NullBitmap>,
    },
    /// Fallback: mixed variants or dictionary overflow — the values verbatim.
    Mixed(Vec<Value>),
}

impl Column {
    /// Builds a column from a materialised value vector, classifying by the variants actually
    /// present.  `dict_limit` bounds the text dictionary; overflow falls back to
    /// [`Column::Mixed`].
    #[must_use]
    pub fn from_values(values: Vec<Value>, dict_limit: usize) -> Column {
        #[derive(PartialEq, Clone, Copy)]
        enum Kind {
            Unknown,
            Int,
            Float,
            Bool,
            Text,
        }
        let mut kind = Kind::Unknown;
        let mut has_null = false;
        for v in &values {
            let this = match v {
                Value::Null => {
                    has_null = true;
                    continue;
                }
                Value::Int(_) => Kind::Int,
                Value::Float(_) => Kind::Float,
                Value::Bool(_) => Kind::Bool,
                Value::Text(_) => Kind::Text,
            };
            if kind == Kind::Unknown {
                kind = this;
            } else if kind != this {
                return Column::Mixed(values);
            }
        }
        let n = values.len();
        let mut nulls = if has_null {
            Some(NullBitmap::new(n))
        } else {
            None
        };
        let mark = |nulls: &mut Option<NullBitmap>, i: usize| {
            if let Some(b) = nulls.as_mut() {
                b.set_null(i);
            }
        };
        match kind {
            // An all-null column is a degenerate int column under a full mask.
            Kind::Unknown | Kind::Int => {
                let mut out = Vec::with_capacity(n);
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Int(x) => out.push(*x),
                        _ => {
                            out.push(0);
                            mark(&mut nulls, i);
                        }
                    }
                }
                Column::Int { values: out, nulls }
            }
            Kind::Float => {
                let mut out = Vec::with_capacity(n);
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Float(x) => out.push(*x),
                        _ => {
                            out.push(0.0);
                            mark(&mut nulls, i);
                        }
                    }
                }
                Column::Float { values: out, nulls }
            }
            Kind::Bool => {
                let mut out = Vec::with_capacity(n);
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Bool(x) => out.push(*x),
                        _ => {
                            out.push(false);
                            mark(&mut nulls, i);
                        }
                    }
                }
                Column::Bool { values: out, nulls }
            }
            Kind::Text => {
                let mut dict = Dictionary::new();
                let mut codes = Vec::with_capacity(n);
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Text(s) => match dict.intern_within(s, dict_limit) {
                            Some(code) => codes.push(code),
                            None => return Column::Mixed(values),
                        },
                        _ => {
                            codes.push(0);
                            mark(&mut nulls, i);
                        }
                    }
                }
                Column::Text {
                    codes,
                    dict: Arc::new(dict),
                    nulls,
                }
            }
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Column::Int { values, .. } => values.len(),
            Column::Float { values, .. } => values.len(),
            Column::Bool { values, .. } => values.len(),
            Column::Text { codes, .. } => codes.len(),
            Column::Mixed(values) => values.len(),
        }
    }

    /// Whether the column has zero rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether slot `i` is null.
    #[must_use]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Column::Int { nulls, .. }
            | Column::Float { nulls, .. }
            | Column::Bool { nulls, .. }
            | Column::Text { nulls, .. } => nulls.as_ref().is_some_and(|b| b.is_null(i)),
            Column::Mixed(values) => values.get(i).is_some_and(Value::is_null),
        }
    }

    /// Reconstructs the exact original [`Value`] at slot `i` (panics if out of range).
    #[must_use]
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::Int { values, nulls } => {
                if nulls.as_ref().is_some_and(|b| b.is_null(i)) {
                    Value::Null
                } else {
                    Value::Int(values[i])
                }
            }
            Column::Float { values, nulls } => {
                if nulls.as_ref().is_some_and(|b| b.is_null(i)) {
                    Value::Null
                } else {
                    Value::Float(values[i])
                }
            }
            Column::Bool { values, nulls } => {
                if nulls.as_ref().is_some_and(|b| b.is_null(i)) {
                    Value::Null
                } else {
                    Value::Bool(values[i])
                }
            }
            Column::Text { codes, dict, nulls } => {
                if nulls.as_ref().is_some_and(|b| b.is_null(i)) {
                    Value::Null
                } else {
                    Value::Text(Arc::clone(
                        dict.get(codes[i]).expect("dictionary code in range"),
                    ))
                }
            }
            Column::Mixed(values) => values[i].clone(),
        }
    }

    /// Builds a new column holding the slots at `sel`, in that order (join/select outputs).
    /// Text columns share the dictionary of the source column.
    #[must_use]
    pub fn gather(&self, sel: &[u32]) -> Column {
        fn gather_nulls(nulls: Option<&NullBitmap>, sel: &[u32]) -> Option<NullBitmap> {
            let src = nulls?;
            let mut out = NullBitmap::new(sel.len());
            let mut any = false;
            for (i, &s) in sel.iter().enumerate() {
                if src.is_null(s as usize) {
                    out.set_null(i);
                    any = true;
                }
            }
            any.then_some(out)
        }
        match self {
            Column::Int { values, nulls } => Column::Int {
                values: sel.iter().map(|&i| values[i as usize]).collect(),
                nulls: gather_nulls(nulls.as_ref(), sel),
            },
            Column::Float { values, nulls } => Column::Float {
                values: sel.iter().map(|&i| values[i as usize]).collect(),
                nulls: gather_nulls(nulls.as_ref(), sel),
            },
            Column::Bool { values, nulls } => Column::Bool {
                values: sel.iter().map(|&i| values[i as usize]).collect(),
                nulls: gather_nulls(nulls.as_ref(), sel),
            },
            Column::Text { codes, dict, nulls } => Column::Text {
                codes: sel.iter().map(|&i| codes[i as usize]).collect(),
                dict: Arc::clone(dict),
                nulls: gather_nulls(nulls.as_ref(), sel),
            },
            Column::Mixed(values) => {
                Column::Mixed(sel.iter().map(|&i| values[i as usize].clone()).collect())
            }
        }
    }
}

/// A row relation re-shaped into typed columns, pinned to the row buffer it was built from.
///
/// Columns are positional and carry no attribute names: the same buffer scanned under
/// different aliases (renamed schemas) shares one columnar conversion.
#[derive(Debug, Clone)]
pub struct ColumnarRelation {
    source: Arc<Vec<Tuple>>,
    columns: Vec<Arc<Column>>,
}

impl ColumnarRelation {
    /// Converts a relation using the default dictionary limit.
    #[must_use]
    pub fn from_relation(rel: &Relation) -> Self {
        ColumnarRelation::from_relation_with_limit(rel, DEFAULT_DICT_LIMIT)
    }

    /// Converts a relation, bounding each text column's dictionary at `dict_limit` distinct
    /// strings (overflowing columns stay as plain values).
    #[must_use]
    pub fn from_relation_with_limit(rel: &Relation, dict_limit: usize) -> Self {
        let arity = rel.schema().arity();
        let source = rel.shared_rows();
        let columns = (0..arity)
            .map(|pos| {
                let values: Vec<Value> = source
                    .iter()
                    .map(|t| t.get(pos).cloned().unwrap_or(Value::Null))
                    .collect();
                Arc::new(Column::from_values(values, dict_limit))
            })
            .collect();
        ColumnarRelation { source, columns }
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.source.len()
    }

    /// Whether the relation has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.source.is_empty()
    }

    /// Number of columns.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The column at position `pos`.
    #[must_use]
    pub fn column(&self, pos: usize) -> Option<&Arc<Column>> {
        self.columns.get(pos)
    }

    /// All columns in position order.
    #[must_use]
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// The row buffer this conversion was built from (a pointer bump).
    #[must_use]
    pub fn source(&self) -> Arc<Vec<Tuple>> {
        Arc::clone(&self.source)
    }

    /// Whether this conversion was built from the given relation's row buffer.
    #[must_use]
    pub fn matches_buffer(&self, rel: &Relation) -> bool {
        Arc::ptr_eq(&self.source, &rel.shared_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, DataType, Schema};

    fn rel(rows: Vec<Vec<Value>>) -> Relation {
        let arity = rows.first().map_or(0, Vec::len);
        let attrs = (0..arity)
            .map(|i| Attribute::new(format!("c{i}"), DataType::Null))
            .collect();
        Relation::from_validated(
            Schema::new("T", attrs),
            rows.into_iter().map(Tuple::new).collect(),
        )
    }

    fn reconstruct(col: &ColumnarRelation) -> Vec<Vec<Value>> {
        (0..col.len())
            .map(|i| {
                (0..col.arity())
                    .map(|p| col.column(p).unwrap().value_at(i))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn typed_columns_classify_by_actual_variants() {
        let r = rel(vec![
            vec![
                Value::from(1i64),
                Value::from(1.5),
                Value::from(true),
                Value::from("a"),
            ],
            vec![
                Value::from(2i64),
                Value::from(-0.0),
                Value::from(false),
                Value::from("b"),
            ],
        ]);
        let c = ColumnarRelation::from_relation(&r);
        assert!(matches!(&**c.column(0).unwrap(), Column::Int { .. }));
        assert!(matches!(&**c.column(1).unwrap(), Column::Float { .. }));
        assert!(matches!(&**c.column(2).unwrap(), Column::Bool { .. }));
        assert!(matches!(&**c.column(3).unwrap(), Column::Text { .. }));
    }

    #[test]
    fn reconstruction_is_exact_including_nulls_and_float_bits() {
        let rows = vec![
            vec![Value::from(7i64), Value::Float(-0.0), Value::from("x")],
            vec![Value::Null, Value::Float(f64::NAN), Value::Null],
            vec![Value::from(-3i64), Value::Float(2.5), Value::from("x")],
        ];
        let r = rel(rows.clone());
        let c = ColumnarRelation::from_relation(&r);
        let back = reconstruct(&c);
        for (orig, got) in rows.iter().zip(&back) {
            for (o, g) in orig.iter().zip(got) {
                // Bit-exact: compare through the total order AND the variant.
                assert_eq!(o, g);
                assert_eq!(o.data_type(), g.data_type());
                if let (Value::Float(a), Value::Float(b)) = (o, g) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn mixed_variants_fall_back_to_plain_values() {
        let r = rel(vec![vec![Value::from(1i64)], vec![Value::from("one")]]);
        let c = ColumnarRelation::from_relation(&r);
        assert!(matches!(&**c.column(0).unwrap(), Column::Mixed(_)));
        assert_eq!(reconstruct(&c)[1][0], Value::from("one"));
    }

    #[test]
    fn int_and_float_mix_is_not_coerced() {
        // 1i64 == 1.0f64 under Value's cross-type equality, but the columnar layout must keep
        // the variants distinct — coercing would change hash-join and rendering semantics.
        let r = rel(vec![vec![Value::from(1i64)], vec![Value::from(1.0)]]);
        let c = ColumnarRelation::from_relation(&r);
        assert!(matches!(&**c.column(0).unwrap(), Column::Mixed(_)));
    }

    #[test]
    fn all_null_column_reconstructs_nulls() {
        let r = rel(vec![vec![Value::Null], vec![Value::Null]]);
        let c = ColumnarRelation::from_relation(&r);
        assert_eq!(reconstruct(&c), vec![vec![Value::Null], vec![Value::Null]]);
    }

    #[test]
    fn dictionary_overflow_falls_back_to_plain_values() {
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::text(format!("s{i}"))])
            .collect();
        let r = rel(rows.clone());
        let c = ColumnarRelation::from_relation_with_limit(&r, 4);
        assert!(matches!(&**c.column(0).unwrap(), Column::Mixed(_)));
        assert_eq!(reconstruct(&c), rows);
        // A generous limit dictionary-encodes the same column.
        let c = ColumnarRelation::from_relation_with_limit(&r, 64);
        assert!(matches!(&**c.column(0).unwrap(), Column::Text { .. }));
        assert_eq!(reconstruct(&c), rows);
    }

    #[test]
    fn gather_reorders_and_masks_nulls() {
        let r = rel(vec![
            vec![Value::from(10i64)],
            vec![Value::Null],
            vec![Value::from(30i64)],
        ]);
        let c = ColumnarRelation::from_relation(&r);
        let g = c.column(0).unwrap().gather(&[2, 1, 0, 2]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.value_at(0), Value::from(30i64));
        assert_eq!(g.value_at(1), Value::Null);
        assert_eq!(g.value_at(2), Value::from(10i64));
        assert_eq!(g.value_at(3), Value::from(30i64));
        // Gathering only valid slots drops the bitmap.
        let g = c.column(0).unwrap().gather(&[0, 2]);
        assert!(matches!(g, Column::Int { nulls: None, .. }));
    }

    #[test]
    fn conversion_pins_the_source_buffer() {
        let r = rel(vec![vec![Value::from(1i64)]]);
        let c = ColumnarRelation::from_relation(&r);
        assert!(c.matches_buffer(&r));
        assert!(c.matches_buffer(&r.renamed("Alias")));
        let other = rel(vec![vec![Value::from(1i64)]]);
        assert!(!c.matches_buffer(&other));
    }

    #[test]
    fn bitmap_marks_and_counts() {
        let mut b = NullBitmap::new(130);
        b.set_null(0);
        b.set_null(64);
        b.set_null(129);
        assert!(b.is_null(0) && b.is_null(64) && b.is_null(129));
        assert!(!b.is_null(1) && !b.is_null(128));
        assert_eq!(b.count_nulls(), 3);
        let rebuilt = NullBitmap::from_words(b.words().to_vec(), 130);
        assert_eq!(rebuilt, b);
        // Stray bits past `len` are cleared on rebuild.
        let noisy = NullBitmap::from_words(vec![u64::MAX], 3);
        assert_eq!(noisy.count_nulls(), 3);
    }
}
