//! Materialised relations (schema + rows).

use crate::{Schema, StorageError, StorageResult, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A materialised relation: a schema plus a bag (multiset) of tuples.
///
/// Relations are bags, not sets: the paper's query semantics removes duplicates only during the
/// final probabilistic aggregation step (or not at all, if the caller asks for bag semantics),
/// so the storage layer never deduplicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    #[must_use]
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Creates a relation from a schema and pre-built rows.
    ///
    /// Row arity is validated; value types are checked against the schema.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> StorageResult<Self> {
        let mut rel = Relation::empty(schema);
        rel.rows.reserve(rows.len());
        for row in rows {
            rel.push(row)?;
        }
        Ok(rel)
    }

    /// Creates a relation without validating rows (used by the engine for derived results whose
    /// tuples are constructed from already-validated inputs).
    #[must_use]
    pub fn from_validated(schema: Schema, rows: Vec<Tuple>) -> Self {
        Relation { schema, rows }
    }

    /// The relation's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows as a slice.
    #[must_use]
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Consumes the relation, returning its rows.
    #[must_use]
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    /// Appends a tuple after validating arity and types.
    pub fn push(&mut self, tuple: Tuple) -> StorageResult<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        for (attr, value) in self.schema.attributes().iter().zip(tuple.iter()) {
            if !attr.data_type.accepts(value.data_type()) {
                return Err(StorageError::TypeMismatch {
                    relation: self.schema.name().to_string(),
                    attribute: attr.name.clone(),
                    expected: attr.data_type,
                    actual: value.data_type(),
                });
            }
        }
        self.rows.push(tuple);
        Ok(())
    }

    /// Appends a tuple without validation (engine-internal fast path).
    pub fn push_unchecked(&mut self, tuple: Tuple) {
        self.rows.push(tuple);
    }

    /// Iterates over the rows.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Returns the column of values for an attribute.
    pub fn column(&self, attr: &str) -> StorageResult<Vec<Value>> {
        let pos = self.schema.require(attr)?;
        Ok(self
            .rows
            .iter()
            .map(|t| t.get(pos).cloned().unwrap_or(Value::Null))
            .collect())
    }

    /// Returns a relation with the same rows but a renamed schema (aliased scan).
    #[must_use]
    pub fn renamed(&self, name: impl Into<String>) -> Relation {
        Relation {
            schema: self.schema.renamed(name),
            rows: self.rows.clone(),
        }
    }

    /// An estimate of the in-memory footprint in bytes, used by the experiment harness to
    /// report database sizes comparable to the paper's "database size (MB)" axis.
    #[must_use]
    pub fn estimated_bytes(&self) -> usize {
        let mut total = 0usize;
        for row in &self.rows {
            for v in row.iter() {
                total += match v {
                    Value::Null => 1,
                    Value::Int(_) => 8,
                    Value::Float(_) => 8,
                    Value::Bool(_) => 1,
                    Value::Text(s) => s.len() + 8,
                };
            }
        }
        total
    }
}

// `Value` has a total equality (floats via `total_cmp`), so relation equality is a true
// equivalence and relations can be hashed — query plans embedding materialised relations rely
// on this for sub-expression fingerprinting.
impl Eq for Relation {}

impl std::hash::Hash for Relation {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.schema.hash(state);
        self.rows.hash(state);
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, DataType};

    fn schema() -> Schema {
        Schema::new(
            "Customer",
            vec![
                Attribute::new("cid", DataType::Int),
                Attribute::new("cname", DataType::Text),
            ],
        )
    }

    #[test]
    fn push_validates_arity() {
        let mut rel = Relation::empty(schema());
        let err = rel.push(Tuple::new(vec![Value::from(1i64)])).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn push_validates_types() {
        let mut rel = Relation::empty(schema());
        let err = rel
            .push(Tuple::new(vec![Value::from("oops"), Value::from("x")]))
            .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn push_accepts_null_anywhere() {
        let mut rel = Relation::empty(schema());
        rel.push(Tuple::new(vec![Value::Null, Value::Null]))
            .unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn column_extraction() {
        let rel = Relation::new(
            schema(),
            vec![
                Tuple::new(vec![Value::from(1i64), Value::from("Alice")]),
                Tuple::new(vec![Value::from(2i64), Value::from("Bob")]),
            ],
        )
        .unwrap();
        let names = rel.column("cname").unwrap();
        assert_eq!(names, vec![Value::from("Alice"), Value::from("Bob")]);
        assert!(rel.column("ghost").is_err());
    }

    #[test]
    fn renamed_preserves_rows() {
        let rel = Relation::new(
            schema(),
            vec![Tuple::new(vec![Value::from(1i64), Value::from("Alice")])],
        )
        .unwrap();
        let aliased = rel.renamed("Customer1");
        assert_eq!(aliased.schema().name(), "Customer1");
        assert_eq!(aliased.len(), 1);
    }

    #[test]
    fn estimated_bytes_grows_with_rows() {
        let mut rel = Relation::empty(schema());
        let empty_size = rel.estimated_bytes();
        rel.push(Tuple::new(vec![Value::from(1i64), Value::from("Alice")]))
            .unwrap();
        assert!(rel.estimated_bytes() > empty_size);
    }

    #[test]
    fn relations_are_bags() {
        let mut rel = Relation::empty(schema());
        let row = Tuple::new(vec![Value::from(1i64), Value::from("Alice")]);
        rel.push(row.clone()).unwrap();
        rel.push(row).unwrap();
        assert_eq!(rel.len(), 2);
    }
}
