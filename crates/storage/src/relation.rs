//! Materialised relations (schema + rows).

use crate::{Schema, StorageError, StorageResult, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A materialised relation: a schema plus a bag (multiset) of tuples.
///
/// Relations are bags, not sets: the paper's query semantics removes duplicates only during the
/// final probabilistic aggregation step (or not at all, if the caller asks for bag semantics),
/// so the storage layer never deduplicates.
///
/// The row storage is `Arc`-backed: cloning a relation, renaming it (aliased scans) or handing
/// it to another operator shares the underlying row buffer instead of copying it.  Mutation
/// ([`push`](Relation::push)) is copy-on-write — a relation whose rows are shared copies them
/// once before appending — so sharing is invisible to code that builds relations row by row.
/// [`shares_rows_with`](Relation::shares_rows_with) exposes buffer identity for the zero-copy
/// regression tests of the engine and cache layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relation {
    schema: Schema,
    rows: Arc<Vec<Tuple>>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    #[must_use]
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Arc::new(Vec::new()),
        }
    }

    /// Creates a relation from a schema and pre-built rows.
    ///
    /// Row arity is validated; value types are checked against the schema.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> StorageResult<Self> {
        let mut rel = Relation::empty(schema);
        Arc::make_mut(&mut rel.rows).reserve(rows.len());
        for row in rows {
            rel.push(row)?;
        }
        Ok(rel)
    }

    /// Creates a relation without validating rows (used by the engine for derived results whose
    /// tuples are constructed from already-validated inputs).
    #[must_use]
    pub fn from_validated(schema: Schema, rows: Vec<Tuple>) -> Self {
        Relation {
            schema,
            rows: Arc::new(rows),
        }
    }

    /// Creates a relation over an already-shared row buffer without copying it.
    ///
    /// This is the zero-copy constructor of the engine's physical plan layer: scans and cached
    /// sub-plan results wrap the same `Arc<Vec<Tuple>>` under different schemas (aliased scans)
    /// instead of materialising per-operator copies.  Rows are not validated against the schema.
    #[must_use]
    pub fn from_shared(schema: Schema, rows: Arc<Vec<Tuple>>) -> Self {
        Relation { schema, rows }
    }

    /// The shared row buffer (a pointer bump, never a copy).
    #[must_use]
    pub fn shared_rows(&self) -> Arc<Vec<Tuple>> {
        Arc::clone(&self.rows)
    }

    /// Whether two relations share the same underlying row buffer.
    ///
    /// Used by regression tests to prove that scans, `Values` plans and sub-plan cache hits
    /// hand out views rather than deep copies.
    #[must_use]
    pub fn shares_rows_with(&self, other: &Relation) -> bool {
        Arc::ptr_eq(&self.rows, &other.rows)
    }

    /// The relation's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows as a slice.
    #[must_use]
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Consumes the relation, returning its rows (copied only if the buffer is shared).
    #[must_use]
    pub fn into_rows(self) -> Vec<Tuple> {
        Arc::try_unwrap(self.rows).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Appends a tuple after validating arity and types.
    pub fn push(&mut self, tuple: Tuple) -> StorageResult<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        for (attr, value) in self.schema.attributes().iter().zip(tuple.iter()) {
            if !attr.data_type.accepts(value.data_type()) {
                return Err(StorageError::TypeMismatch {
                    relation: self.schema.name().to_string(),
                    attribute: attr.name.clone(),
                    expected: attr.data_type,
                    actual: value.data_type(),
                });
            }
        }
        Arc::make_mut(&mut self.rows).push(tuple);
        Ok(())
    }

    /// Appends a tuple without validation (engine-internal fast path).
    pub fn push_unchecked(&mut self, tuple: Tuple) {
        Arc::make_mut(&mut self.rows).push(tuple);
    }

    /// Iterates over the rows.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Returns the column of values for an attribute.
    pub fn column(&self, attr: &str) -> StorageResult<Vec<Value>> {
        let pos = self.schema.require(attr)?;
        Ok(self
            .rows
            .iter()
            .map(|t| t.get(pos).cloned().unwrap_or(Value::Null))
            .collect())
    }

    /// Returns a relation with the same rows but a renamed schema (aliased scan).
    ///
    /// The rows are shared, not copied.
    #[must_use]
    pub fn renamed(&self, name: impl Into<String>) -> Relation {
        Relation {
            schema: self.schema.renamed(name),
            rows: Arc::clone(&self.rows),
        }
    }

    /// An estimate of the in-memory footprint in bytes, used by the experiment harness to
    /// report database sizes comparable to the paper's "database size (MB)" axis.
    #[must_use]
    pub fn estimated_bytes(&self) -> usize {
        let mut total = 0usize;
        for row in self.rows.iter() {
            for v in row.iter() {
                total += match v {
                    Value::Null => 1,
                    Value::Int(_) => 8,
                    Value::Float(_) => 8,
                    Value::Bool(_) => 1,
                    Value::Text(s) => s.len() + 8,
                };
            }
        }
        total
    }
}

// `Value` has a total equality (floats via `total_cmp`), so relation equality is a true
// equivalence and relations can be hashed — query plans embedding materialised relations rely
// on this for sub-expression fingerprinting.
impl Eq for Relation {}

impl std::hash::Hash for Relation {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.schema.hash(state);
        self.rows.hash(state);
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in self.rows.iter() {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, DataType};

    fn schema() -> Schema {
        Schema::new(
            "Customer",
            vec![
                Attribute::new("cid", DataType::Int),
                Attribute::new("cname", DataType::Text),
            ],
        )
    }

    #[test]
    fn push_validates_arity() {
        let mut rel = Relation::empty(schema());
        let err = rel.push(Tuple::new(vec![Value::from(1i64)])).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn push_validates_types() {
        let mut rel = Relation::empty(schema());
        let err = rel
            .push(Tuple::new(vec![Value::from("oops"), Value::from("x")]))
            .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn push_accepts_null_anywhere() {
        let mut rel = Relation::empty(schema());
        rel.push(Tuple::new(vec![Value::Null, Value::Null]))
            .unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn column_extraction() {
        let rel = Relation::new(
            schema(),
            vec![
                Tuple::new(vec![Value::from(1i64), Value::from("Alice")]),
                Tuple::new(vec![Value::from(2i64), Value::from("Bob")]),
            ],
        )
        .unwrap();
        let names = rel.column("cname").unwrap();
        assert_eq!(names, vec![Value::from("Alice"), Value::from("Bob")]);
        assert!(rel.column("ghost").is_err());
    }

    #[test]
    fn renamed_preserves_rows() {
        let rel = Relation::new(
            schema(),
            vec![Tuple::new(vec![Value::from(1i64), Value::from("Alice")])],
        )
        .unwrap();
        let aliased = rel.renamed("Customer1");
        assert_eq!(aliased.schema().name(), "Customer1");
        assert_eq!(aliased.len(), 1);
    }

    #[test]
    fn estimated_bytes_grows_with_rows() {
        let mut rel = Relation::empty(schema());
        let empty_size = rel.estimated_bytes();
        rel.push(Tuple::new(vec![Value::from(1i64), Value::from("Alice")]))
            .unwrap();
        assert!(rel.estimated_bytes() > empty_size);
    }

    #[test]
    fn clone_and_rename_share_the_row_buffer() {
        let rel = Relation::new(
            schema(),
            vec![Tuple::new(vec![Value::from(1i64), Value::from("Alice")])],
        )
        .unwrap();
        let cloned = rel.clone();
        assert!(rel.shares_rows_with(&cloned));
        let aliased = rel.renamed("C1");
        assert!(rel.shares_rows_with(&aliased));
        let shared = Relation::from_shared(rel.schema().clone(), rel.shared_rows());
        assert!(rel.shares_rows_with(&shared));
    }

    #[test]
    fn push_on_a_shared_buffer_is_copy_on_write() {
        let mut rel = Relation::new(
            schema(),
            vec![Tuple::new(vec![Value::from(1i64), Value::from("Alice")])],
        )
        .unwrap();
        let view = rel.clone();
        rel.push(Tuple::new(vec![Value::from(2i64), Value::from("Bob")]))
            .unwrap();
        // The writer got a private buffer; the shared view is untouched.
        assert!(!rel.shares_rows_with(&view));
        assert_eq!(rel.len(), 2);
        assert_eq!(view.len(), 1);
    }

    #[test]
    fn into_rows_copies_only_when_shared() {
        let rel = Relation::new(
            schema(),
            vec![Tuple::new(vec![Value::from(1i64), Value::from("Alice")])],
        )
        .unwrap();
        let view = rel.clone();
        let rows = rel.into_rows(); // shared with `view` → copied
        assert_eq!(rows.len(), 1);
        let rows = view.into_rows(); // sole owner → moved out
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn relations_are_bags() {
        let mut rel = Relation::empty(schema());
        let row = Tuple::new(vec![Value::from(1i64), Value::from("Alice")]);
        rel.push(row.clone()).unwrap();
        rel.push(row).unwrap();
        assert_eq!(rel.len(), 2);
    }
}
