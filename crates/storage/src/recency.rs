//! A reusable least-recently-used recency index: monotonic stamps plus an ordered
//! stamp → key map.
//!
//! Stamps are unique (one per clock tick), so the oldest stamp is always the
//! least-recently-used entry and every operation is O(log n).  The index does not own the
//! entries: callers keep each entry's current stamp (`last_used`) themselves, which lets one
//! map serve entries living in any container — and lets stamps go stale harmlessly (a popped
//! stamp is validated by the caller's `is_victim` predicate and discarded when it no longer
//! matches).  This is the one home of the LRU machinery shared by the spill
//! [`BufferPool`](crate::BufferPool), the engine's pinned-result LRU and `urm-mqo`'s
//! `LruCache` (whose recency half is built on this type).

use std::collections::BTreeMap;

/// An LRU recency index (see the [module docs](self)).
#[derive(Debug)]
pub struct RecencyIndex<K> {
    clock: u64,
    /// stamp → key, ordered oldest-first; stamps are unique (one per clock tick).
    index: BTreeMap<u64, K>,
}

impl<K> Default for RecencyIndex<K> {
    fn default() -> Self {
        RecencyIndex::new()
    }
}

impl<K> RecencyIndex<K> {
    /// An empty index.
    #[must_use]
    pub fn new() -> Self {
        RecencyIndex {
            clock: 0,
            index: BTreeMap::new(),
        }
    }

    /// Registers a new entry as the most recent one, returning the stamp the caller must keep
    /// (and hand back on [`touch`](RecencyIndex::touch) / [`forget`](RecencyIndex::forget)).
    pub fn insert_fresh(&mut self, key: K) -> u64 {
        self.clock += 1;
        self.index.insert(self.clock, key);
        self.clock
    }

    /// Refreshes an entry's recency with a caller-supplied key: drops its old stamp and stores
    /// the new one in `last_used`.
    pub fn touch(&mut self, key: K, last_used: &mut u64) {
        self.index.remove(last_used);
        self.clock += 1;
        *last_used = self.clock;
        self.index.insert(self.clock, key);
    }

    /// Refreshes an entry's recency *recovering the key from the index itself* — for callers
    /// (like a cache keyed by shared allocations) that do not have the owned key at hand.
    /// A stale `last_used` (stamp no longer indexed) is a no-op.
    pub fn refresh(&mut self, last_used: &mut u64) {
        if let Some(key) = self.index.remove(last_used) {
            self.clock += 1;
            *last_used = self.clock;
            self.index.insert(self.clock, key);
        }
    }

    /// Removes an entry's stamp (entry evicted or deleted).  Tolerates stamps already gone —
    /// popped stamps and never-indexed entries are not errors.
    pub fn forget(&mut self, last_used: u64) {
        self.index.remove(&last_used);
    }

    /// Re-inserts a key under a stamp previously popped (an eviction that failed and must stay
    /// discoverable).
    pub fn restore(&mut self, key: K, last_used: u64) {
        self.index.insert(last_used, key);
    }

    /// Pops stamps oldest-first until `is_victim(&key, stamp)` accepts one, returning that
    /// key; rejected stamps are stale (superseded, evicted or deleted entries) and are
    /// discarded.  Returns `None` when the index drains without a victim.
    pub fn pop_oldest(&mut self, mut is_victim: impl FnMut(&K, u64) -> bool) -> Option<K> {
        loop {
            let (stamp, key) = self.index.pop_first()?;
            if is_victim(&key, stamp) {
                return Some(key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_recency_order_with_touch_refresh() {
        let mut idx = RecencyIndex::new();
        let mut a = idx.insert_fresh('a');
        let b = idx.insert_fresh('b');
        idx.touch('a', &mut a); // order is now b, a
        assert_eq!(idx.pop_oldest(|_, _| true), Some('b'));
        assert_eq!(idx.pop_oldest(|_, _| true), Some('a'));
        assert_eq!(idx.pop_oldest(|_, _| true), None);
        let _ = b;
    }

    #[test]
    fn stale_stamps_are_discarded_by_the_predicate() {
        let mut idx = RecencyIndex::new();
        let mut a = idx.insert_fresh('a');
        let b = idx.insert_fresh('b');
        let old_a = a;
        idx.restore('a', old_a); // duplicate, stale once touched
        idx.touch('a', &mut a);
        // Only the stamp matching the caller's current `last_used` is a valid victim.
        let current = |key: &char, stamp: u64| match key {
            'a' => stamp == a,
            'b' => stamp == b,
            _ => false,
        };
        assert_eq!(idx.pop_oldest(current), Some('b'));
        assert_eq!(idx.pop_oldest(current), Some('a'));
    }

    #[test]
    fn refresh_recovers_the_key_from_the_index() {
        let mut idx = RecencyIndex::new();
        let mut a = idx.insert_fresh("a".to_string()); // non-Copy keys work too
        let b = idx.insert_fresh("b".to_string());
        idx.refresh(&mut a); // order is now b, a — without re-supplying the key
        assert!(a > b);
        assert_eq!(idx.pop_oldest(|_, _| true).as_deref(), Some("b"));
        // A stale stamp is a harmless no-op.
        let mut gone = b;
        idx.refresh(&mut gone);
        assert_eq!(gone, b);
        assert_eq!(idx.pop_oldest(|_, _| true).as_deref(), Some("a"));
    }

    #[test]
    fn forget_and_restore_round_trip() {
        let mut idx = RecencyIndex::new();
        let a = idx.insert_fresh(1u64);
        idx.forget(a);
        assert_eq!(idx.pop_oldest(|_, _| true), None);
        idx.restore(1u64, a);
        assert_eq!(idx.pop_oldest(|_, _| true), Some(1));
        idx.forget(999); // unknown stamps are fine
    }
}
