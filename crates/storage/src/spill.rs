//! Spill-to-disk paged storage: a byte-budgeted [`BufferPool`] over materialised relations.
//!
//! Every layer above this crate so far assumed the whole working set fits in RAM: scans,
//! intermediate operator results and pinned epoch results were all `Arc<Relation>`s that lived
//! until their last consumer dropped them.  This module is the larger-than-memory unlock: a
//! [`BufferPool`] tracks materialised relations under a configurable **byte budget**, writes
//! the least-recently-used ones to per-relation segment files (via the
//! [`codec`](crate::codec)'s columnar segment encoding — dictionary/delta/RLE per column,
//! falling back to the row codec for mixed columns) when the budget overflows, and reloads
//! them transparently on the next access.  Callers hold a [`SpillableRelation`] handle wherever they
//! previously held an always-resident `Arc<Relation>`:
//!
//! ```text
//!   pool.admit(rel)  ──►  SpillableRelation  ──load()──►  Arc<Relation>
//!   cached in RAM          cheap clonable handle           resident: Arc clone
//!   while under budget     (drop deletes the segment)      spilled:  segment read + decode
//! ```
//!
//! ## Budget semantics
//!
//! * The pool's **cached bytes** — the relations the pool itself keeps resident — never exceed
//!   the budget after any pool operation returns (barring an I/O failure while rebalancing,
//!   which leaves the budget transiently exceeded and is retried on the next operation):
//!   admitting or reloading past the budget spills least-recently-used entries (segment write
//!   on first spill only; segments are immutable because relations are) until the pool is back
//!   under it.  This is the invariant
//!   the spill benchmark gates on (`peak_cached_bytes ≤ budget`, with
//!   [`DEFAULT_PAGE_BYTES`] of slack allowed in reports for accounting granularity).
//! * Bytes held by *callers* (the `Arc<Relation>`s returned by [`SpillableRelation::load`])
//!   are the working set of whatever operator is running; the pool tracks them weakly and
//!   reports them as `live_bytes`, and a reload of a relation some caller still holds is
//!   answered by upgrading the weak reference — no disk read.
//! * A budget of `0` spills everything (every `load` of a cold entry is a segment read); an
//!   unbounded pool ([`BufferPool::unbounded`]) never writes a segment at all — the never-spill
//!   fast path is the pre-spill behaviour, byte for byte.
//!
//! Segment files live in a per-pool temporary directory, deleted when the pool (and every
//! handle into it) is dropped; dropping an individual handle deletes its segment eagerly.

use crate::codec;
use crate::recency::RecencyIndex;
use crate::{Relation, Schema, StorageError, StorageResult};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use urm_obs::Tracer;

/// Accounting granularity the spill reports allow for: gates on the pool's budget compare
/// against `budget + DEFAULT_PAGE_BYTES` so byte-estimate rounding never flakes a CI run.
pub const DEFAULT_PAGE_BYTES: usize = 64 * 1024;

/// Monotonic source of unique spill-directory suffixes (several pools per process).
static POOL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A snapshot of a pool's spill counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Total bytes written to segment files (actual encoded size, counted once per segment —
    /// segments are immutable, so re-spilling a reloaded relation rewrites nothing).
    pub bytes_spilled: u64,
    /// Segment reads that brought a spilled relation back into memory.
    pub spill_reloads: u64,
    /// Segment files written so far.
    pub segments_written: u64,
    /// Bytes the written segments would have taken under the plain row codec (the "raw" size
    /// the columnar compression is measured against).
    pub segment_bytes_raw: u64,
    /// Actual encoded bytes of the written segments (same total as `bytes_spilled`; kept as
    /// its own counter so raw/encoded always pair up in reports).
    pub segment_bytes_encoded: u64,
    /// Relations currently tracked by the pool.
    pub relations_tracked: usize,
    /// Bytes of relations the pool itself currently keeps resident (never exceeds the budget).
    pub cached_bytes: usize,
    /// Maximum `cached_bytes` ever observed at the end of a pool operation.
    pub peak_cached_bytes: usize,
    /// Bytes of tracked relations currently alive anywhere (pool-cached or caller-held).
    pub live_bytes: usize,
    /// Maximum `live_bytes` ever observed at the end of a pool operation.
    pub peak_live_bytes: usize,
}

/// One tracked relation.
#[derive(Debug)]
struct Entry {
    /// Schema kept resident so a spilled relation can be decoded without touching disk twice.
    schema: Schema,
    /// Estimated in-memory footprint (the budget accounting unit, never 0).
    bytes: usize,
    /// The pool's own strong reference — present while the entry is resident under the budget.
    cached: Option<Arc<Relation>>,
    /// Tracks caller-held copies: lets a reload skip the disk when someone still has the rows.
    live: Weak<Relation>,
    /// The entry's segment file, written at most once (relations are immutable).
    segment: Option<PathBuf>,
    /// Whether a segment write for this entry is in flight *outside* the lock (see
    /// [`trim_to_budget`]).  A spilling entry stays cached and loadable, and is never picked
    /// as a victim again until the write resolves.
    spilling: bool,
    /// Recency stamp for LRU victim selection.
    last_used: u64,
}

#[derive(Debug)]
struct PoolInner {
    budget: Option<usize>,
    dir: PathBuf,
    dir_created: bool,
    entries: HashMap<u64, Entry>,
    /// O(log n) LRU victim selection over entry ids; stale stamps are validated against
    /// `Entry::last_used` when popped (see [`RecencyIndex`]).
    recency: RecencyIndex<u64>,
    next_id: u64,
    cached_bytes: usize,
    /// Bytes of entries whose segment write is currently in flight outside the lock.  Trim
    /// planning targets `cached_bytes - pending_spill_bytes`, so concurrent trimmers never
    /// over-spill for relief that is already on its way.
    pending_spill_bytes: usize,
    bytes_spilled: u64,
    spill_reloads: u64,
    segments_written: u64,
    segment_bytes_raw: u64,
    segment_bytes_encoded: u64,
    peak_cached_bytes: usize,
    peak_live_bytes: usize,
    /// Test hook: number of upcoming cold segment reads to fail with an injected I/O error.
    fail_loads: u64,
    /// The tracer spill I/O reports to ([`BufferPool::set_tracer`]); disabled by default, so
    /// the spans in [`trim_with`] and [`SpillableRelation::load`] are free when tracing is off.
    tracer: Tracer,
}

impl PoolInner {
    /// Refreshes an entry's recency stamp (and index slot).  Every pool operation that uses an
    /// entry goes through here, so the recency index stays O(log n) per touch.
    fn touch(&mut self, id: u64) {
        let entry = self.entries.get_mut(&id).expect("touched entry exists");
        self.recency.touch(id, &mut entry.last_used);
    }

    /// Updates the cached-bytes peak gauge; called whenever a trim settles.  Bytes whose
    /// segment write is in flight are excluded — they are logically already spilled, the disk
    /// just hasn't caught up — so the `peak_cached_bytes ≤ budget` invariant the spill
    /// benchmark gates on survives concurrent trimmers.  (The live-bytes gauge is sampled in
    /// [`BufferPool::stats`] instead — keeping it exact per operation would cost a full entry
    /// scan under the pool lock.)
    fn note_peaks(&mut self) {
        self.peak_cached_bytes = self
            .peak_cached_bytes
            .max(self.cached_bytes.saturating_sub(self.pending_spill_bytes));
    }

    fn live_bytes(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.live.strong_count() > 0)
            .map(|e| e.bytes)
            .sum()
    }

    /// The lock-held half of a trim step: picks the next least-recently-used victim and either
    /// releases it on the spot (its immutable segment is already on disk — pure bookkeeping) or
    /// plans a first-time segment write for [`trim_to_budget`] to perform *outside* the lock.
    /// Returns `None` when the pool fits its budget (noting the peak gauge, as every completed
    /// pool operation does).
    fn plan_spill(&mut self) -> Option<SpillJob> {
        let Some(budget) = self.budget else {
            self.note_peaks();
            return None;
        };
        self.plan_spill_to(budget)
    }

    /// Like [`plan_spill`](PoolInner::plan_spill) towards an explicit byte target —
    /// reservations ([`BufferPool::reserve`]) trim *below* the budget to make room for bytes
    /// that are about to be admitted.
    fn plan_spill_to(&mut self, target: usize) -> Option<SpillJob> {
        while self.cached_bytes.saturating_sub(self.pending_spill_bytes) > target {
            // Pop oldest-first; stale stamps (removed entries, already-spilled entries, stamps
            // superseded by a later touch, or entries mid-write) are discarded until a cached
            // victim surfaces.
            let entries = &self.entries;
            let victim = self.recency.pop_oldest(|id, stamp| {
                entries
                    .get(id)
                    .is_some_and(|e| e.last_used == stamp && e.cached.is_some() && !e.spilling)
            });
            let Some(id) = victim else { break };
            let entry = self.entries.get_mut(&id).expect("spill victim exists");
            if entry.segment.is_some() {
                // Re-spill of a reloaded entry: segments are immutable, so dropping the rows
                // is the whole spill — no I/O, stay under the lock and keep trimming.
                entry.cached = None;
                self.cached_bytes -= entry.bytes;
                continue;
            }
            entry.spilling = true;
            self.pending_spill_bytes += entry.bytes;
            return Some(SpillJob {
                id,
                rel: Arc::clone(entry.cached.as_ref().expect("spill victim is cached")),
                path: self.dir.join(format!("seg-{id}.urm")),
                stamp: entry.last_used,
                create_dir: (!self.dir_created).then(|| self.dir.clone()),
            });
        }
        self.note_peaks();
        None
    }

    /// The lock-held epilogue of one planned segment write: releases the victim's rows on
    /// success, or puts it back where future trims can find it on failure.  The entry may have
    /// been dropped while the write ran (its handle died) — then the freshly written segment is
    /// an orphan and is deleted.
    fn finish_spill(
        &mut self,
        job: SpillJob,
        dir_ok: bool,
        written: StorageResult<SegmentSizes>,
    ) -> StorageResult<()> {
        if dir_ok {
            self.dir_created = true;
        }
        let Some(entry) = self.entries.get_mut(&job.id) else {
            if written.is_ok() {
                let _ = std::fs::remove_file(&job.path);
            }
            // The dying handle already released the pending/cached accounting.
            return written.map(|_| ());
        };
        entry.spilling = false;
        self.pending_spill_bytes -= entry.bytes;
        match written {
            Ok(sizes) => {
                entry.segment = Some(job.path);
                entry.cached = None;
                self.cached_bytes -= entry.bytes;
                self.bytes_spilled += sizes.encoded as u64;
                self.segments_written += 1;
                self.segment_bytes_raw += sizes.raw as u64;
                self.segment_bytes_encoded += sizes.encoded as u64;
                Ok(())
            }
            Err(err) => {
                // The victim is still cached (a failed write releases nothing); restore its
                // stamp so future trims can still find it — unless a concurrent load already
                // re-indexed it under a newer one.
                if entry.last_used == job.stamp {
                    self.recency.restore(job.id, job.stamp);
                }
                Err(err)
            }
        }
    }
}

/// Byte sizes of one written segment: the actual encoded length and the length the row codec
/// would have produced (for compression accounting).
struct SegmentSizes {
    encoded: usize,
    raw: usize,
}

/// One planned first-time segment write, carried out of the pool lock's critical section.
struct SpillJob {
    id: u64,
    /// The victim's rows, cloned out under the lock (the entry itself stays cached and
    /// loadable while the write runs).
    rel: Arc<Relation>,
    path: PathBuf,
    /// The victim's recency stamp at planning time (for restore-on-failure).
    stamp: u64,
    /// The spill directory, when it has not been created yet.
    create_dir: Option<PathBuf>,
}

/// Spills least-recently-used cached entries until `cached_bytes` fits the budget, with every
/// segment write — the encode and the disk I/O, by far the expensive part of a spill —
/// performed **outside** the pool lock.  Parallel DAG workers sharing one pool therefore never
/// serialise on a spilling peer: while one worker's victim streams out to disk, the others
/// admit, load and trim freely (reads were already outside the lock; see
/// [`SpillableRelation::load`]).
///
/// A failed write (full disk, unreachable directory) leaves its victim resident and loadable —
/// the error surfaces to the caller, never as data loss.
fn trim_to_budget(pool: &Mutex<PoolInner>) -> StorageResult<()> {
    trim_with(pool, PoolInner::plan_spill)
}

/// The spill loop of [`trim_to_budget`] with a pluggable victim planner (reservations plan
/// towards a below-budget target; the plain trim towards the budget itself).
fn trim_with(
    pool: &Mutex<PoolInner>,
    mut plan: impl FnMut(&mut PoolInner) -> Option<SpillJob>,
) -> StorageResult<()> {
    loop {
        let (job, tracer) = {
            let mut inner = pool.lock().unwrap();
            match plan(&mut inner) {
                Some(job) => {
                    let tracer = inner.tracer.clone();
                    (job, tracer)
                }
                None => return Ok(()),
            }
        };
        let mut span = tracer.span("spill_write");
        span.tag("bytes", job.rel.estimated_bytes() as u64);
        span.tag("rows", job.rel.len() as u64);
        let mut dir_ok = false;
        let written = (|| {
            if let Some(dir) = &job.create_dir {
                std::fs::create_dir_all(dir).map_err(io_err)?;
            }
            dir_ok = true;
            let encoded = codec::encode_segment(&job.rel);
            std::fs::write(&job.path, &*encoded).map_err(io_err)?;
            Ok(SegmentSizes {
                encoded: encoded.len(),
                raw: codec::encoded_rows_len(&job.rel),
            })
        })();
        drop(span);
        pool.lock().unwrap().finish_spill(job, dir_ok, written)?;
    }
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        if self.dir_created {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

fn io_err(e: std::io::Error) -> StorageError {
    StorageError::Io(e.to_string())
}

/// A byte-budgeted buffer pool over materialised relations (see the [module docs](self)).
///
/// Cloning the pool is cheap (one shared state); clones and [`SpillableRelation`] handles may
/// be used from any thread.
#[derive(Debug, Clone)]
pub struct BufferPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl BufferPool {
    /// A pool with no budget: relations stay resident forever and no segment is ever written.
    #[must_use]
    pub fn unbounded() -> Self {
        BufferPool::build(None, None)
    }

    /// A pool keeping at most `budget` bytes of relations resident; `0` spills everything.
    #[must_use]
    pub fn with_budget(budget: usize) -> Self {
        BufferPool::build(Some(budget), None)
    }

    /// Like [`with_budget`](BufferPool::with_budget) with an explicit spill directory (which
    /// must be private to this pool: it is deleted when the pool is dropped).
    #[must_use]
    pub fn with_budget_in(budget: usize, dir: PathBuf) -> Self {
        BufferPool::build(Some(budget), Some(dir))
    }

    fn build(budget: Option<usize>, dir: Option<PathBuf>) -> Self {
        let dir = dir.unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "urm-spill-{}-{}",
                std::process::id(),
                POOL_SEQ.fetch_add(1, Ordering::Relaxed)
            ))
        });
        BufferPool {
            inner: Arc::new(Mutex::new(PoolInner {
                budget,
                dir,
                dir_created: false,
                entries: HashMap::new(),
                recency: RecencyIndex::new(),
                next_id: 0,
                cached_bytes: 0,
                pending_spill_bytes: 0,
                bytes_spilled: 0,
                spill_reloads: 0,
                segments_written: 0,
                segment_bytes_raw: 0,
                segment_bytes_encoded: 0,
                peak_cached_bytes: 0,
                peak_live_bytes: 0,
                fail_loads: 0,
                tracer: Tracer::disabled(),
            })),
        }
    }

    /// The configured byte budget (`None` when unbounded).
    #[must_use]
    pub fn budget(&self) -> Option<usize> {
        self.inner.lock().unwrap().budget
    }

    /// Pre-trims the pool so `bytes` of upcoming admissions fit without mid-operation
    /// evictions: least-recently-used entries spill until `cached_bytes + bytes ≤ budget`.
    ///
    /// This is the adaptive grace join's admission sizing: sized from *observed* build-side
    /// bytes, the reservation makes room for the partitions about to be staged in one planned
    /// sweep instead of a cascade of per-admit evictions.  Best effort — a reservation larger
    /// than the budget trims everything trimmable — and a no-op on unbounded pools.
    pub fn reserve(&self, bytes: usize) -> StorageResult<()> {
        trim_with(&self.inner, |inner| {
            let Some(budget) = inner.budget else {
                inner.note_peaks();
                return None;
            };
            inner.plan_spill_to(budget.saturating_sub(bytes))
        })
    }

    /// Test hook: fails the next `n` *cold* segment reads with an injected I/O error
    /// (resident and caller-held fast paths are unaffected).  Lets tests exercise
    /// segment-read failure recovery without corrupting real files.
    #[doc(hidden)]
    pub fn fail_next_loads(&self, n: u64) {
        self.inner.lock().unwrap().fail_loads = n;
    }

    /// Starts tracking a relation, spilling older entries if the budget now overflows.
    pub fn admit(&self, relation: Relation) -> StorageResult<SpillableRelation> {
        self.admit_shared(Arc::new(relation))
    }

    /// Like [`admit`](BufferPool::admit) for an already-shared relation (no row copy).
    pub fn admit_shared(&self, relation: Arc<Relation>) -> StorageResult<SpillableRelation> {
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_id;
        inner.next_id += 1;
        let stamp = inner.recency.insert_fresh(id);
        let schema = relation.schema().clone();
        let len = relation.len();
        let bytes = relation.estimated_bytes().max(1);
        inner.entries.insert(
            id,
            Entry {
                schema: schema.clone(),
                bytes,
                live: Arc::downgrade(&relation),
                cached: Some(relation),
                segment: None,
                spilling: false,
                last_used: stamp,
            },
        );
        inner.cached_bytes += bytes;
        drop(inner);
        if let Err(err) = trim_to_budget(&self.inner) {
            // Nothing was lost (a failed spill leaves its victim resident), but without a
            // handle the fresh entry would leak — unwind it before surfacing the error.
            let mut inner = self.inner.lock().unwrap();
            if let Some(entry) = inner.entries.remove(&id) {
                inner.recency.forget(entry.last_used);
                if entry.spilling {
                    inner.pending_spill_bytes -= entry.bytes;
                }
                if entry.cached.is_some() {
                    inner.cached_bytes -= entry.bytes;
                }
                if let Some(path) = entry.segment {
                    let _ = std::fs::remove_file(path);
                }
            }
            return Err(err);
        }
        Ok(SpillableRelation {
            inner: Arc::new(HandleInner {
                pool: Arc::clone(&self.inner),
                id,
                schema,
                len,
                bytes,
            }),
        })
    }

    /// A snapshot of the pool's counters.
    ///
    /// `live_bytes` (and its peak) are sampled here rather than maintained per operation —
    /// a caller dropping its last `Arc` is invisible to the pool until the next snapshot.
    #[must_use]
    pub fn stats(&self) -> SpillStats {
        let mut inner = self.inner.lock().unwrap();
        let live_bytes = inner.live_bytes();
        inner.peak_live_bytes = inner.peak_live_bytes.max(live_bytes);
        SpillStats {
            bytes_spilled: inner.bytes_spilled,
            spill_reloads: inner.spill_reloads,
            segments_written: inner.segments_written,
            segment_bytes_raw: inner.segment_bytes_raw,
            segment_bytes_encoded: inner.segment_bytes_encoded,
            relations_tracked: inner.entries.len(),
            cached_bytes: inner.cached_bytes,
            peak_cached_bytes: inner.peak_cached_bytes,
            live_bytes,
            peak_live_bytes: inner.peak_live_bytes,
        }
    }

    /// Bytes of relations the pool currently keeps resident.
    #[must_use]
    pub fn cached_bytes(&self) -> usize {
        self.inner.lock().unwrap().cached_bytes
    }

    /// Number of tracked relations whose segment file has been written.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .entries
            .values()
            .filter(|e| e.segment.is_some())
            .count()
    }

    /// The pool's spill directory (only exists on disk once something spilled).
    #[must_use]
    pub fn spill_dir(&self) -> PathBuf {
        self.inner.lock().unwrap().dir.clone()
    }

    /// Points the pool's spill I/O spans (`spill_write`, `spill_reload`) at `tracer`.  Every
    /// clone of the pool and every live [`SpillableRelation`] handle shares the slot, so the
    /// executor can set it for one traced batch and [clear](Tracer::disabled) it after.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.inner.lock().unwrap().tracer = tracer;
    }
}

/// What keeps a [`SpillableRelation`]'s bookkeeping alive; dropping the last clone of a handle
/// removes the entry and deletes its segment file.
#[derive(Debug)]
struct HandleInner {
    pool: Arc<Mutex<PoolInner>>,
    id: u64,
    schema: Schema,
    len: usize,
    bytes: usize,
}

impl Drop for HandleInner {
    fn drop(&mut self) {
        if let Ok(mut inner) = self.pool.lock() {
            if let Some(entry) = inner.entries.remove(&self.id) {
                inner.recency.forget(entry.last_used);
                if entry.spilling {
                    // A segment write for this entry is in flight; release its reservation
                    // here — `finish_spill` will find the entry gone and delete the orphan.
                    inner.pending_spill_bytes -= entry.bytes;
                }
                if entry.cached.is_some() {
                    inner.cached_bytes -= entry.bytes;
                }
                if let Some(path) = entry.segment {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
    }
}

/// A handle to a pool-tracked relation: holdable wherever an always-resident `Arc<Relation>`
/// used to live, loadable back into memory on demand.  Cloning shares the handle; the last
/// clone dropped releases the entry (memory and segment file).
#[derive(Debug, Clone)]
pub struct SpillableRelation {
    inner: Arc<HandleInner>,
}

impl SpillableRelation {
    /// The relation's schema (always resident; spilling only pages out rows).
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Whether the relation has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// The estimated in-memory footprint the pool accounts this relation at.
    #[must_use]
    pub fn estimated_bytes(&self) -> usize {
        self.inner.bytes
    }

    /// Whether the pool currently keeps this relation resident.
    #[must_use]
    pub fn is_cached(&self) -> bool {
        let inner = self.inner.pool.lock().unwrap();
        inner
            .entries
            .get(&self.inner.id)
            .is_some_and(|e| e.cached.is_some())
    }

    /// Materialises the relation: an `Arc` clone while resident (pool-cached or still held by
    /// another caller), a segment read + decode after a spill.  Loading refreshes the entry's
    /// LRU recency and may spill *other* entries to admit this one back under the budget.
    pub fn load(&self) -> StorageResult<Arc<Relation>> {
        // Resident fast paths under the lock; the segment read + decode of a cold reload runs
        // *outside* it, so parallel workers sharing one pool never serialise on each other's
        // disk I/O.
        let (path, schema, tracer) = {
            let mut inner = self.inner.pool.lock().unwrap();
            inner.touch(self.inner.id);
            let entry = inner
                .entries
                .get_mut(&self.inner.id)
                .expect("pool entry outlives its handles");
            if let Some(rel) = &entry.cached {
                return Ok(Arc::clone(rel));
            }
            if let Some(rel) = entry.live.upgrade() {
                // Some caller still holds the rows: hand those out instead of re-reading disk.
                return Ok(rel);
            }
            let path = entry
                .segment
                .clone()
                .expect("uncached pool entry has a segment");
            let schema = entry.schema.clone();
            if inner.fail_loads > 0 {
                inner.fail_loads -= 1;
                return Err(StorageError::Io("injected segment read failure".into()));
            }
            let tracer = inner.tracer.clone();
            (path, schema, tracer)
        };
        let mut span = tracer.span("spill_reload");
        span.tag("bytes", self.inner.bytes as u64);
        span.tag("rows", self.inner.len as u64);
        let raw = std::fs::read(&path).map_err(io_err)?;
        let rel = Arc::new(codec::decode_segment(schema, raw.into())?);
        drop(span);

        let mut inner = self.inner.pool.lock().unwrap();
        let entry = inner
            .entries
            .get_mut(&self.inner.id)
            .expect("pool entry outlives its handles");
        // A concurrent loader may have raced us here; prefer its allocation so equal loads
        // alias one Arc (and our read becomes the redundant one — count only the winner's).
        if let Some(existing) = &entry.cached {
            return Ok(Arc::clone(existing));
        }
        if let Some(existing) = entry.live.upgrade() {
            return Ok(existing);
        }
        entry.cached = Some(Arc::clone(&rel));
        entry.live = Arc::downgrade(&rel);
        let bytes = entry.bytes;
        inner.cached_bytes += bytes;
        inner.spill_reloads += 1;
        drop(inner);
        // A failed trim is a *rebalancing* error — some other victim could not be written out
        // — not a failure of this load: the requested rows are in hand.  Swallow it; the
        // budget is transiently exceeded and the next pool operation retries the trim.  (This
        // also means an `Err` from `load` always refers to THIS relation's segment, which the
        // epoch layer relies on when it drops a pin whose load failed.)
        let _ = trim_to_budget(&self.inner.pool);
        Ok(rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, DataType, Tuple, Value};

    fn relation(name: &str, rows: usize, tag: i64) -> Relation {
        let schema = Schema::new(
            name,
            vec![
                Attribute::new("id", DataType::Int),
                Attribute::new("label", DataType::Text),
            ],
        );
        let rows = (0..rows)
            .map(|i| {
                Tuple::new(vec![
                    Value::from(tag * 1000 + i as i64),
                    Value::from(format!("row-{tag}-{i}")),
                ])
            })
            .collect();
        Relation::new(schema, rows).unwrap()
    }

    #[test]
    fn unbounded_pool_never_writes_a_segment() {
        let pool = BufferPool::unbounded();
        let handles: Vec<_> = (0..8)
            .map(|i| pool.admit(relation("R", 50, i)).unwrap())
            .collect();
        for h in &handles {
            assert!(h.is_cached());
            assert_eq!(h.load().unwrap().len(), 50);
        }
        let stats = pool.stats();
        assert_eq!(stats.segments_written, 0);
        assert_eq!(stats.bytes_spilled, 0);
        assert_eq!(stats.spill_reloads, 0);
        assert!(!pool.spill_dir().exists(), "no spill dir should be created");
    }

    #[test]
    fn budget_zero_spills_everything_and_reloads_byte_identically() {
        let pool = BufferPool::with_budget(0);
        let original = relation("R", 40, 7);
        let handle = pool.admit(original.clone()).unwrap();
        assert!(!handle.is_cached(), "budget 0 must spill immediately");
        assert_eq!(pool.cached_bytes(), 0);
        let stats = pool.stats();
        assert_eq!(stats.segments_written, 1);
        assert!(stats.bytes_spilled > 0);

        let loaded = handle.load().unwrap();
        assert_eq!(loaded.schema(), original.schema());
        assert_eq!(loaded.rows(), original.rows());
        assert_eq!(pool.stats().spill_reloads, 1);
        // The pool's own copy was trimmed straight back out, but the caller's Arc stays valid.
        assert_eq!(pool.cached_bytes(), 0);
        assert_eq!(loaded.len(), 40);
    }

    #[test]
    fn reserve_pre_trims_lru_entries_to_make_room() {
        let one = relation("R", 60, 0).estimated_bytes();
        let pool = BufferPool::with_budget(one * 2);
        let a = pool.admit(relation("R", 60, 1)).unwrap();
        let b = pool.admit(relation("R", 60, 2)).unwrap();
        assert!(a.is_cached() && b.is_cached());
        // Reserving one relation's worth spills the LRU entry now, not mid-admission.
        pool.reserve(one).unwrap();
        assert!(!a.is_cached(), "reserve must trim the LRU entry");
        assert!(b.is_cached());
        assert!(pool.cached_bytes() + one <= one * 2);
        // Unbounded pools ignore reservations entirely.
        let unbounded = BufferPool::unbounded();
        let _h = unbounded.admit(relation("R", 60, 3)).unwrap();
        unbounded.reserve(usize::MAX).unwrap();
        assert_eq!(unbounded.stats().segments_written, 0);
    }

    #[test]
    fn injected_load_failures_surface_and_then_clear() {
        let pool = BufferPool::with_budget(0);
        let handle = pool.admit(relation("R", 30, 5)).unwrap();
        pool.fail_next_loads(1);
        assert!(handle.load().is_err(), "injected cold-read failure");
        // The injection is consumed: the same segment reads back fine afterwards.
        assert_eq!(handle.load().unwrap().len(), 30);
    }

    #[test]
    fn cached_bytes_never_exceed_the_budget() {
        let one = relation("R", 60, 0).estimated_bytes();
        let budget = one * 2 + one / 2; // room for two relations, not three
        let pool = BufferPool::with_budget(budget);
        let handles: Vec<_> = (0..6)
            .map(|i| pool.admit(relation("R", 60, i)).unwrap())
            .collect();
        assert!(pool.stats().peak_cached_bytes <= budget);
        // Reload everything; the invariant must survive reload-triggered eviction too.
        for h in &handles {
            let rel = h.load().unwrap();
            assert_eq!(rel.len(), 60);
            assert!(pool.cached_bytes() <= budget);
        }
        let stats = pool.stats();
        assert!(stats.peak_cached_bytes <= budget);
        assert!(stats.bytes_spilled > 0);
        assert!(stats.spill_reloads > 0);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let one = relation("R", 30, 0).estimated_bytes();
        let pool = BufferPool::with_budget(one * 2);
        let a = pool.admit(relation("R", 30, 1)).unwrap();
        let b = pool.admit(relation("R", 30, 2)).unwrap();
        // Touch `a`, then admit a third: `b` must be the victim.
        let _keepalive = a.load().unwrap();
        let c = pool.admit(relation("R", 30, 3)).unwrap();
        assert!(a.is_cached());
        assert!(!b.is_cached(), "least-recently-used entry must spill");
        assert!(c.is_cached());
    }

    #[test]
    fn live_callers_answer_reloads_without_disk_reads() {
        let pool = BufferPool::with_budget(0);
        let handle = pool.admit(relation("R", 20, 1)).unwrap();
        let held = handle.load().unwrap(); // one reload from disk
        assert_eq!(pool.stats().spill_reloads, 1);
        let again = handle.load().unwrap(); // answered by the live weak reference
        assert!(Arc::ptr_eq(&held, &again));
        assert_eq!(pool.stats().spill_reloads, 1, "no second disk read");
        drop(held);
        drop(again);
        let cold = handle.load().unwrap(); // everyone dropped it: back to disk
        assert_eq!(cold.len(), 20);
        assert_eq!(pool.stats().spill_reloads, 2);
    }

    #[test]
    fn dropping_a_handle_deletes_its_segment() {
        let pool = BufferPool::with_budget(0);
        let handle = pool.admit(relation("R", 25, 1)).unwrap();
        let dir = pool.spill_dir();
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        drop(handle);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        assert_eq!(pool.stats().relations_tracked, 0);
    }

    #[test]
    fn dropping_the_pool_removes_the_spill_dir() {
        let dir;
        {
            let pool = BufferPool::with_budget(0);
            let _handle = pool.admit(relation("R", 10, 1)).unwrap();
            dir = pool.spill_dir();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "spill dir must be cleaned up");
    }

    #[test]
    fn clones_share_one_entry() {
        let pool = BufferPool::with_budget(0);
        let handle = pool.admit(relation("R", 10, 1)).unwrap();
        let clone = handle.clone();
        assert_eq!(pool.stats().relations_tracked, 1);
        drop(handle);
        assert_eq!(pool.stats().relations_tracked, 1, "clone keeps it alive");
        assert_eq!(clone.load().unwrap().len(), 10);
        drop(clone);
        assert_eq!(pool.stats().relations_tracked, 0);
    }

    #[test]
    fn handles_work_across_threads() {
        let pool = BufferPool::with_budget(0);
        let handles: Vec<_> = (0..4)
            .map(|i| pool.admit(relation("R", 30, i)).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for (i, handle) in handles.iter().enumerate() {
                scope.spawn(move || {
                    let rel = handle.load().unwrap();
                    assert_eq!(rel.len(), 30);
                    assert_eq!(
                        rel.rows()[0].get(0),
                        Some(&Value::from(i as i64 * 1000)),
                        "thread loaded someone else's rows"
                    );
                });
            }
        });
        assert!(pool.stats().spill_reloads >= 4);
    }

    #[test]
    fn failed_segment_writes_lose_no_data() {
        // A spill dir that can never be created: its parent is a regular file.
        let blocker =
            std::env::temp_dir().join(format!("urm-spill-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let pool = BufferPool::with_budget_in(0, blocker.join("sub"));

        // Admission fails (nothing can spill), unwinds the fresh entry, loses nothing.
        let err = pool.admit(relation("R", 10, 1)).unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        assert_eq!(pool.stats().relations_tracked, 0);
        assert_eq!(pool.cached_bytes(), 0);

        // An existing resident entry survives a failed trim triggered by a later admit:
        // the unbudgeted admit works, then shrinking... simulate via a second pool whose
        // first admit fits (budget big enough) and whose second forces a failing spill.
        let one = relation("R", 10, 2).estimated_bytes();
        let pool = BufferPool::with_budget_in(one, blocker.join("sub2"));
        let first = pool.admit(relation("R", 10, 2)).unwrap(); // fits, no spill needed
        let err = pool.admit(relation("R", 10, 3)).unwrap_err(); // must spill `first`, cannot
        assert!(matches!(err, StorageError::Io(_)));
        // `first` is still resident and loadable — a failed write never drops rows.
        assert!(first.is_cached());
        assert_eq!(first.load().unwrap().len(), 10);
        std::fs::remove_file(&blocker).unwrap();
    }

    /// The segment write of a spill must run *outside* the pool lock, so parallel DAG workers
    /// sharing one pool never serialise on a spilling peer.  Deterministic setup, no timing: a
    /// FIFO planted where the first spill segment will be written blocks the writer thread
    /// until this thread opens the read side — while it is blocked, every lock-requiring pool
    /// operation below would deadlock (the test would hang) if the write still held the lock.
    #[test]
    #[cfg(unix)]
    fn spill_writes_do_not_hold_the_pool_lock() {
        let dir = std::env::temp_dir().join(format!("urm-spill-fifo-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // The first admitted relation gets id 0, hence segment path `seg-0.urm`.
        let fifo = dir.join("seg-0.urm");
        let ok = std::process::Command::new("mkfifo")
            .arg(&fifo)
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        if !ok {
            let _ = std::fs::remove_dir_all(&dir);
            eprintln!("skipping: mkfifo unavailable");
            return;
        }

        let pool = BufferPool::with_budget_in(0, dir.clone());
        let writer = {
            let pool = pool.clone();
            std::thread::spawn(move || pool.admit(relation("R", 20, 1)))
        };
        // Wait (bounded) until the writer has planned its spill and is blocked in the write.
        for _ in 0..2000 {
            if pool.inner.lock().unwrap().pending_spill_bytes > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(
            pool.inner.lock().unwrap().pending_spill_bytes > 0,
            "writer never reached its segment write"
        );

        // The writer is parked inside `std::fs::write` on the FIFO.  These all need the pool
        // lock — including a *second complete spill* (id 1 goes to a real `seg-1.urm`; the
        // in-flight entry 0 is excluded from victim selection by its `spilling` flag).
        let stats = pool.stats();
        assert_eq!(stats.segments_written, 0, "first write still in flight");
        let second = pool.admit(relation("R", 20, 2)).unwrap();
        assert!(!second.is_cached(), "second spill completed independently");
        assert_eq!(pool.stats().segments_written, 1);

        // Rendezvous: drain the FIFO so the blocked write completes, then let it finish.
        use std::io::Read as _;
        let mut buf = Vec::new();
        std::fs::File::open(&fifo)
            .unwrap()
            .read_to_end(&mut buf)
            .unwrap();
        let first = writer.join().unwrap().unwrap();
        assert!(!first.is_cached());
        let stats = pool.stats();
        assert_eq!(stats.segments_written, 2);
        assert_eq!(stats.cached_bytes, 0);
        assert_eq!(pool.inner.lock().unwrap().pending_spill_bytes, 0);
        // `seg-0.urm` is the FIFO, not a regular segment; reloading entry 0 would block on it,
        // so only exercise the real segment before the pool cleans the directory up.
        assert_eq!(second.load().unwrap().len(), 20);
        drop((first, second, pool));
        assert!(!dir.exists(), "pool drop removes the spill dir");
    }

    #[test]
    fn segments_are_columnar_compressed_and_counted() {
        let pool = BufferPool::with_budget(0);
        // Repetitive shape: sequential ints, 4 distinct labels — compresses well.
        let schema = Schema::new(
            "C",
            vec![
                Attribute::new("id", DataType::Int),
                Attribute::new("label", DataType::Text),
            ],
        );
        let rows = (0..500)
            .map(|i| {
                Tuple::new(vec![
                    Value::from(i as i64),
                    Value::from(format!("label-{}", i % 4)),
                ])
            })
            .collect();
        let original = Relation::new(schema, rows).unwrap();
        let handle = pool.admit(original.clone()).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.segments_written, 1);
        assert_eq!(stats.segment_bytes_encoded, stats.bytes_spilled);
        assert!(
            stats.segment_bytes_encoded * 5 < stats.segment_bytes_raw * 3,
            "encoded {} vs raw {} (need <= 0.6x)",
            stats.segment_bytes_encoded,
            stats.segment_bytes_raw
        );
        // Reload stays byte-identical through the columnar segment codec.
        let loaded = handle.load().unwrap();
        assert_eq!(loaded.rows(), original.rows());
        assert_eq!(loaded.schema(), original.schema());
    }

    #[test]
    fn stats_track_peaks_and_live_bytes() {
        let one = relation("R", 50, 0).estimated_bytes();
        let pool = BufferPool::with_budget(one);
        let a = pool.admit(relation("R", 50, 1)).unwrap();
        let b = pool.admit(relation("R", 50, 2)).unwrap();
        let (ra, rb) = (a.load().unwrap(), b.load().unwrap());
        let stats = pool.stats();
        assert!(stats.cached_bytes <= one);
        assert_eq!(stats.live_bytes, a.estimated_bytes() + b.estimated_bytes());
        assert!(stats.peak_live_bytes >= stats.live_bytes);
        drop((ra, rb));
        assert!(
            pool.stats().live_bytes <= one,
            "only the cached entry lives"
        );
    }
}
