//! # urm-storage
//!
//! In-memory relational storage substrate used by the URM (Uncertain Relational Matching)
//! reproduction of *Evaluating Probabilistic Queries over Uncertain Matching* (ICDE 2012).
//!
//! The paper evaluates probabilistic queries by reformulating a target query into source
//! queries and running them on a concrete *source instance* `D`.  This crate provides that
//! source instance: typed [`Value`]s, [`Tuple`]s, relation [`Schema`]s, materialised
//! [`Relation`]s and a [`Catalog`] mapping relation names to relations.
//!
//! The storage layer is deliberately simple (row-oriented, memory-first) — the paper's
//! algorithms are about *how many* source operators and queries are executed, not about disk
//! layout — but the types are designed so the query engine built on top
//! ([`urm-engine`](https://docs.rs/urm-engine)) can count and share work exactly the way the
//! paper describes.  For workloads bigger than RAM, the [`spill`] module adds a byte-budgeted
//! [`BufferPool`] that pages materialised relations to disk segments and reloads them
//! transparently.
//!
//! ## Quick example
//!
//! ```
//! use urm_storage::{Attribute, Catalog, DataType, Relation, Schema, Tuple, Value};
//!
//! // The `Customer` relation of Figure 2 in the paper.
//! let schema = Schema::new(
//!     "Customer",
//!     vec![
//!         Attribute::new("cid", DataType::Int),
//!         Attribute::new("cname", DataType::Text),
//!         Attribute::new("ophone", DataType::Text),
//!         Attribute::new("hphone", DataType::Text),
//!         Attribute::new("oaddr", DataType::Text),
//!         Attribute::new("haddr", DataType::Text),
//!     ],
//! );
//! let mut rel = Relation::empty(schema);
//! rel.push(Tuple::new(vec![
//!     Value::from(1i64),
//!     Value::from("Alice"),
//!     Value::from("123"),
//!     Value::from("789"),
//!     Value::from("aaa"),
//!     Value::from("hk"),
//! ]))
//! .unwrap();
//!
//! let mut catalog = Catalog::new();
//! catalog.insert(rel);
//! assert!(catalog.get("Customer").is_some());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod catalog;
pub mod codec;
pub mod column;
pub mod dictionary;
pub mod error;
pub mod recency;
pub mod relation;
pub mod schema;
pub mod shard;
pub mod spill;
pub mod tuple;
pub mod types;
pub mod value;

pub use catalog::Catalog;
pub use column::{Column, ColumnarRelation, NullBitmap};
pub use dictionary::{Dictionary, DEFAULT_DICT_LIMIT};
pub use error::{StorageError, StorageResult};
pub use recency::RecencyIndex;
pub use relation::Relation;
pub use schema::{AttrRef, Attribute, Schema};
pub use shard::{ShardScheme, ShardSpec};
pub use spill::{BufferPool, SpillStats, SpillableRelation, DEFAULT_PAGE_BYTES};
pub use tuple::Tuple;
pub use types::DataType;
pub use value::Value;
