//! Error types for the storage layer.

use std::fmt;

/// Result alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A tuple's arity does not match the arity of the relation's schema.
    ArityMismatch {
        /// Relation the tuple was inserted into.
        relation: String,
        /// Number of attributes declared by the schema.
        expected: usize,
        /// Number of values in the offending tuple.
        actual: usize,
    },
    /// A value's type does not match the declared attribute type.
    TypeMismatch {
        /// Relation the tuple was inserted into.
        relation: String,
        /// Attribute whose type was violated.
        attribute: String,
        /// Declared type.
        expected: crate::DataType,
        /// Type of the value that was supplied.
        actual: crate::DataType,
    },
    /// An attribute name was not found in a schema.
    UnknownAttribute {
        /// Relation that was searched.
        relation: String,
        /// Attribute that was requested.
        attribute: String,
    },
    /// A relation name was not found in the catalog.
    UnknownRelation(String),
    /// A relation with the same name is already registered in the catalog.
    DuplicateRelation(String),
    /// A schema declared two attributes with the same name.
    DuplicateAttribute {
        /// Relation declaring the duplicate.
        relation: String,
        /// The duplicated attribute name.
        attribute: String,
    },
    /// A shard spec was out of bounds (`shards == 0` or `index ≥ shards`).
    InvalidShardSpec {
        /// Declared shard count.
        shards: usize,
        /// Offending shard index.
        index: usize,
    },
    /// Shard slices being merged do not line up with the row→shard assignment.
    ShardMergeMismatch {
        /// Relation being merged.
        relation: String,
        /// Rows the assignment expects.
        expected: usize,
        /// Rows the slices supplied.
        actual: usize,
    },
    /// A serialised tuple could not be decoded.
    Codec(String),
    /// An I/O operation on a spill segment (or other storage file) failed.
    ///
    /// Carries the rendered `std::io::Error` so the error type stays `Clone + PartialEq`.
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch inserting into '{relation}': schema has {expected} attributes, tuple has {actual}"
            ),
            StorageError::TypeMismatch {
                relation,
                attribute,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch in '{relation}.{attribute}': expected {expected}, got {actual}"
            ),
            StorageError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "unknown attribute '{attribute}' in relation '{relation}'"),
            StorageError::UnknownRelation(name) => write!(f, "unknown relation '{name}'"),
            StorageError::DuplicateRelation(name) => {
                write!(f, "relation '{name}' is already registered")
            }
            StorageError::DuplicateAttribute {
                relation,
                attribute,
            } => write!(
                f,
                "relation '{relation}' declares attribute '{attribute}' more than once"
            ),
            StorageError::InvalidShardSpec { shards, index } => {
                write!(f, "invalid shard spec: index {index} of {shards} shards")
            }
            StorageError::ShardMergeMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "shard merge of '{relation}': assignment covers {expected} rows, slices hold {actual}"
            ),
            StorageError::Codec(msg) => write!(f, "codec error: {msg}"),
            StorageError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataType;

    #[test]
    fn display_arity_mismatch() {
        let err = StorageError::ArityMismatch {
            relation: "Customer".into(),
            expected: 6,
            actual: 4,
        };
        let msg = err.to_string();
        assert!(msg.contains("Customer"));
        assert!(msg.contains('6'));
        assert!(msg.contains('4'));
    }

    #[test]
    fn display_type_mismatch() {
        let err = StorageError::TypeMismatch {
            relation: "Customer".into(),
            attribute: "cid".into(),
            expected: DataType::Int,
            actual: DataType::Text,
        };
        assert!(err.to_string().contains("cid"));
    }

    #[test]
    fn display_unknown_names() {
        assert!(StorageError::UnknownRelation("Nope".into())
            .to_string()
            .contains("Nope"));
        assert!(StorageError::UnknownAttribute {
            relation: "R".into(),
            attribute: "a".into()
        }
        .to_string()
        .contains('a'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&StorageError::UnknownRelation("x".into()));
    }
}
