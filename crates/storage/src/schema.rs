//! Relation schemas and attribute references.

use crate::{DataType, StorageError, StorageResult};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A single attribute (column) declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, unique within its relation.
    pub name: String,
    /// Declared data type.
    pub data_type: DataType,
}

impl Attribute {
    /// Creates a new attribute.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Attribute {
            name: name.into(),
            data_type,
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.data_type)
    }
}

/// A fully-qualified attribute reference: `alias.attribute`.
///
/// Schema-matching correspondences relate attributes of *relations*, but queries may mention the
/// same relation several times (the paper's Q3/Q4 self-join `Item1 × Item2`), so references are
/// qualified by an alias.  When the alias equals the relation name the reference is unaliased.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrRef {
    /// Relation alias (defaults to the relation name).
    pub alias: String,
    /// Attribute name within that relation.
    pub attr: String,
}

impl AttrRef {
    /// Creates a new qualified attribute reference.
    pub fn new(alias: impl Into<String>, attr: impl Into<String>) -> Self {
        AttrRef {
            alias: alias.into(),
            attr: attr.into(),
        }
    }

    /// Parses a reference of the form `"alias.attr"`; a bare name becomes an empty alias.
    #[must_use]
    pub fn parse(s: &str) -> Self {
        match s.split_once('.') {
            Some((alias, attr)) => AttrRef::new(alias, attr),
            None => AttrRef::new("", s),
        }
    }

    /// Returns the `alias.attr` rendering used as column names of derived relations.
    #[must_use]
    pub fn qualified(&self) -> String {
        if self.alias.is_empty() {
            self.attr.clone()
        } else {
            format!("{}.{}", self.alias, self.attr)
        }
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.qualified())
    }
}

/// The schema of a relation: a name plus an ordered list of attributes.
///
/// Schemas are immutable once built and shared via [`Arc`] between the catalog, materialised
/// relations and query plans; attribute positions are resolved through an internal index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schema {
    name: String,
    attributes: Arc<[Attribute]>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema from a relation name and attribute list.
    ///
    /// # Panics
    /// Panics if two attributes share a name; use [`Schema::try_new`] for a fallible variant.
    pub fn new(name: impl Into<String>, attributes: Vec<Attribute>) -> Self {
        Self::try_new(name, attributes).expect("duplicate attribute in schema")
    }

    /// Fallible constructor that rejects duplicate attribute names.
    pub fn try_new(name: impl Into<String>, attributes: Vec<Attribute>) -> StorageResult<Self> {
        let name = name.into();
        let mut index = HashMap::with_capacity(attributes.len());
        for (i, attr) in attributes.iter().enumerate() {
            if index.insert(attr.name.clone(), i).is_some() {
                return Err(StorageError::DuplicateAttribute {
                    relation: name,
                    attribute: attr.name.clone(),
                });
            }
        }
        Ok(Schema {
            name,
            attributes: attributes.into(),
            index,
        })
    }

    /// The relation name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns a copy of this schema under a different relation name (used for aliased scans).
    #[must_use]
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        Schema {
            name: name.into(),
            attributes: Arc::clone(&self.attributes),
            index: self.index.clone(),
        }
    }

    /// The ordered attribute list.
    #[must_use]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of an attribute by name.
    #[must_use]
    pub fn position(&self, attr: &str) -> Option<usize> {
        self.index.get(attr).copied()
    }

    /// Position of an attribute, as an error-carrying lookup.
    pub fn require(&self, attr: &str) -> StorageResult<usize> {
        self.position(attr)
            .ok_or_else(|| StorageError::UnknownAttribute {
                relation: self.name.clone(),
                attribute: attr.to_string(),
            })
    }

    /// Whether the schema declares the given attribute.
    #[must_use]
    pub fn contains(&self, attr: &str) -> bool {
        self.index.contains_key(attr)
    }

    /// Attribute names in declaration order.
    pub fn attribute_names(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().map(|a| a.name.as_str())
    }

    /// Builds the schema of the concatenation of two schemas (Cartesian product / join output).
    ///
    /// Output attribute names are qualified with the source relation name when the plain name
    /// would collide.
    #[must_use]
    pub fn product(&self, other: &Schema, name: impl Into<String>) -> Schema {
        let mut attrs = Vec::with_capacity(self.arity() + other.arity());
        for a in self.attributes.iter() {
            attrs.push(a.clone());
        }
        for a in other.attributes.iter() {
            if self.contains(&a.name) {
                attrs.push(Attribute::new(
                    format!("{}.{}", other.name, a.name),
                    a.data_type,
                ));
            } else {
                attrs.push(a.clone());
            }
        }
        Schema::new(name, attrs)
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.attributes == other.attributes
    }
}

impl Eq for Schema {}

impl std::hash::Hash for Schema {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
        self.attributes.hash(state);
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer() -> Schema {
        Schema::new(
            "Customer",
            vec![
                Attribute::new("cid", DataType::Int),
                Attribute::new("cname", DataType::Text),
                Attribute::new("ophone", DataType::Text),
            ],
        )
    }

    #[test]
    fn positions_follow_declaration_order() {
        let s = customer();
        assert_eq!(s.position("cid"), Some(0));
        assert_eq!(s.position("cname"), Some(1));
        assert_eq!(s.position("ophone"), Some(2));
        assert_eq!(s.position("nope"), None);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn require_reports_relation_and_attribute() {
        let s = customer();
        let err = s.require("ghost").unwrap_err();
        match err {
            StorageError::UnknownAttribute {
                relation,
                attribute,
            } => {
                assert_eq!(relation, "Customer");
                assert_eq!(attribute, "ghost");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn duplicate_attributes_are_rejected() {
        let res = Schema::try_new(
            "R",
            vec![
                Attribute::new("a", DataType::Int),
                Attribute::new("a", DataType::Text),
            ],
        );
        assert!(matches!(res, Err(StorageError::DuplicateAttribute { .. })));
    }

    #[test]
    fn renamed_keeps_attributes() {
        let s = customer().renamed("Customer1");
        assert_eq!(s.name(), "Customer1");
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position("cname"), Some(1));
    }

    #[test]
    fn product_qualifies_colliding_names() {
        let a = Schema::new(
            "A",
            vec![
                Attribute::new("id", DataType::Int),
                Attribute::new("x", DataType::Text),
            ],
        );
        let b = Schema::new(
            "B",
            vec![
                Attribute::new("id", DataType::Int),
                Attribute::new("y", DataType::Text),
            ],
        );
        let p = a.product(&b, "AxB");
        let names: Vec<_> = p.attribute_names().collect();
        assert_eq!(names, vec!["id", "x", "B.id", "y"]);
    }

    #[test]
    fn attr_ref_parse_and_display() {
        let r = AttrRef::parse("PO.orderNum");
        assert_eq!(r.alias, "PO");
        assert_eq!(r.attr, "orderNum");
        assert_eq!(r.to_string(), "PO.orderNum");
        let bare = AttrRef::parse("price");
        assert_eq!(bare.alias, "");
        assert_eq!(bare.qualified(), "price");
    }

    #[test]
    fn schema_equality_ignores_index_internals() {
        let a = customer();
        let b = customer();
        assert_eq!(a, b);
        let c = a.renamed("Other");
        assert_ne!(a, c);
    }
}
