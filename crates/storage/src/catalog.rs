//! The catalog: the source instance `D`, a named collection of relations.

use crate::{Relation, Schema, StorageError, StorageResult};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A named collection of materialised relations — the paper's *source instance* `D`.
///
/// Relations are held behind [`Arc`] so the many source queries generated from a mapping set can
/// scan the same base data without copying it.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: BTreeMap<String, Arc<Relation>>,
}

impl Catalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a relation under its schema name, replacing any existing relation of that name.
    pub fn insert(&mut self, relation: Relation) {
        self.relations
            .insert(relation.schema().name().to_string(), Arc::new(relation));
    }

    /// Registers a relation, failing if one with the same name already exists.
    pub fn try_insert(&mut self, relation: Relation) -> StorageResult<()> {
        let name = relation.schema().name().to_string();
        if self.relations.contains_key(&name) {
            return Err(StorageError::DuplicateRelation(name));
        }
        self.relations.insert(name, Arc::new(relation));
        Ok(())
    }

    /// Looks up a relation by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<Relation>> {
        self.relations.get(name).cloned()
    }

    /// Looks up a relation, returning an error naming the missing relation.
    pub fn require(&self, name: &str) -> StorageResult<Arc<Relation>> {
        self.get(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Returns the schema of a relation.
    #[must_use]
    pub fn schema(&self, name: &str) -> Option<Schema> {
        self.relations.get(name).map(|r| r.schema().clone())
    }

    /// Finds the relation (if any) that declares the given attribute.
    ///
    /// Used by operator reformulation (Section VI-B) to locate the source relation(s) covering a
    /// set of mapped source attributes.  Attribute names in the generated schemas are globally
    /// unique, mirroring the paper's schemas, so the first hit is the only hit.
    #[must_use]
    pub fn relation_of_attribute(&self, attr: &str) -> Option<&str> {
        self.relations
            .values()
            .find(|r| r.schema().contains(attr))
            .map(|r| r.schema().name())
    }

    /// Iterates over `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Relation>)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Relation names in sorted order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Number of relations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total number of tuples across all relations.
    #[must_use]
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Estimated total size in bytes (see [`Relation::estimated_bytes`]).
    #[must_use]
    pub fn estimated_bytes(&self) -> usize {
        self.relations.values().map(|r| r.estimated_bytes()).sum()
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "catalog: {} relations, {} tuples, ~{} bytes",
            self.len(),
            self.total_tuples(),
            self.estimated_bytes()
        )?;
        for (name, rel) in self.iter() {
            writeln!(f, "  {} — {} rows", name, rel.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, DataType, Tuple, Value};

    fn rel(name: &str, attr: &str, n: usize) -> Relation {
        let schema = Schema::new(name, vec![Attribute::new(attr, DataType::Int)]);
        let rows = (0..n)
            .map(|i| Tuple::new(vec![Value::from(i as i64)]))
            .collect();
        Relation::new(schema, rows).unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut cat = Catalog::new();
        cat.insert(rel("Customer", "cid", 3));
        cat.insert(rel("Order", "oid", 2));
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.get("Customer").unwrap().len(), 3);
        assert!(cat.get("Missing").is_none());
        assert!(cat.require("Missing").is_err());
        assert_eq!(cat.total_tuples(), 5);
    }

    #[test]
    fn try_insert_rejects_duplicates() {
        let mut cat = Catalog::new();
        cat.try_insert(rel("Customer", "cid", 1)).unwrap();
        let err = cat.try_insert(rel("Customer", "cid", 1)).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateRelation(_)));
    }

    #[test]
    fn relation_of_attribute_finds_owner() {
        let mut cat = Catalog::new();
        cat.insert(rel("Customer", "cid", 1));
        cat.insert(rel("Order", "oid", 1));
        assert_eq!(cat.relation_of_attribute("oid"), Some("Order"));
        assert_eq!(cat.relation_of_attribute("cid"), Some("Customer"));
        assert_eq!(cat.relation_of_attribute("ghost"), None);
    }

    #[test]
    fn names_are_sorted() {
        let mut cat = Catalog::new();
        cat.insert(rel("Zeta", "z", 0));
        cat.insert(rel("Alpha", "a", 0));
        let names: Vec<_> = cat.relation_names().collect();
        assert_eq!(names, vec!["Alpha", "Zeta"]);
    }

    #[test]
    fn display_mentions_counts() {
        let mut cat = Catalog::new();
        cat.insert(rel("Customer", "cid", 4));
        let s = cat.to_string();
        assert!(s.contains("Customer"));
        assert!(s.contains("4 rows"));
    }
}
