//! The catalog: the source instance `D`, a named collection of relations.

use crate::{ColumnarRelation, Relation, Schema, StorageError, StorageResult};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

/// A named collection of materialised relations — the paper's *source instance* `D`.
///
/// Relations are held behind [`Arc`] so the many source queries generated from a mapping set can
/// scan the same base data without copying it.
///
/// The catalog also memoises [`ColumnarRelation`] conversions, keyed by *row-buffer identity*:
/// the same buffer scanned under different aliases shares one conversion, catalog clones (the
/// per-worker executors of the DAG scheduler) share the cache, and an entry pins its source
/// buffer alive — so a cache key can never be a dangling pointer reused by another allocation.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: BTreeMap<String, Arc<Relation>>,
    columnar: Arc<Mutex<HashMap<usize, Arc<ColumnarRelation>>>>,
}

impl Catalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a relation under its schema name, replacing any existing relation of that name.
    pub fn insert(&mut self, relation: Relation) {
        self.relations
            .insert(relation.schema().name().to_string(), Arc::new(relation));
    }

    /// Registers a relation, failing if one with the same name already exists.
    pub fn try_insert(&mut self, relation: Relation) -> StorageResult<()> {
        let name = relation.schema().name().to_string();
        if self.relations.contains_key(&name) {
            return Err(StorageError::DuplicateRelation(name));
        }
        self.relations.insert(name, Arc::new(relation));
        Ok(())
    }

    /// Looks up a relation by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<Relation>> {
        self.relations.get(name).cloned()
    }

    /// Looks up a relation, returning an error naming the missing relation.
    pub fn require(&self, name: &str) -> StorageResult<Arc<Relation>> {
        self.get(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Returns the schema of a relation.
    #[must_use]
    pub fn schema(&self, name: &str) -> Option<Schema> {
        self.relations.get(name).map(|r| r.schema().clone())
    }

    /// Finds the relation (if any) that declares the given attribute.
    ///
    /// Used by operator reformulation (Section VI-B) to locate the source relation(s) covering a
    /// set of mapped source attributes.  Attribute names in the generated schemas are globally
    /// unique, mirroring the paper's schemas, so the first hit is the only hit.
    #[must_use]
    pub fn relation_of_attribute(&self, attr: &str) -> Option<&str> {
        self.relations
            .values()
            .find(|r| r.schema().contains(attr))
            .map(|r| r.schema().name())
    }

    /// Iterates over `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Relation>)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Relation names in sorted order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Number of relations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total number of tuples across all relations.
    #[must_use]
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Estimated total size in bytes (see [`Relation::estimated_bytes`]).
    #[must_use]
    pub fn estimated_bytes(&self) -> usize {
        self.relations.values().map(|r| r.estimated_bytes()).sum()
    }

    fn buffer_key(rel: &Relation) -> usize {
        Arc::as_ptr(&rel.shared_rows()) as *const () as usize
    }

    /// The memoised columnar conversion of a relation's row buffer, converting on first use.
    ///
    /// Conversions are shared across aliases of the same buffer and across catalog clones.
    /// The executor calls this at scan time when the columnar path is enabled.
    #[must_use]
    pub fn columnar_view(&self, rel: &Relation) -> Arc<ColumnarRelation> {
        let key = Catalog::buffer_key(rel);
        let mut cache = self.columnar.lock().unwrap();
        if let Some(found) = cache.get(&key) {
            // An entry pins its source buffer, so a matching key is almost certainly the same
            // allocation — but verify identity anyway: the map survives relations it indexed.
            if found.matches_buffer(rel) {
                return Arc::clone(found);
            }
        }
        let converted = Arc::new(ColumnarRelation::from_relation(rel));
        cache.insert(key, Arc::clone(&converted));
        converted
    }

    /// The memoised columnar conversion of a relation's row buffer, if one exists (no
    /// conversion is performed).  Used by per-node execution paths that only want the
    /// columnar kernels for buffers a scan already converted.
    #[must_use]
    pub fn cached_columnar(&self, rel: &Relation) -> Option<Arc<ColumnarRelation>> {
        let cache = self.columnar.lock().unwrap();
        cache
            .get(&Catalog::buffer_key(rel))
            .filter(|c| c.matches_buffer(rel))
            .map(Arc::clone)
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "catalog: {} relations, {} tuples, ~{} bytes",
            self.len(),
            self.total_tuples(),
            self.estimated_bytes()
        )?;
        for (name, rel) in self.iter() {
            writeln!(f, "  {} — {} rows", name, rel.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, DataType, Tuple, Value};

    fn rel(name: &str, attr: &str, n: usize) -> Relation {
        let schema = Schema::new(name, vec![Attribute::new(attr, DataType::Int)]);
        let rows = (0..n)
            .map(|i| Tuple::new(vec![Value::from(i as i64)]))
            .collect();
        Relation::new(schema, rows).unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut cat = Catalog::new();
        cat.insert(rel("Customer", "cid", 3));
        cat.insert(rel("Order", "oid", 2));
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.get("Customer").unwrap().len(), 3);
        assert!(cat.get("Missing").is_none());
        assert!(cat.require("Missing").is_err());
        assert_eq!(cat.total_tuples(), 5);
    }

    #[test]
    fn try_insert_rejects_duplicates() {
        let mut cat = Catalog::new();
        cat.try_insert(rel("Customer", "cid", 1)).unwrap();
        let err = cat.try_insert(rel("Customer", "cid", 1)).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateRelation(_)));
    }

    #[test]
    fn relation_of_attribute_finds_owner() {
        let mut cat = Catalog::new();
        cat.insert(rel("Customer", "cid", 1));
        cat.insert(rel("Order", "oid", 1));
        assert_eq!(cat.relation_of_attribute("oid"), Some("Order"));
        assert_eq!(cat.relation_of_attribute("cid"), Some("Customer"));
        assert_eq!(cat.relation_of_attribute("ghost"), None);
    }

    #[test]
    fn names_are_sorted() {
        let mut cat = Catalog::new();
        cat.insert(rel("Zeta", "z", 0));
        cat.insert(rel("Alpha", "a", 0));
        let names: Vec<_> = cat.relation_names().collect();
        assert_eq!(names, vec!["Alpha", "Zeta"]);
    }

    #[test]
    fn columnar_views_are_memoised_by_buffer_identity() {
        let mut cat = Catalog::new();
        cat.insert(rel("Customer", "cid", 5));
        let base = cat.get("Customer").unwrap();
        let a = cat.columnar_view(&base);
        // Aliased scan of the same buffer: same conversion.
        let b = cat.columnar_view(&base.renamed("C1"));
        assert!(Arc::ptr_eq(&a, &b));
        // Catalog clones share the cache.
        let clone = cat.clone();
        assert!(Arc::ptr_eq(&a, &clone.columnar_view(&base)));
        assert!(clone.cached_columnar(&base).is_some());
        // A different buffer with equal contents is a different conversion.
        let other = rel("Customer", "cid", 5);
        assert!(cat.cached_columnar(&other).is_none());
        let c = cat.columnar_view(&other);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn display_mentions_counts() {
        let mut cat = Catalog::new();
        cat.insert(rel("Customer", "cid", 4));
        let s = cat.to_string();
        assert!(s.contains("Customer"));
        assert!(s.contains("4 rows"));
    }
}
