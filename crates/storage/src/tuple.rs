//! Tuples (rows) of relations.

use crate::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An immutable row of values.
///
/// Tuples are shared (`Arc`) because the same source tuple typically flows into the results of
/// many source queries (one per mapping partition); copying a tuple is a pointer bump.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Creates a tuple from a vector of values.
    #[must_use]
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into(),
        }
    }

    /// The empty tuple (arity 0); used as the null tuple `θ` of empty query answers.
    #[must_use]
    pub fn empty() -> Self {
        Tuple {
            values: Arc::from(Vec::new()),
        }
    }

    /// Number of values in the tuple.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Whether this is the empty (null) tuple.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at position `i`, if any.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// All values as a slice.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Builds a new tuple keeping only the values at `positions`, in that order.
    #[must_use]
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(
            positions
                .iter()
                .map(|&i| self.values.get(i).cloned().unwrap_or(Value::Null))
                .collect(),
        )
    }

    /// Concatenates two tuples (Cartesian product of rows).
    #[must_use]
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(values)
    }

    /// Iterates over the values.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.values.iter()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::from(v)).collect()
    }

    #[test]
    fn arity_and_access() {
        let tup = t(&[1, 2, 3]);
        assert_eq!(tup.arity(), 3);
        assert_eq!(tup.get(0), Some(&Value::from(1i64)));
        assert_eq!(tup.get(3), None);
        assert!(!tup.is_empty());
        assert!(Tuple::empty().is_empty());
    }

    #[test]
    fn projection_reorders_and_pads() {
        let tup = t(&[10, 20, 30]);
        let p = tup.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::from(30i64), Value::from(10i64)]);
        // Out-of-range positions become NULL rather than panicking: reformulated projections may
        // reference attributes a partial mapping did not cover.
        let q = tup.project(&[5]);
        assert_eq!(q.values(), &[Value::Null]);
    }

    #[test]
    fn concat_joins_rows() {
        let a = t(&[1, 2]);
        let b = t(&[3]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.get(2), Some(&Value::from(3i64)));
    }

    #[test]
    fn equality_and_hash_are_structural() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(t(&[1, 2]));
        set.insert(t(&[1, 2]));
        set.insert(t(&[2, 1]));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_formats_row() {
        let tup = Tuple::new(vec![Value::from("aaa"), Value::from(5i64)]);
        assert_eq!(tup.to_string(), "(aaa, 5)");
    }

    #[test]
    fn clone_is_cheap_and_shares_storage() {
        let tup = t(&[1, 2, 3]);
        let other = tup.clone();
        assert_eq!(tup, other);
        assert!(Arc::ptr_eq(&tup.values, &other.values));
    }
}
