//! Primitive data types supported by the storage layer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The data types that attribute values may take.
///
/// The paper's workload (purchase orders generated from a TPC-H-like schema) only needs
/// integers, floating point prices, booleans and text, so the type lattice is intentionally
/// small.  `Null` is a first-class member so that partial correspondences (attributes with no
/// counterpart under a mapping) can still be materialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 floating point number.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
    /// The type of `Value::Null`; compatible with every other type.
    Null,
}

impl DataType {
    /// Returns true when a value of type `other` may be stored in a column of type `self`.
    ///
    /// `Null` is compatible in both directions; ints may be widened to floats.
    #[must_use]
    pub fn accepts(self, other: DataType) -> bool {
        self == other
            || other == DataType::Null
            || self == DataType::Null
            || (self == DataType::Float && other == DataType::Int)
    }

    /// A short lower-case name for the type, used in error messages and plan displays.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Text => "text",
            DataType::Bool => "bool",
            DataType::Null => "null",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_same_type() {
        for ty in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
        ] {
            assert!(ty.accepts(ty));
        }
    }

    #[test]
    fn accepts_null_everywhere() {
        for ty in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
        ] {
            assert!(ty.accepts(DataType::Null));
            assert!(DataType::Null.accepts(ty));
        }
    }

    #[test]
    fn float_accepts_int_but_not_reverse() {
        assert!(DataType::Float.accepts(DataType::Int));
        assert!(!DataType::Int.accepts(DataType::Float));
    }

    #[test]
    fn text_rejects_numbers() {
        assert!(!DataType::Text.accepts(DataType::Int));
        assert!(!DataType::Text.accepts(DataType::Float));
    }

    #[test]
    fn display_names() {
        assert_eq!(DataType::Int.to_string(), "int");
        assert_eq!(DataType::Text.to_string(), "text");
        assert_eq!(DataType::Null.to_string(), "null");
    }
}
