//! Compact binary encoding of tuples and relations.
//!
//! The experiment harness snapshots generated source instances so that repeated benchmark runs
//! (different algorithms over the same data) do not re-generate data, and so that intermediate
//! e-unit results can be spilled if a sweep materialises many of them.  The format is a simple
//! length-prefixed row encoding built on [`bytes`].

use crate::{DataType, Relation, Schema, StorageError, StorageResult, Tuple, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BOOL: u8 = 4;

/// Encodes a single value into the buffer.
pub fn encode_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*f);
        }
        Value::Text(s) => {
            buf.put_u8(TAG_TEXT);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(u8::from(*b));
        }
    }
}

/// Decodes a single value from the buffer.
pub fn decode_value(buf: &mut Bytes) -> StorageResult<Value> {
    if !buf.has_remaining() {
        return Err(StorageError::Codec("unexpected end of buffer".into()));
    }
    let tag = buf.get_u8();
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => {
            ensure_remaining(buf, 8)?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        TAG_FLOAT => {
            ensure_remaining(buf, 8)?;
            Ok(Value::Float(buf.get_f64_le()))
        }
        TAG_TEXT => {
            ensure_remaining(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            ensure_remaining(buf, len)?;
            let raw = buf.split_to(len);
            let s = std::str::from_utf8(&raw)
                .map_err(|e| StorageError::Codec(format!("invalid utf8: {e}")))?;
            Ok(Value::text(s))
        }
        TAG_BOOL => {
            ensure_remaining(buf, 1)?;
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        other => Err(StorageError::Codec(format!("unknown value tag {other}"))),
    }
}

fn ensure_remaining(buf: &Bytes, needed: usize) -> StorageResult<()> {
    if buf.remaining() < needed {
        Err(StorageError::Codec(format!(
            "need {needed} more bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

/// Encodes a tuple as `arity` followed by its values.
pub fn encode_tuple(buf: &mut BytesMut, tuple: &Tuple) {
    buf.put_u32_le(tuple.arity() as u32);
    for v in tuple.iter() {
        encode_value(buf, v);
    }
}

/// Decodes a tuple.
///
/// Corrupt input yields a typed [`StorageError::Codec`], never a panic or a pathological
/// allocation: a declared arity larger than the remaining payload (every encoded value takes
/// at least one byte) is rejected *before* any buffer is sized from it.
pub fn decode_tuple(buf: &mut Bytes) -> StorageResult<Tuple> {
    ensure_remaining(buf, 4)?;
    let arity = buf.get_u32_le() as usize;
    if arity > buf.remaining() {
        return Err(StorageError::Codec(format!(
            "declared tuple arity {arity} exceeds the {} remaining payload bytes",
            buf.remaining()
        )));
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(buf)?);
    }
    Ok(Tuple::new(values))
}

/// Encodes the rows of a relation (the schema is written separately, via serde, because it is
/// tiny compared to the data).
#[must_use]
pub fn encode_rows(relation: &Relation) -> Bytes {
    let mut buf = BytesMut::with_capacity(relation.estimated_bytes() + 16);
    buf.put_u64_le(relation.len() as u64);
    for row in relation.iter() {
        encode_tuple(&mut buf, row);
    }
    buf.freeze()
}

/// Decodes rows previously produced by [`encode_rows`] into a relation with the given schema.
///
/// Decoding is fully validating and never panics on hostile input: truncated or corrupt
/// payloads are typed [`StorageError::Codec`] errors (a declared row count that could not
/// possibly fit the remaining bytes is rejected up front — every encoded tuple takes at least
/// four bytes), and a payload whose tuples do not fit `schema` surfaces the same typed
/// [`StorageError::ArityMismatch`] / [`StorageError::TypeMismatch`] errors as
/// [`Relation::push`].
pub fn decode_rows(schema: Schema, mut bytes: Bytes) -> StorageResult<Relation> {
    ensure_remaining(&bytes, 8)?;
    let n = bytes.get_u64_le() as usize;
    if n.saturating_mul(4) > bytes.remaining() {
        return Err(StorageError::Codec(format!(
            "declared row count {n} exceeds the {} remaining payload bytes",
            bytes.remaining()
        )));
    }
    let mut rel = Relation::empty(schema);
    for _ in 0..n {
        let tuple = decode_tuple(&mut bytes)?;
        rel.push(tuple)?;
    }
    Ok(rel)
}

/// Convenience: checks that every value in a relation round-trips through the codec.
pub fn roundtrip(relation: &Relation) -> StorageResult<Relation> {
    decode_rows(relation.schema().clone(), encode_rows(relation))
}

/// Expected [`DataType`] for an encoded tag, used by schema-validation tooling.
#[must_use]
pub fn tag_data_type(tag: u8) -> Option<DataType> {
    match tag {
        TAG_NULL => Some(DataType::Null),
        TAG_INT => Some(DataType::Int),
        TAG_FLOAT => Some(DataType::Float),
        TAG_TEXT => Some(DataType::Text),
        TAG_BOOL => Some(DataType::Bool),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, Schema};

    fn sample_relation() -> Relation {
        let schema = Schema::new(
            "Sample",
            vec![
                Attribute::new("id", DataType::Int),
                Attribute::new("name", DataType::Text),
                Attribute::new("price", DataType::Float),
                Attribute::new("active", DataType::Bool),
                Attribute::new("note", DataType::Text),
            ],
        );
        Relation::new(
            schema,
            vec![
                Tuple::new(vec![
                    Value::from(1i64),
                    Value::from("widget"),
                    Value::from(9.75),
                    Value::from(true),
                    Value::Null,
                ]),
                Tuple::new(vec![
                    Value::from(2i64),
                    Value::from("gadget"),
                    Value::from(-3.5),
                    Value::from(false),
                    Value::from("backorder"),
                ]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn value_roundtrip() {
        let values = vec![
            Value::Null,
            Value::from(i64::MIN),
            Value::from(i64::MAX),
            Value::from(0.0),
            Value::from(-1.25e10),
            Value::from(""),
            Value::from("hello world"),
            Value::from(true),
            Value::from(false),
        ];
        for v in values {
            let mut buf = BytesMut::new();
            encode_value(&mut buf, &v);
            let mut bytes = buf.freeze();
            let decoded = decode_value(&mut bytes).unwrap();
            assert_eq!(decoded, v);
            assert!(!bytes.has_remaining());
        }
    }

    #[test]
    fn tuple_roundtrip() {
        let t = Tuple::new(vec![Value::from(7i64), Value::from("x"), Value::Null]);
        let mut buf = BytesMut::new();
        encode_tuple(&mut buf, &t);
        let mut bytes = buf.freeze();
        assert_eq!(decode_tuple(&mut bytes).unwrap(), t);
    }

    #[test]
    fn relation_roundtrip() {
        let rel = sample_relation();
        let back = roundtrip(&rel).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn truncated_buffer_is_an_error() {
        let rel = sample_relation();
        let bytes = encode_rows(&rel);
        let truncated = bytes.slice(0..bytes.len() - 3);
        let err = decode_rows(rel.schema().clone(), truncated).unwrap_err();
        assert!(matches!(err, StorageError::Codec(_)));
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let mut buf = BytesMut::new();
        buf.put_u8(99);
        let mut bytes = buf.freeze();
        assert!(matches!(
            decode_value(&mut bytes),
            Err(StorageError::Codec(_))
        ));
    }

    #[test]
    fn zero_length_input_is_an_error_everywhere() {
        let rel = sample_relation();
        assert!(matches!(
            decode_rows(rel.schema().clone(), Bytes::from(Vec::new())),
            Err(StorageError::Codec(_))
        ));
        assert!(matches!(
            decode_tuple(&mut Bytes::from(Vec::new())),
            Err(StorageError::Codec(_))
        ));
        assert!(matches!(
            decode_value(&mut Bytes::from(Vec::new())),
            Err(StorageError::Codec(_))
        ));
    }

    #[test]
    fn mid_value_truncation_is_an_error() {
        // Cut inside the second row's text payload: the row-count header is intact, the first
        // row decodes, the truncation surfaces as a typed codec error (never a panic).
        let rel = sample_relation();
        let bytes = encode_rows(&rel);
        for cut in [bytes.len() - 1, bytes.len() - 5, bytes.len() / 2, 9, 12] {
            let truncated = bytes.slice(0..cut);
            let err = decode_rows(rel.schema().clone(), truncated).unwrap_err();
            assert!(
                matches!(err, StorageError::Codec(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn wrong_schema_payloads_are_typed_errors() {
        let rel = sample_relation();
        let bytes = encode_rows(&rel);
        // Fewer attributes than the payload's tuples: arity mismatch.
        let narrow = Schema::new("Narrow", vec![Attribute::new("id", DataType::Int)]);
        assert!(matches!(
            decode_rows(narrow, bytes.clone()),
            Err(StorageError::ArityMismatch { .. })
        ));
        // Same arity, incompatible attribute type: type mismatch.
        let wrong_type = Schema::new(
            "Wrong",
            vec![
                Attribute::new("id", DataType::Text), // payload has Int here
                Attribute::new("name", DataType::Text),
                Attribute::new("price", DataType::Float),
                Attribute::new("active", DataType::Bool),
                Attribute::new("note", DataType::Text),
            ],
        );
        assert!(matches!(
            decode_rows(wrong_type, bytes),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn absurd_declared_counts_are_rejected_before_allocating() {
        // A row count far beyond the payload must fail fast instead of looping or reserving.
        let mut buf = BytesMut::new();
        buf.put_u64_le(u64::MAX);
        let rel = sample_relation();
        assert!(matches!(
            decode_rows(rel.schema().clone(), buf.freeze()),
            Err(StorageError::Codec(_))
        ));
        // Same for a tuple whose declared arity exceeds the remaining bytes.
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        buf.put_u8(TAG_NULL);
        assert!(matches!(
            decode_tuple(&mut buf.freeze()),
            Err(StorageError::Codec(_))
        ));
    }

    #[test]
    fn tag_types() {
        assert_eq!(tag_data_type(TAG_INT), Some(DataType::Int));
        assert_eq!(tag_data_type(TAG_TEXT), Some(DataType::Text));
        assert_eq!(tag_data_type(200), None);
    }
}
