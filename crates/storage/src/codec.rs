//! Compact binary encoding of tuples and relations.
//!
//! The experiment harness snapshots generated source instances so that repeated benchmark runs
//! (different algorithms over the same data) do not re-generate data, and so that intermediate
//! e-unit results can be spilled if a sweep materialises many of them.  The format is a simple
//! length-prefixed row encoding built on [`bytes`].

use crate::column::{Column, NullBitmap};
use crate::dictionary::Dictionary;
use crate::{
    ColumnarRelation, DataType, Relation, Schema, StorageError, StorageResult, Tuple, Value,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::sync::Arc;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BOOL: u8 = 4;

/// Encodes a single value into the buffer.
pub fn encode_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*f);
        }
        Value::Text(s) => {
            buf.put_u8(TAG_TEXT);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(u8::from(*b));
        }
    }
}

/// Decodes a single value from the buffer.
pub fn decode_value(buf: &mut Bytes) -> StorageResult<Value> {
    if !buf.has_remaining() {
        return Err(StorageError::Codec("unexpected end of buffer".into()));
    }
    let tag = buf.get_u8();
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => {
            ensure_remaining(buf, 8)?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        TAG_FLOAT => {
            ensure_remaining(buf, 8)?;
            Ok(Value::Float(buf.get_f64_le()))
        }
        TAG_TEXT => {
            ensure_remaining(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            ensure_remaining(buf, len)?;
            let raw = buf.split_to(len);
            let s = std::str::from_utf8(&raw)
                .map_err(|e| StorageError::Codec(format!("invalid utf8: {e}")))?;
            Ok(Value::text(s))
        }
        TAG_BOOL => {
            ensure_remaining(buf, 1)?;
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        other => Err(StorageError::Codec(format!("unknown value tag {other}"))),
    }
}

fn ensure_remaining(buf: &Bytes, needed: usize) -> StorageResult<()> {
    if buf.remaining() < needed {
        Err(StorageError::Codec(format!(
            "need {needed} more bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

/// Encodes a tuple as `arity` followed by its values.
pub fn encode_tuple(buf: &mut BytesMut, tuple: &Tuple) {
    buf.put_u32_le(tuple.arity() as u32);
    for v in tuple.iter() {
        encode_value(buf, v);
    }
}

/// Decodes a tuple.
///
/// Corrupt input yields a typed [`StorageError::Codec`], never a panic or a pathological
/// allocation: a declared arity larger than the remaining payload (every encoded value takes
/// at least one byte) is rejected *before* any buffer is sized from it.
pub fn decode_tuple(buf: &mut Bytes) -> StorageResult<Tuple> {
    ensure_remaining(buf, 4)?;
    let arity = buf.get_u32_le() as usize;
    if arity > buf.remaining() {
        return Err(StorageError::Codec(format!(
            "declared tuple arity {arity} exceeds the {} remaining payload bytes",
            buf.remaining()
        )));
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(buf)?);
    }
    Ok(Tuple::new(values))
}

/// Encodes the rows of a relation (the schema is written separately, via serde, because it is
/// tiny compared to the data).
#[must_use]
pub fn encode_rows(relation: &Relation) -> Bytes {
    let mut buf = BytesMut::with_capacity(relation.estimated_bytes() + 16);
    buf.put_u64_le(relation.len() as u64);
    for row in relation.iter() {
        encode_tuple(&mut buf, row);
    }
    buf.freeze()
}

/// Decodes rows previously produced by [`encode_rows`] into a relation with the given schema.
///
/// Decoding is fully validating and never panics on hostile input: truncated or corrupt
/// payloads are typed [`StorageError::Codec`] errors (a declared row count that could not
/// possibly fit the remaining bytes is rejected up front — every encoded tuple takes at least
/// four bytes), and a payload whose tuples do not fit `schema` surfaces the same typed
/// [`StorageError::ArityMismatch`] / [`StorageError::TypeMismatch`] errors as
/// [`Relation::push`].
pub fn decode_rows(schema: Schema, mut bytes: Bytes) -> StorageResult<Relation> {
    ensure_remaining(&bytes, 8)?;
    let n = bytes.get_u64_le() as usize;
    if n.saturating_mul(4) > bytes.remaining() {
        return Err(StorageError::Codec(format!(
            "declared row count {n} exceeds the {} remaining payload bytes",
            bytes.remaining()
        )));
    }
    let mut rel = Relation::empty(schema);
    for _ in 0..n {
        let tuple = decode_tuple(&mut bytes)?;
        rel.push(tuple)?;
    }
    Ok(rel)
}

/// Convenience: checks that every value in a relation round-trips through the codec.
pub fn roundtrip(relation: &Relation) -> StorageResult<Relation> {
    decode_rows(relation.schema().clone(), encode_rows(relation))
}

/// Expected [`DataType`] for an encoded tag, used by schema-validation tooling.
#[must_use]
pub fn tag_data_type(tag: u8) -> Option<DataType> {
    match tag {
        TAG_NULL => Some(DataType::Null),
        TAG_INT => Some(DataType::Int),
        TAG_FLOAT => Some(DataType::Float),
        TAG_TEXT => Some(DataType::Text),
        TAG_BOOL => Some(DataType::Bool),
        _ => None,
    }
}

// ---------------------------------------------------------------------------------------------
// Columnar spill segments.
//
// Spilled relations are written column-at-a-time with per-column encodings — delta-of-int
// varints, bit-exact raw floats, run-length booleans, dictionary-coded text — falling back to
// the per-value row codec for columns that mix variants.  Decoding is fully validating (every
// declared count is checked against the remaining payload before anything is allocated from
// it) and reconstruction is exact: `decode_segment(encode_segment(r))` equals `r` including
// float bit patterns and row order.

/// Version byte of the columnar segment container.
const SEGMENT_COLUMNAR: u8 = 1;
/// Version byte marking a legacy row-codec payload (accepted by [`decode_segment`], never
/// produced by [`encode_segment`]).
const SEGMENT_ROWS: u8 = 0;

const COL_INT: u8 = 0;
const COL_FLOAT: u8 = 1;
const COL_BOOL: u8 = 2;
const COL_TEXT: u8 = 3;
const COL_MIXED: u8 = 4;

/// Text-code sub-encodings: one varint code per row, or run-length `(code, len)` pairs.
const TEXT_PLAIN: u8 = 0;
const TEXT_RLE: u8 = 1;

/// Decoded-side allocation guard: `with_capacity` is clamped to this many elements so a
/// hostile declared count cannot reserve unbounded memory before the per-element remaining
/// checks reject it.
const MAX_PREALLOC: usize = 1 << 20;

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> StorageResult<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(StorageError::Codec("truncated varint".into()));
        }
        if shift >= 64 {
            return Err(StorageError::Codec("varint overflows u64".into()));
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    (v.wrapping_shl(1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_nulls(buf: &mut BytesMut, nulls: Option<&NullBitmap>) {
    match nulls {
        Some(bitmap) => {
            buf.put_u8(1);
            for word in bitmap.words() {
                buf.put_u64_le(*word);
            }
        }
        None => buf.put_u8(0),
    }
}

fn get_nulls(buf: &mut Bytes, rows: usize) -> StorageResult<Option<NullBitmap>> {
    ensure_remaining(buf, 1)?;
    if buf.get_u8() == 0 {
        return Ok(None);
    }
    let words = rows.div_ceil(64);
    ensure_remaining(buf, words * 8)?;
    let mut out = Vec::with_capacity(words.min(MAX_PREALLOC));
    for _ in 0..words {
        out.push(buf.get_u64_le());
    }
    Ok(Some(NullBitmap::from_words(out, rows)))
}

fn encode_column(buf: &mut BytesMut, col: &Column) {
    match col {
        Column::Int { values, nulls } => {
            buf.put_u8(COL_INT);
            put_nulls(buf, nulls.as_ref());
            let mut prev = 0i64;
            for &v in values {
                put_varint(buf, zigzag(v.wrapping_sub(prev)));
                prev = v;
            }
        }
        Column::Float { values, nulls } => {
            buf.put_u8(COL_FLOAT);
            put_nulls(buf, nulls.as_ref());
            for &v in values {
                buf.put_u64_le(v.to_bits());
            }
        }
        Column::Bool { values, nulls } => {
            buf.put_u8(COL_BOOL);
            put_nulls(buf, nulls.as_ref());
            let mut runs: Vec<(bool, u64)> = Vec::new();
            for &v in values {
                match runs.last_mut() {
                    Some((value, len)) if *value == v => *len += 1,
                    _ => runs.push((v, 1)),
                }
            }
            put_varint(buf, runs.len() as u64);
            for (value, len) in runs {
                buf.put_u8(u8::from(value));
                put_varint(buf, len);
            }
        }
        Column::Text { codes, dict, nulls } => {
            buf.put_u8(COL_TEXT);
            put_nulls(buf, nulls.as_ref());
            put_varint(buf, dict.len() as u64);
            for entry in dict.entries() {
                put_varint(buf, entry.len() as u64);
                buf.put_slice(entry.as_bytes());
            }
            let mut runs: Vec<(u32, u64)> = Vec::new();
            for &code in codes {
                match runs.last_mut() {
                    Some((value, len)) if *value == code => *len += 1,
                    _ => runs.push((code, 1)),
                }
            }
            // Each RLE run costs at least two varints; prefer it only when runs are long
            // enough that it beats one varint per row.
            if runs.len() * 2 <= codes.len() {
                buf.put_u8(TEXT_RLE);
                put_varint(buf, runs.len() as u64);
                for (code, len) in runs {
                    put_varint(buf, u64::from(code));
                    put_varint(buf, len);
                }
            } else {
                buf.put_u8(TEXT_PLAIN);
                for &code in codes {
                    put_varint(buf, u64::from(code));
                }
            }
        }
        Column::Mixed(values) => {
            buf.put_u8(COL_MIXED);
            for v in values {
                encode_value(buf, v);
            }
        }
    }
}

fn decode_column(buf: &mut Bytes, rows: usize) -> StorageResult<Column> {
    ensure_remaining(buf, 1)?;
    let kind = buf.get_u8();
    match kind {
        COL_INT => {
            let nulls = get_nulls(buf, rows)?;
            ensure_remaining(buf, rows)?; // every delta takes at least one byte
            let mut values = Vec::with_capacity(rows.min(MAX_PREALLOC));
            let mut prev = 0i64;
            for _ in 0..rows {
                prev = prev.wrapping_add(unzigzag(get_varint(buf)?));
                values.push(prev);
            }
            Ok(Column::Int { values, nulls })
        }
        COL_FLOAT => {
            let nulls = get_nulls(buf, rows)?;
            ensure_remaining(buf, rows * 8)?;
            let mut values = Vec::with_capacity(rows.min(MAX_PREALLOC));
            for _ in 0..rows {
                values.push(f64::from_bits(buf.get_u64_le()));
            }
            Ok(Column::Float { values, nulls })
        }
        COL_BOOL => {
            let nulls = get_nulls(buf, rows)?;
            let run_count = get_varint(buf)? as usize;
            if run_count > rows {
                return Err(StorageError::Codec(format!(
                    "bool column declares {run_count} runs for {rows} rows"
                )));
            }
            let mut values = Vec::with_capacity(rows.min(MAX_PREALLOC));
            for _ in 0..run_count {
                ensure_remaining(buf, 1)?;
                let value = buf.get_u8() != 0;
                let len = get_varint(buf)? as usize;
                if values.len() + len > rows {
                    return Err(StorageError::Codec(
                        "bool column runs exceed the declared row count".into(),
                    ));
                }
                values.resize(values.len() + len, value);
            }
            if values.len() != rows {
                return Err(StorageError::Codec(format!(
                    "bool column runs cover {} of {rows} rows",
                    values.len()
                )));
            }
            Ok(Column::Bool { values, nulls })
        }
        COL_TEXT => {
            let nulls = get_nulls(buf, rows)?;
            let dict_len = get_varint(buf)? as usize;
            if dict_len > buf.remaining() {
                return Err(StorageError::Codec(format!(
                    "text dictionary declares {dict_len} entries, only {} bytes remain",
                    buf.remaining()
                )));
            }
            let mut entries: Vec<Arc<str>> = Vec::with_capacity(dict_len.min(MAX_PREALLOC));
            for _ in 0..dict_len {
                let len = get_varint(buf)? as usize;
                ensure_remaining(buf, len)?;
                let raw = buf.split_to(len);
                let s = std::str::from_utf8(&raw)
                    .map_err(|e| StorageError::Codec(format!("invalid utf8: {e}")))?;
                entries.push(Arc::from(s));
            }
            let dict = Dictionary::from_values(entries);
            let check = |code: u64| -> StorageResult<u32> {
                if (code as usize) < dict.len() {
                    Ok(code as u32)
                } else {
                    Err(StorageError::Codec(format!(
                        "text code {code} out of range for a {}-entry dictionary",
                        dict.len()
                    )))
                }
            };
            ensure_remaining(buf, 1)?;
            let mode = buf.get_u8();
            let mut codes = Vec::with_capacity(rows.min(MAX_PREALLOC));
            match mode {
                TEXT_PLAIN => {
                    for _ in 0..rows {
                        codes.push(check(get_varint(buf)?)?);
                    }
                }
                TEXT_RLE => {
                    let run_count = get_varint(buf)? as usize;
                    if run_count > rows {
                        return Err(StorageError::Codec(format!(
                            "text column declares {run_count} runs for {rows} rows"
                        )));
                    }
                    for _ in 0..run_count {
                        let code = check(get_varint(buf)?)?;
                        let len = get_varint(buf)? as usize;
                        if codes.len() + len > rows {
                            return Err(StorageError::Codec(
                                "text column runs exceed the declared row count".into(),
                            ));
                        }
                        codes.resize(codes.len() + len, code);
                    }
                    if codes.len() != rows {
                        return Err(StorageError::Codec(format!(
                            "text column runs cover {} of {rows} rows",
                            codes.len()
                        )));
                    }
                }
                other => {
                    return Err(StorageError::Codec(format!(
                        "unknown text code encoding {other}"
                    )))
                }
            }
            Ok(Column::Text {
                codes,
                dict: Arc::new(dict),
                nulls,
            })
        }
        COL_MIXED => {
            ensure_remaining(buf, rows)?; // every encoded value takes at least one byte
            let mut values = Vec::with_capacity(rows.min(MAX_PREALLOC));
            for _ in 0..rows {
                values.push(decode_value(buf)?);
            }
            Ok(Column::Mixed(values))
        }
        other => Err(StorageError::Codec(format!("unknown column kind {other}"))),
    }
}

/// Encodes a relation as a columnar spill segment (see the module docs for the per-column
/// encodings).  The schema is written separately, like [`encode_rows`].
#[must_use]
pub fn encode_segment(relation: &Relation) -> Bytes {
    let columnar = ColumnarRelation::from_relation(relation);
    let mut buf = BytesMut::with_capacity(64 + relation.estimated_bytes() / 2);
    buf.put_u8(SEGMENT_COLUMNAR);
    buf.put_u64_le(columnar.len() as u64);
    buf.put_u32_le(columnar.arity() as u32);
    for col in columnar.columns() {
        encode_column(&mut buf, col);
    }
    buf.freeze()
}

/// Decodes a spill segment produced by [`encode_segment`] (or a legacy [`encode_rows`]
/// payload behind version byte 0) into a relation with the given schema.
///
/// Decoding is fully validating: truncated or corrupt payloads surface as typed
/// [`StorageError::Codec`] errors, and decoded rows are type-checked against `schema` exactly
/// like [`decode_rows`].
pub fn decode_segment(schema: Schema, mut bytes: Bytes) -> StorageResult<Relation> {
    ensure_remaining(&bytes, 1)?;
    let version = bytes.get_u8();
    if version == SEGMENT_ROWS {
        return decode_rows(schema, bytes);
    }
    if version != SEGMENT_COLUMNAR {
        return Err(StorageError::Codec(format!(
            "unknown segment version {version}"
        )));
    }
    ensure_remaining(&bytes, 12)?;
    let rows = bytes.get_u64_le() as usize;
    let cols = bytes.get_u32_le() as usize;
    if rows > 0 && cols.saturating_mul(2) > bytes.remaining() {
        // Every non-empty column takes at least a kind byte and a null-presence byte.
        return Err(StorageError::Codec(format!(
            "declared {cols} columns exceed the {} remaining payload bytes",
            bytes.remaining()
        )));
    }
    let mut columns = Vec::with_capacity(cols.min(MAX_PREALLOC));
    for _ in 0..cols {
        columns.push(decode_column(&mut bytes, rows)?);
    }
    let tuples: Vec<Tuple> = (0..rows)
        .map(|i| Tuple::new(columns.iter().map(|c| c.value_at(i)).collect()))
        .collect();
    Relation::new(schema, tuples)
}

/// The exact byte length [`encode_rows`] would produce for this relation, computed
/// arithmetically (no encoding pass).  The spill path reports it as the "raw" size a segment
/// would have had under the row codec, against the columnar segment's actual size.
#[must_use]
pub fn encoded_rows_len(relation: &Relation) -> usize {
    let mut total = 8; // row-count header
    for row in relation.iter() {
        total += 4; // arity prefix
        for v in row.iter() {
            total += match v {
                Value::Null => 1,
                Value::Int(_) | Value::Float(_) => 9,
                Value::Bool(_) => 2,
                Value::Text(s) => 5 + s.len(),
            };
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, Schema};

    fn sample_relation() -> Relation {
        let schema = Schema::new(
            "Sample",
            vec![
                Attribute::new("id", DataType::Int),
                Attribute::new("name", DataType::Text),
                Attribute::new("price", DataType::Float),
                Attribute::new("active", DataType::Bool),
                Attribute::new("note", DataType::Text),
            ],
        );
        Relation::new(
            schema,
            vec![
                Tuple::new(vec![
                    Value::from(1i64),
                    Value::from("widget"),
                    Value::from(9.75),
                    Value::from(true),
                    Value::Null,
                ]),
                Tuple::new(vec![
                    Value::from(2i64),
                    Value::from("gadget"),
                    Value::from(-3.5),
                    Value::from(false),
                    Value::from("backorder"),
                ]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn value_roundtrip() {
        let values = vec![
            Value::Null,
            Value::from(i64::MIN),
            Value::from(i64::MAX),
            Value::from(0.0),
            Value::from(-1.25e10),
            Value::from(""),
            Value::from("hello world"),
            Value::from(true),
            Value::from(false),
        ];
        for v in values {
            let mut buf = BytesMut::new();
            encode_value(&mut buf, &v);
            let mut bytes = buf.freeze();
            let decoded = decode_value(&mut bytes).unwrap();
            assert_eq!(decoded, v);
            assert!(!bytes.has_remaining());
        }
    }

    #[test]
    fn tuple_roundtrip() {
        let t = Tuple::new(vec![Value::from(7i64), Value::from("x"), Value::Null]);
        let mut buf = BytesMut::new();
        encode_tuple(&mut buf, &t);
        let mut bytes = buf.freeze();
        assert_eq!(decode_tuple(&mut bytes).unwrap(), t);
    }

    #[test]
    fn relation_roundtrip() {
        let rel = sample_relation();
        let back = roundtrip(&rel).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn truncated_buffer_is_an_error() {
        let rel = sample_relation();
        let bytes = encode_rows(&rel);
        let truncated = bytes.slice(0..bytes.len() - 3);
        let err = decode_rows(rel.schema().clone(), truncated).unwrap_err();
        assert!(matches!(err, StorageError::Codec(_)));
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let mut buf = BytesMut::new();
        buf.put_u8(99);
        let mut bytes = buf.freeze();
        assert!(matches!(
            decode_value(&mut bytes),
            Err(StorageError::Codec(_))
        ));
    }

    #[test]
    fn zero_length_input_is_an_error_everywhere() {
        let rel = sample_relation();
        assert!(matches!(
            decode_rows(rel.schema().clone(), Bytes::from(Vec::new())),
            Err(StorageError::Codec(_))
        ));
        assert!(matches!(
            decode_tuple(&mut Bytes::from(Vec::new())),
            Err(StorageError::Codec(_))
        ));
        assert!(matches!(
            decode_value(&mut Bytes::from(Vec::new())),
            Err(StorageError::Codec(_))
        ));
    }

    #[test]
    fn mid_value_truncation_is_an_error() {
        // Cut inside the second row's text payload: the row-count header is intact, the first
        // row decodes, the truncation surfaces as a typed codec error (never a panic).
        let rel = sample_relation();
        let bytes = encode_rows(&rel);
        for cut in [bytes.len() - 1, bytes.len() - 5, bytes.len() / 2, 9, 12] {
            let truncated = bytes.slice(0..cut);
            let err = decode_rows(rel.schema().clone(), truncated).unwrap_err();
            assert!(
                matches!(err, StorageError::Codec(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn wrong_schema_payloads_are_typed_errors() {
        let rel = sample_relation();
        let bytes = encode_rows(&rel);
        // Fewer attributes than the payload's tuples: arity mismatch.
        let narrow = Schema::new("Narrow", vec![Attribute::new("id", DataType::Int)]);
        assert!(matches!(
            decode_rows(narrow, bytes.clone()),
            Err(StorageError::ArityMismatch { .. })
        ));
        // Same arity, incompatible attribute type: type mismatch.
        let wrong_type = Schema::new(
            "Wrong",
            vec![
                Attribute::new("id", DataType::Text), // payload has Int here
                Attribute::new("name", DataType::Text),
                Attribute::new("price", DataType::Float),
                Attribute::new("active", DataType::Bool),
                Attribute::new("note", DataType::Text),
            ],
        );
        assert!(matches!(
            decode_rows(wrong_type, bytes),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn absurd_declared_counts_are_rejected_before_allocating() {
        // A row count far beyond the payload must fail fast instead of looping or reserving.
        let mut buf = BytesMut::new();
        buf.put_u64_le(u64::MAX);
        let rel = sample_relation();
        assert!(matches!(
            decode_rows(rel.schema().clone(), buf.freeze()),
            Err(StorageError::Codec(_))
        ));
        // Same for a tuple whose declared arity exceeds the remaining bytes.
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        buf.put_u8(TAG_NULL);
        assert!(matches!(
            decode_tuple(&mut buf.freeze()),
            Err(StorageError::Codec(_))
        ));
    }

    #[test]
    fn tag_types() {
        assert_eq!(tag_data_type(TAG_INT), Some(DataType::Int));
        assert_eq!(tag_data_type(TAG_TEXT), Some(DataType::Text));
        assert_eq!(tag_data_type(200), None);
    }

    // --- columnar segments ---

    fn segment_roundtrip(rel: &Relation) -> Relation {
        decode_segment(rel.schema().clone(), encode_segment(rel)).unwrap()
    }

    #[test]
    fn varints_and_zigzag_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            assert_eq!(get_varint(&mut buf.freeze()).unwrap(), v);
        }
        for v in [0i64, 1, -1, 63, -64, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn segment_round_trips_every_column_kind() {
        let rel = sample_relation();
        let back = segment_roundtrip(&rel);
        assert_eq!(back, rel);
        // Bit-exact floats, not just total_cmp-equal.
        for (a, b) in rel.rows().iter().zip(back.rows()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.data_type(), y.data_type());
                if let (Value::Float(x), Value::Float(y)) = (x, y) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn segment_round_trips_empty_relations() {
        let rel = Relation::empty(sample_relation().schema().clone());
        assert_eq!(segment_roundtrip(&rel), rel);
        let no_cols = Relation::empty(Schema::new("Unit", vec![]));
        assert_eq!(segment_roundtrip(&no_cols), no_cols);
    }

    #[test]
    fn segment_round_trips_single_run_rle_columns() {
        // One bool run and one text run across the whole column.
        let schema = Schema::new(
            "Runs",
            vec![
                Attribute::new("flag", DataType::Bool),
                Attribute::new("tag", DataType::Text),
            ],
        );
        let rows = (0..100)
            .map(|_| Tuple::new(vec![Value::from(true), Value::from("only")]))
            .collect();
        let rel = Relation::new(schema, rows).unwrap();
        let encoded = encode_segment(&rel);
        assert_eq!(
            decode_segment(rel.schema().clone(), encoded.clone()).unwrap(),
            rel
        );
        // The whole 100-row segment collapses to a handful of run headers.
        assert!(
            encoded.len() < 64,
            "single-run segment took {} bytes",
            encoded.len()
        );
    }

    #[test]
    fn segment_round_trips_negative_deltas_and_extremes() {
        let schema = Schema::new("Ints", vec![Attribute::new("v", DataType::Int)]);
        let values = [0i64, -1, 100, -100, i64::MIN, i64::MAX, 7, 7, 7];
        let rows = values
            .iter()
            .map(|&v| Tuple::new(vec![Value::from(v)]))
            .collect();
        let rel = Relation::new(schema, rows).unwrap();
        assert_eq!(segment_roundtrip(&rel), rel);
    }

    #[test]
    fn segment_round_trips_null_patterns() {
        let schema = Schema::new(
            "Nulls",
            vec![
                Attribute::new("a", DataType::Int),
                Attribute::new("b", DataType::Text),
                Attribute::new("c", DataType::Float),
            ],
        );
        let rows = (0..70)
            .map(|i| {
                Tuple::new(vec![
                    if i % 3 == 0 {
                        Value::Null
                    } else {
                        Value::from(i as i64)
                    },
                    if i % 2 == 0 {
                        Value::Null
                    } else {
                        Value::text(format!("t{}", i % 4))
                    },
                    Value::Null, // all-null column
                ])
            })
            .collect();
        let rel = Relation::new(schema, rows).unwrap();
        assert_eq!(segment_roundtrip(&rel), rel);
    }

    #[test]
    fn segment_round_trips_mixed_columns_via_row_fallback() {
        let schema = Schema::new("Mix", vec![Attribute::new("v", DataType::Null)]);
        let rows = vec![
            Tuple::new(vec![Value::from(1i64)]),
            Tuple::new(vec![Value::from("one")]),
            Tuple::new(vec![Value::from(2.5)]),
            Tuple::new(vec![Value::Null]),
        ];
        let rel = Relation::from_validated(schema, rows);
        assert_eq!(segment_roundtrip(&rel), rel);
    }

    #[test]
    fn truncated_segments_are_typed_errors() {
        let rel = sample_relation();
        let bytes = encode_segment(&rel);
        for cut in 0..bytes.len() {
            let truncated = bytes.slice(0..cut);
            let err = decode_segment(rel.schema().clone(), truncated).unwrap_err();
            assert!(
                matches!(err, StorageError::Codec(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn hostile_segment_counts_are_rejected_before_allocating() {
        // Absurd row count.
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u64_le(u64::MAX);
        buf.put_u32_le(1);
        buf.put_u8(0); // COL_INT
        buf.put_u8(0); // no nulls
        let schema = Schema::new("H", vec![Attribute::new("v", DataType::Int)]);
        assert!(matches!(
            decode_segment(schema.clone(), buf.freeze()),
            Err(StorageError::Codec(_))
        ));
        // Out-of-range text code.
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u64_le(1);
        buf.put_u32_le(1);
        buf.put_u8(3); // COL_TEXT
        buf.put_u8(0); // no nulls
        buf.put_u8(1); // dict len 1
        buf.put_u8(1); // entry byte-len 1
        buf.put_u8(b'x');
        buf.put_u8(0); // plain codes
        buf.put_u8(9); // code 9 out of range
        let schema = Schema::new("H", vec![Attribute::new("v", DataType::Text)]);
        assert!(matches!(
            decode_segment(schema.clone(), buf.freeze()),
            Err(StorageError::Codec(_))
        ));
        // Bool runs that under-cover the declared rows.
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u64_le(10);
        buf.put_u32_le(1);
        buf.put_u8(2); // COL_BOOL
        buf.put_u8(0); // no nulls
        buf.put_u8(1); // one run
        buf.put_u8(1); // true
        buf.put_u8(3); // covering 3 of 10 rows
        let schema = Schema::new("H", vec![Attribute::new("v", DataType::Bool)]);
        assert!(matches!(
            decode_segment(schema, buf.freeze()),
            Err(StorageError::Codec(_))
        ));
        // Unknown version byte.
        assert!(matches!(
            decode_segment(
                Schema::new("H", vec![]),
                Bytes::from(vec![9u8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0])
            ),
            Err(StorageError::Codec(_))
        ));
    }

    #[test]
    fn legacy_row_payload_behind_version_zero_decodes() {
        let rel = sample_relation();
        let mut buf = BytesMut::new();
        buf.put_u8(0);
        buf.put_slice(&encode_rows(&rel));
        assert_eq!(
            decode_segment(rel.schema().clone(), buf.freeze()).unwrap(),
            rel
        );
    }

    #[test]
    fn encoded_rows_len_matches_the_row_codec_exactly() {
        for rel in [
            sample_relation(),
            Relation::empty(sample_relation().schema().clone()),
        ] {
            assert_eq!(encoded_rows_len(&rel), encode_rows(&rel).len());
        }
    }

    #[test]
    fn columnar_segments_beat_the_row_codec_on_repetitive_data() {
        // A shape like the generated workloads: sequential ints, few distinct strings, a flag.
        let schema = Schema::new(
            "Wide",
            vec![
                Attribute::new("id", DataType::Int),
                Attribute::new("city", DataType::Text),
                Attribute::new("active", DataType::Bool),
            ],
        );
        let rows = (0..2000)
            .map(|i| {
                Tuple::new(vec![
                    Value::from(i as i64),
                    Value::text(format!("city-{}", i % 7)),
                    Value::from(i % 3 == 0),
                ])
            })
            .collect();
        let rel = Relation::new(schema, rows).unwrap();
        let encoded = encode_segment(&rel);
        let raw = encoded_rows_len(&rel);
        assert_eq!(segment_roundtrip(&rel), rel);
        assert!(
            encoded.len() * 5 < raw * 2,
            "columnar segment {} bytes vs raw {} bytes (need <= 0.4x)",
            encoded.len(),
            raw
        );
    }
}
