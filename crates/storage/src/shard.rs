//! Deterministic catalog partitioning for scatter-gather sharding.
//!
//! A [`ShardSpec`] describes one shard's view of a partitioned source instance: shard `i` of
//! `n` holds slice `i` of every source relation, cut by a [`ShardScheme`].  Partitioning is
//! **deterministic** (FNV-1a over the key column, or contiguous row ranges — never a seeded
//! std hasher) and **lossless**: [`merge`] reconstructs the exact original relation, row order
//! included, from the slices plus the row→shard assignment, so a sharded deployment can always
//! be byte-compared against the single-node catalog it was cut from.

use crate::{Relation, StorageError, StorageResult, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How rows of a relation are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShardScheme {
    /// FNV-1a hash of the key column (the relation's first attribute) modulo the shard count.
    ///
    /// Key-correlated rows land on the same shard regardless of their position in the
    /// relation, so appends never move existing rows between shards.
    Hash,
    /// Contiguous row ranges: shard `i` of `n` gets rows `[i·⌈len/n⌉, (i+1)·⌈len/n⌉)`.
    Range,
}

impl fmt::Display for ShardScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardScheme::Hash => write!(f, "hash"),
            ShardScheme::Range => write!(f, "range"),
        }
    }
}

impl std::str::FromStr for ShardScheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hash" => Ok(ShardScheme::Hash),
            "range" => Ok(ShardScheme::Range),
            other => Err(format!("unknown shard scheme '{other}' (hash|range)")),
        }
    }
}

/// One shard's identity within a partitioned deployment: `index` of `shards` total, cut by
/// `scheme`.  Merging slice `0..shards` of every relation reproduces the exact single-node
/// catalog the spec partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Total number of shards in the deployment.
    pub shards: usize,
    /// This shard's index in `0..shards`.
    pub index: usize,
    /// The partitioning scheme every relation is cut with.
    pub scheme: ShardScheme,
}

impl ShardSpec {
    /// Creates a validated spec (`shards ≥ 1`, `index < shards`).
    pub fn new(shards: usize, index: usize, scheme: ShardScheme) -> StorageResult<ShardSpec> {
        if shards == 0 || index >= shards {
            return Err(StorageError::InvalidShardSpec { shards, index });
        }
        Ok(ShardSpec {
            shards,
            index,
            scheme,
        })
    }

    /// This shard's slice of a relation (relative row order preserved).
    #[must_use]
    pub fn slice(&self, relation: &Relation) -> Relation {
        partition(relation, self.shards, self.scheme)
            .into_iter()
            .nth(self.index)
            .expect("index < shards by construction")
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {}/{} ({})", self.index, self.shards, self.scheme)
    }
}

/// FNV-1a over a value's type tag and payload bytes.
///
/// Std hashers are randomly seeded per process, which would make shard assignment differ
/// between coordinator and shards (or between runs); FNV-1a is fixed, fast and good enough
/// for the key domains the generators produce.
#[must_use]
pub fn fnv1a_value(value: &Value) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    match value {
        Value::Null => eat(&[0]),
        Value::Int(i) => {
            eat(&[1]);
            eat(&i.to_le_bytes());
        }
        Value::Float(x) => {
            eat(&[2]);
            eat(&x.to_bits().to_le_bytes());
        }
        Value::Bool(b) => eat(&[3, u8::from(*b)]),
        Value::Text(s) => {
            eat(&[4]);
            eat(s.as_bytes());
        }
    }
    hash
}

/// The shard each row of `relation` is assigned to under `scheme` (deterministic).
///
/// Hash partitioning keys on the first attribute — the generated schemas all lead with the
/// relation's key column — and rows of an empty-arity relation all land on shard 0.
#[must_use]
pub fn row_shards(relation: &Relation, shards: usize, scheme: ShardScheme) -> Vec<usize> {
    let shards = shards.max(1);
    match scheme {
        ShardScheme::Hash => relation
            .rows()
            .iter()
            .map(|row| match row.get(0) {
                Some(key) => (fnv1a_value(key) % shards as u64) as usize,
                None => 0,
            })
            .collect(),
        ShardScheme::Range => {
            let len = relation.len();
            let chunk = len.div_ceil(shards).max(1);
            (0..len).map(|i| (i / chunk).min(shards - 1)).collect()
        }
    }
}

/// Cuts a relation into `shards` slices (slice `i` holds this relation's rows assigned to
/// shard `i`, in original relative order).  Slices carry the source schema unchanged.
#[must_use]
pub fn partition(relation: &Relation, shards: usize, scheme: ShardScheme) -> Vec<Relation> {
    let shards = shards.max(1);
    let assignment = row_shards(relation, shards, scheme);
    let mut slices: Vec<Vec<Tuple>> = vec![Vec::new(); shards];
    for (row, shard) in relation.rows().iter().zip(&assignment) {
        slices[*shard].push(row.clone());
    }
    slices
        .into_iter()
        .map(|rows| Relation::from_validated(relation.schema().clone(), rows))
        .collect()
}

/// Reassembles the original relation from its slices and the row→shard assignment that
/// [`partition`] used (recompute it with [`row_shards`]).  The result is byte-identical to
/// the partitioned relation — schema, rows *and row order*.
pub fn merge(slices: &[Relation], assignment: &[usize]) -> StorageResult<Relation> {
    let Some(first) = slices.first() else {
        return Err(StorageError::InvalidShardSpec {
            shards: 0,
            index: 0,
        });
    };
    let total: usize = slices.iter().map(Relation::len).sum();
    if assignment.len() != total {
        return Err(StorageError::ShardMergeMismatch {
            relation: first.schema().name().to_string(),
            expected: assignment.len(),
            actual: total,
        });
    }
    let mut cursors = vec![0usize; slices.len()];
    let mut rows = Vec::with_capacity(total);
    for &shard in assignment {
        let slice = slices.get(shard).ok_or(StorageError::InvalidShardSpec {
            shards: slices.len(),
            index: shard,
        })?;
        let row =
            slice
                .rows()
                .get(cursors[shard])
                .ok_or_else(|| StorageError::ShardMergeMismatch {
                    relation: first.schema().name().to_string(),
                    expected: assignment.len(),
                    actual: total,
                })?;
        cursors[shard] += 1;
        rows.push(row.clone());
    }
    Ok(Relation::from_validated(first.schema().clone(), rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, DataType, Schema};

    fn sample(n: usize) -> Relation {
        let schema = Schema::new(
            "Orders",
            vec![
                Attribute::new("orderNum", DataType::Int),
                Attribute::new("clerk", DataType::Text),
            ],
        );
        let rows = (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::from(i as i64),
                    Value::from(format!("clerk{}", i % 7)),
                ])
            })
            .collect();
        Relation::new(schema, rows).unwrap()
    }

    #[test]
    fn spec_validates_bounds() {
        assert!(ShardSpec::new(0, 0, ShardScheme::Hash).is_err());
        assert!(ShardSpec::new(2, 2, ShardScheme::Hash).is_err());
        assert!(ShardSpec::new(2, 1, ShardScheme::Range).is_ok());
    }

    #[test]
    fn scheme_round_trips_through_strings() {
        for scheme in [ShardScheme::Hash, ShardScheme::Range] {
            assert_eq!(scheme.to_string().parse::<ShardScheme>(), Ok(scheme));
        }
        assert!("zipf".parse::<ShardScheme>().is_err());
    }

    #[test]
    fn hashing_is_deterministic_across_calls() {
        let rel = sample(100);
        for _ in 0..3 {
            assert_eq!(
                row_shards(&rel, 4, ShardScheme::Hash),
                row_shards(&rel, 4, ShardScheme::Hash)
            );
        }
    }

    #[test]
    fn partitions_cover_every_row_exactly_once() {
        let rel = sample(101);
        for scheme in [ShardScheme::Hash, ShardScheme::Range] {
            for shards in 1..=5 {
                let slices = partition(&rel, shards, scheme);
                assert_eq!(slices.len(), shards);
                let total: usize = slices.iter().map(Relation::len).sum();
                assert_eq!(total, rel.len(), "{scheme} × {shards}");
            }
        }
    }

    #[test]
    fn hash_spreads_rows_across_shards() {
        let rel = sample(400);
        let slices = partition(&rel, 4, ShardScheme::Hash);
        for (i, slice) in slices.iter().enumerate() {
            assert!(!slice.is_empty(), "shard {i} got no rows");
        }
    }

    #[test]
    fn range_slices_are_contiguous() {
        let rel = sample(10);
        let slices = partition(&rel, 3, ShardScheme::Range);
        assert_eq!(
            slices.iter().map(Relation::len).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        assert_eq!(slices[0].rows(), &rel.rows()[..4]);
        assert_eq!(slices[2].rows(), &rel.rows()[8..]);
    }

    #[test]
    fn merge_reproduces_the_exact_relation() {
        let rel = sample(97);
        for scheme in [ShardScheme::Hash, ShardScheme::Range] {
            for shards in 1..=4 {
                let slices = partition(&rel, shards, scheme);
                let assignment = row_shards(&rel, shards, scheme);
                let merged = merge(&slices, &assignment).unwrap();
                assert_eq!(merged.schema(), rel.schema());
                assert_eq!(merged.rows(), rel.rows(), "{scheme} × {shards}");
            }
        }
    }

    #[test]
    fn spec_slice_matches_partition() {
        let rel = sample(50);
        let slices = partition(&rel, 3, ShardScheme::Hash);
        for (index, slice) in slices.iter().enumerate() {
            let spec = ShardSpec::new(3, index, ShardScheme::Hash).unwrap();
            assert_eq!(spec.slice(&rel).rows(), slice.rows());
        }
    }

    #[test]
    fn merge_rejects_mismatched_assignment() {
        let rel = sample(10);
        let slices = partition(&rel, 2, ShardScheme::Hash);
        assert!(merge(&slices, &[0, 1]).is_err());
        assert!(merge(&[], &[]).is_err());
    }

    #[test]
    fn empty_relation_partitions_cleanly() {
        let rel = Relation::empty(sample(0).schema().clone());
        for scheme in [ShardScheme::Hash, ShardScheme::Range] {
            let slices = partition(&rel, 4, scheme);
            assert_eq!(slices.len(), 4);
            assert!(slices.iter().all(Relation::is_empty));
            let merged = merge(&slices, &[]).unwrap();
            assert!(merged.is_empty());
        }
    }
}
