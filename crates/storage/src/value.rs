//! Typed scalar values.

use crate::DataType;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A scalar value stored in a tuple.
///
/// Answer tuples of a probabilistic query must be *aggregated by equality* — the probability of
/// an answer is the sum of the probabilities of every mapping that produces it — so `Value`
/// implements full `Eq`, `Ord` and `Hash`.  Floats are compared and hashed through a total
/// order (`f64::total_cmp`) with all NaNs treated as identical; this makes probabilistic
/// aggregation deterministic even for SUM results.
///
/// Strings are reference-counted (`Arc<str>`): source relations are repeatedly filtered,
/// projected and multiplied while evaluating the many source queries a mapping set induces, and
/// cloning tuples must stay cheap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absent value (used for partial correspondences and empty aggregates).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Returns the [`DataType`] of this value.
    #[must_use]
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Text(_) => DataType::Text,
            Value::Bool(_) => DataType::Bool,
        }
    }

    /// Returns true for [`Value::Null`].
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Creates a text value.
    #[must_use]
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// Interprets the value as a float for arithmetic (SUM aggregates).
    ///
    /// Integers widen to floats; every other variant yields `None`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Interprets the value as an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interprets the value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Interprets the value as a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric rank of the variant, used to order values of different types deterministically.
    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Text(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            // Cross-type numeric equality: an int column joined with a float column must still
            // match (the synthetic TPC-H generator stores prices as floats, quantities as ints).
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64).total_cmp(b) == Ordering::Equal
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            _ => self.variant_rank().cmp(&other.variant_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Ints and floats that compare equal must hash equally, so both hash through the
            // float bit pattern of their numeric value.
            Value::Int(i) => {
                state.write_u8(2);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                state.write_u8(2);
                if f.is_nan() {
                    f64::NAN.to_bits().hash(state);
                } else {
                    f.to_bits().hash(state);
                }
            }
            Value::Text(s) => {
                state.write_u8(4);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn data_types_are_reported() {
        assert_eq!(Value::from(1i64).data_type(), DataType::Int);
        assert_eq!(Value::from(1.5).data_type(), DataType::Float);
        assert_eq!(Value::from("x").data_type(), DataType::Text);
        assert_eq!(Value::from(true).data_type(), DataType::Bool);
        assert_eq!(Value::Null.data_type(), DataType::Null);
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Value::from("abc"), Value::from("abc"));
        assert_ne!(Value::from("abc"), Value::from("abd"));
        assert_eq!(Value::from(3i64), Value::from(3i64));
        assert_ne!(Value::from(3i64), Value::from(4i64));
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::from(3i64), Value::from(3.0));
        assert_ne!(Value::from(3i64), Value::from(3.5));
        assert_eq!(hash_of(&Value::from(3i64)), hash_of(&Value::from(3.0)));
    }

    #[test]
    fn nan_is_self_equal() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn equal_values_hash_equal() {
        let pairs = [
            (Value::from("hello"), Value::from("hello")),
            (Value::from(42i64), Value::from(42i64)),
            (Value::from(1.25), Value::from(1.25)),
            (Value::Null, Value::Null),
        ];
        for (a, b) in pairs {
            assert_eq!(a, b);
            assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn ordering_is_total_and_antisymmetric() {
        let values = vec![
            Value::Null,
            Value::from(false),
            Value::from(true),
            Value::from(-7i64),
            Value::from(2i64),
            Value::from(2.5),
            Value::from("a"),
            Value::from("b"),
        ];
        for a in &values {
            for b in &values {
                match a.cmp(b) {
                    Ordering::Less => assert_eq!(b.cmp(a), Ordering::Greater),
                    Ordering::Greater => assert_eq!(b.cmp(a), Ordering::Less),
                    Ordering::Equal => assert_eq!(b.cmp(a), Ordering::Equal),
                }
            }
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::from(7i64).as_i64(), Some(7));
        assert_eq!(Value::from(7i64).as_f64(), Some(7.0));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::from("s").as_i64(), None);
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::from(12i64).to_string(), "12");
        assert_eq!(Value::from("aaa").to_string(), "aaa");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
