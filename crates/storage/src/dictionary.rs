//! Per-column string dictionaries for the columnar layout.
//!
//! Text columns in a [`ColumnarRelation`](crate::ColumnarRelation) are stored as `u32` codes
//! against a per-column [`Dictionary`].  Source relations repeat a small set of strings many
//! times (generated names, phone numbers, city codes), so dictionary codes turn string
//! comparisons into integer comparisons and shrink spilled segments.  A column whose distinct
//! string count exceeds the builder's limit falls back to a plain (`Mixed`) value column
//! instead of growing an unbounded dictionary.

use std::collections::HashMap;
use std::sync::Arc;

/// Default bound on distinct strings per column dictionary; columns with more distinct values
/// fall back to plain value storage.  Generous for the generated workloads (hundreds of
/// distinct strings) while bounding worst-case dictionary memory.
pub const DEFAULT_DICT_LIMIT: usize = 1 << 16;

/// An order-of-first-appearance string dictionary: code `i` is the `i`-th distinct string
/// interned.  Codes are dense (`0..len`).
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    #[must_use]
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Rebuilds a dictionary from its dense code table (decoded spill segments).
    ///
    /// Entry `i` becomes code `i`; duplicate entries keep the first code, which preserves
    /// lookups even for degenerate tables.
    #[must_use]
    pub fn from_values(values: Vec<Arc<str>>) -> Self {
        let mut index = HashMap::with_capacity(values.len());
        for (i, s) in values.iter().enumerate() {
            index.entry(Arc::clone(s)).or_insert(i as u32);
        }
        Dictionary { values, index }
    }

    /// Interns a string, returning its code — or `None` when the string is new and the
    /// dictionary already holds `limit` distinct entries (the caller falls back to a plain
    /// column).
    pub fn intern_within(&mut self, s: &Arc<str>, limit: usize) -> Option<u32> {
        if let Some(&code) = self.index.get(s) {
            return Some(code);
        }
        if self.values.len() >= limit {
            return None;
        }
        let code = self.values.len() as u32;
        self.values.push(Arc::clone(s));
        self.index.insert(Arc::clone(s), code);
        Some(code)
    }

    /// The string for a code, if in range.
    #[must_use]
    pub fn get(&self, code: u32) -> Option<&Arc<str>> {
        self.values.get(code as usize)
    }

    /// Looks up the code of a string already interned.
    #[must_use]
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Number of distinct entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The dense code table (entry `i` is code `i`).
    #[must_use]
    pub fn entries(&self) -> &[Arc<str>] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn interning_is_dense_and_idempotent() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern_within(&arc("a"), 16), Some(0));
        assert_eq!(d.intern_within(&arc("b"), 16), Some(1));
        assert_eq!(d.intern_within(&arc("a"), 16), Some(0));
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(1).map(|s| &**s), Some("b"));
        assert_eq!(d.code_of("b"), Some(1));
        assert_eq!(d.code_of("zzz"), None);
    }

    #[test]
    fn limit_rejects_new_entries_but_not_existing_ones() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern_within(&arc("a"), 1), Some(0));
        assert_eq!(d.intern_within(&arc("b"), 1), None);
        // Existing entries still intern under a full dictionary.
        assert_eq!(d.intern_within(&arc("a"), 1), Some(0));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn from_values_round_trips() {
        let mut d = Dictionary::new();
        for s in ["x", "y", "z"] {
            d.intern_within(&arc(s), 16).unwrap();
        }
        let rebuilt = Dictionary::from_values(d.entries().to_vec());
        assert_eq!(rebuilt.len(), 3);
        assert_eq!(rebuilt.code_of("y"), Some(1));
        assert_eq!(rebuilt.get(2).map(|s| &**s), Some("z"));
    }
}
