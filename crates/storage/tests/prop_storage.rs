//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use urm_storage::codec;
use urm_storage::{Attribute, DataType, Relation, Schema, Tuple, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::from),
        // Finite floats only: NaN equality is defined but ordinary data never contains NaN.
        (-1.0e12f64..1.0e12f64).prop_map(Value::from),
        "[a-zA-Z0-9 _-]{0,24}".prop_map(|s| Value::from(s.as_str())),
        any::<bool>().prop_map(Value::from),
    ]
}

fn arb_tuple(max_arity: usize) -> impl Strategy<Value = Tuple> {
    prop::collection::vec(arb_value(), 0..=max_arity).prop_map(Tuple::new)
}

proptest! {
    #[test]
    fn value_codec_roundtrip(v in arb_value()) {
        let mut buf = bytes::BytesMut::new();
        codec::encode_value(&mut buf, &v);
        let mut bytes = buf.freeze();
        let decoded = codec::decode_value(&mut bytes).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert!(!bytes.len() > 0 || bytes.is_empty());
    }

    #[test]
    fn tuple_codec_roundtrip(t in arb_tuple(8)) {
        let mut buf = bytes::BytesMut::new();
        codec::encode_tuple(&mut buf, &t);
        let mut bytes = buf.freeze();
        let decoded = codec::decode_tuple(&mut bytes).unwrap();
        prop_assert_eq!(decoded, t);
    }

    #[test]
    fn value_equality_implies_hash_equality(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |v: &Value| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        if a == b {
            prop_assert_eq!(hash(&a), hash(&b));
        }
    }

    #[test]
    fn value_ordering_is_consistent_with_equality(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        let ord = a.cmp(&b);
        if a == b {
            prop_assert_eq!(ord, Ordering::Equal);
        }
        if ord == Ordering::Equal {
            // Total order equality must agree with Eq.
            prop_assert_eq!(&a, &b);
        }
        prop_assert_eq!(b.cmp(&a), ord.reverse());
    }

    #[test]
    fn tuple_projection_length_matches_positions(
        t in arb_tuple(8),
        positions in prop::collection::vec(0usize..10, 0..6),
    ) {
        let projected = t.project(&positions);
        prop_assert_eq!(projected.arity(), positions.len());
    }

    #[test]
    fn tuple_concat_arity_is_sum(a in arb_tuple(6), b in arb_tuple(6)) {
        let c = a.concat(&b);
        prop_assert_eq!(c.arity(), a.arity() + b.arity());
        for (i, v) in a.iter().enumerate() {
            prop_assert_eq!(c.get(i), Some(v));
        }
        for (i, v) in b.iter().enumerate() {
            prop_assert_eq!(c.get(a.arity() + i), Some(v));
        }
    }

    #[test]
    fn relation_codec_roundtrip(rows in prop::collection::vec(
        (any::<i64>(), "[a-z]{0,12}", -1.0e6f64..1.0e6f64), 0..40)
    ) {
        let schema = Schema::new(
            "R",
            vec![
                Attribute::new("a", DataType::Int),
                Attribute::new("b", DataType::Text),
                Attribute::new("c", DataType::Float),
            ],
        );
        let tuples: Vec<Tuple> = rows
            .into_iter()
            .map(|(a, b, c)| Tuple::new(vec![Value::from(a), Value::from(b.as_str()), Value::from(c)]))
            .collect();
        let rel = Relation::new(schema, tuples).unwrap();
        let back = codec::roundtrip(&rel).unwrap();
        prop_assert_eq!(back, rel);
    }
}
