//! The open-loop HTTP latency harness: drives a real `urm-server` over loopback with Poisson
//! arrivals and reports per-phase tail latencies, plus an in-process A/B of the two-stage
//! epoch-lock pipeline.
//!
//! Three experiments, all rows written to `BENCH_http.json` by the `http_bench` binary:
//!
//! * **Open-loop phases** — a precomputed [`urm_datagen::openloop`] schedule (cold phase, then
//!   a warm phase at double rate) is replayed against the server by one thread per simulated
//!   client, each sending `POST /query` at the scheduled instants *regardless of how previous
//!   requests are doing* (open-loop: a stalling server keeps receiving load, so queueing shows
//!   up in the tail).  Per phase: throughput and p50/p95/p99 latency, measured
//!   request-to-last-byte.
//! * **Byte identity** — every HTTP answer must render byte-identically to the same query
//!   answered by an in-process [`QueryService`] on an identically generated scenario, using
//!   the shared [`urm_server::wire::answer_json`] rendering.  The HTTP front door may not
//!   change a single answer byte.
//! * **Pipeline A/B** — the same stream of structurally distinct batches is pushed through two
//!   services, one with `pipeline: false` (epoch lock held across rewrite+optimise+bind *and*
//!   execution, so batches fully serialise) and one with `pipeline: true` (lock held across
//!   binding only; on a pool-free epoch the engine also executes outside its result lock, so
//!   the workers run whole batches concurrently).  Reported as wall times plus a `speedup`
//!   row that CI gates at ≥ 1.1× on multi-core hosts.

use crate::experiments::{ExperimentRow, RowKind};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};
use urm_core::{CoreResult, TargetQuery};
use urm_datagen::openloop::{schedule, Arrival, OpenLoopConfig, PhaseSpec};
use urm_datagen::scenario::{Scenario, ScenarioConfig, TargetSchemaKind};
use urm_server::wire::answer_json;
use urm_server::{AdmissionConfig, AdmissionController, HttpClient, Json, UrmServer};
use urm_service::{LatencySummary, QueryService, ServiceConfig};

/// Configuration of one harness run.
#[derive(Debug, Clone)]
pub struct HttpBenchConfig {
    /// Scenario scale for the open-loop phases.
    pub scale: usize,
    /// Possible mappings for the open-loop scenario.
    pub mappings: usize,
    /// Data-generation and schedule seed.
    pub seed: u64,
    /// Requests per open-loop phase.
    pub requests: usize,
    /// Cold-phase Poisson rate (requests/sec); the warm phase runs at double this.
    pub rate: f64,
    /// Simulated clients (each gets its own keep-alive connection and token bucket).
    pub clients: usize,
    /// Service worker threads of the in-process server.
    pub workers: usize,
    /// Drive an already-running server at this address instead of starting one in-process.
    /// The external server must serve an identically generated Excel scenario (same
    /// `--scale/--mappings/--seed`) or the byte-identity check will rightly fail.
    pub attach: Option<String>,
    /// Check HTTP answers byte-for-byte against an in-process replay.
    pub verify: bool,
    /// Pipeline A/B: batches per run.
    pub ab_batches: usize,
    /// Pipeline A/B: queries per batch (also the service's `batch_max`).
    pub ab_queries: usize,
    /// Pipeline A/B: scenario scale (heavier than the open-loop one — the A/B needs real
    /// per-batch execution time to overlap).
    pub ab_scale: usize,
    /// Pipeline A/B: possible mappings (more mappings = heavier rewrite+bind stage).
    pub ab_mappings: usize,
    /// Pipeline A/B: timed runs per mode (best-of is reported, as in the other benches).
    pub ab_iters: usize,
}

impl Default for HttpBenchConfig {
    fn default() -> Self {
        HttpBenchConfig {
            scale: 20,
            mappings: 8,
            seed: 42,
            requests: 50,
            rate: 50.0,
            clients: 4,
            workers: 2,
            attach: None,
            verify: true,
            ab_batches: 8,
            ab_queries: 2,
            ab_scale: 60,
            ab_mappings: 8,
            ab_iters: 2,
        }
    }
}

fn scenario_config(config: &HttpBenchConfig) -> ScenarioConfig {
    ScenarioConfig {
        target: TargetSchemaKind::Excel,
        scale: config.scale,
        mappings: config.mappings,
        seed: config.seed,
    }
}

/// One completed open-loop request.
struct Sample {
    phase: usize,
    /// When the request was actually sent, relative to run start.
    sent: Duration,
    /// Request-to-last-byte latency.
    latency: Duration,
    label: String,
    /// The `"answer"` object of the response, rendered canonically.
    answer: String,
}

/// Replays the schedule against `addr`, one thread per client, open-loop.
fn drive(
    addr: SocketAddr,
    arrivals: &[Arrival],
    clients: usize,
    timeout: Duration,
) -> Result<Vec<Sample>, String> {
    let start = Instant::now();
    let results: Vec<Result<Vec<Sample>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let mine: Vec<&Arrival> = arrivals.iter().filter(|a| a.client == client).collect();
                scope.spawn(move || -> Result<Vec<Sample>, String> {
                    let mut connection: Option<HttpClient> = None;
                    let mut samples = Vec::with_capacity(mine.len());
                    for arrival in mine {
                        // Open-loop: sleep until the scheduled instant, then send no matter
                        // what.  If we are already late (server pushback), send immediately —
                        // the delay surfaces as tail latency, which is the point.
                        let target = start + arrival.at;
                        let now = Instant::now();
                        if target > now {
                            std::thread::sleep(target - now);
                        }
                        let client_conn = match connection.as_mut() {
                            Some(c) => c,
                            None => connection.insert(
                                HttpClient::connect(addr, timeout)
                                    .map_err(|e| format!("client {client}: connect: {e}"))?,
                            ),
                        };
                        let body = format!("{{\"spec\":\"{}\"}}", arrival.entry.label);
                        let sent = start.elapsed();
                        let sent_at = Instant::now();
                        let response = match client_conn.request("POST", "/query", Some(&body)) {
                            Ok(response) => response,
                            Err(err) => {
                                // One reconnect per arrival: a keep-alive connection the
                                // server closed (e.g. timeout) is not a measurement failure.
                                connection = None;
                                let fresh =
                                    connection.insert(HttpClient::connect(addr, timeout).map_err(
                                        |e| format!("client {client}: reconnect after {err}: {e}"),
                                    )?);
                                fresh
                                    .request("POST", "/query", Some(&body))
                                    .map_err(|e| format!("client {client}: retry: {e}"))?
                            }
                        };
                        let latency = sent_at.elapsed();
                        if response.status != 200 {
                            return Err(format!(
                                "client {client}: '{}' answered {}: {}",
                                arrival.entry.label, response.status, response.body
                            ));
                        }
                        let doc = Json::parse(&response.body)
                            .map_err(|e| format!("client {client}: bad response JSON: {e}"))?;
                        let answer = doc
                            .get("answer")
                            .ok_or_else(|| format!("client {client}: response without answer"))?
                            .to_string();
                        samples.push(Sample {
                            phase: arrival.phase,
                            sent,
                            latency,
                            label: arrival.entry.label.clone(),
                            answer,
                        });
                    }
                    Ok(samples)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let mut samples = Vec::new();
    for result in results {
        samples.extend(result?);
    }
    Ok(samples)
}

/// Answers every distinct label in-process (a fresh service on an identically generated
/// scenario) and renders it with the same [`answer_json`] the server uses.
fn expected_answers(
    config: &HttpBenchConfig,
    arrivals: &[Arrival],
) -> Result<HashMap<String, String>, String> {
    let scenario = Scenario::generate(&scenario_config(config)).map_err(|e| e.to_string())?;
    let service = QueryService::new(ServiceConfig::default());
    let epoch = service.register_epoch(scenario.catalog, scenario.mappings);
    let mut expected = HashMap::new();
    for arrival in arrivals {
        if expected.contains_key(&arrival.entry.label) {
            continue;
        }
        let ticket = service
            .submit(epoch, arrival.entry.query.clone())
            .map_err(|e| e.to_string())?;
        service.flush();
        let response = ticket.wait().map_err(|e| e.to_string())?;
        expected.insert(
            arrival.entry.label.clone(),
            answer_json(&arrival.entry.label, &response.answer).to_string(),
        );
    }
    service.shutdown();
    Ok(expected)
}

fn phase_rows(phases: &[PhaseSpec], samples: &[Sample], rows: &mut Vec<ExperimentRow>) {
    for (index, phase) in phases.iter().enumerate() {
        let of_phase: Vec<&Sample> = samples.iter().filter(|s| s.phase == index).collect();
        if of_phase.is_empty() {
            continue;
        }
        let first_sent = of_phase.iter().map(|s| s.sent).min().unwrap();
        let last_done = of_phase.iter().map(|s| s.sent + s.latency).max().unwrap();
        let span = last_done.saturating_sub(first_sent);
        let latencies = LatencySummary::from_samples(of_phase.iter().map(|s| s.latency).collect());
        let throughput = if span.is_zero() {
            0.0
        } else {
            of_phase.len() as f64 / span.as_secs_f64()
        };
        rows.push(ExperimentRow {
            experiment: "http".into(),
            series: phase.name.clone(),
            x: "span".into(),
            kind: RowKind::Timing,
            time: span,
            source_operators: 0,
            answers: of_phase.len(),
            extra: None,
        });
        let ms = |d: Duration| d.as_secs_f64() * 1000.0;
        for (x, name, value) in [
            ("p50", "p50_ms", ms(latencies.p50)),
            ("p95", "p95_ms", ms(latencies.p95)),
            ("p99", "p99_ms", ms(latencies.p99)),
            ("throughput", "requests_per_sec", throughput),
            ("offered", "offered_per_sec", phase.rate_per_sec),
        ] {
            rows.push(ExperimentRow {
                experiment: "http".into(),
                series: phase.name.clone(),
                x: x.into(),
                kind: RowKind::Timing,
                time: Duration::ZERO,
                source_operators: 0,
                answers: 0,
                extra: Some((name.into(), value)),
            });
        }
    }
}

/// The Excel `PO` attributes the generated mappings reliably cover (the ones the paper's own
/// workload touches) — the pool the A/B's structurally distinct queries draw from.
const AB_ATTRS: [&str; 10] = [
    "orderNum",
    "orderDate",
    "telephone",
    "priority",
    "invoiceTo",
    "company",
    "deliverToStreet",
    "deliverToCity",
    "status",
    "totalPrice",
];

/// Structurally distinct query #`i`: an unfiltered `PO` self-join chain (1 or 2 joins) with a
/// varying projection.  Distinct structure means no answer-cache hit, no in-batch dedup, no
/// epoch result reuse — every batch really binds and really executes, which is what the
/// pipeline A/B needs.  `2 × AB_ATTRS.len()` distinct shapes exist; beyond that they repeat.
fn ab_query(i: usize) -> CoreResult<TargetQuery> {
    let joins = 1 + (i % 2);
    let attr = AB_ATTRS[(i / 2) % AB_ATTRS.len()];
    let mut builder = TargetQuery::builder(format!("ab-{i}")).relation_as("PO", "PO1");
    for j in 2..=(joins + 1) {
        builder = builder
            .relation_as("PO", format!("PO{j}"))
            .join("PO1.orderNum", &format!("PO{j}.orderNum"));
    }
    builder
        .returning(["PO1.orderNum", &format!("PO1.{attr}")])
        .build()
}

/// One timed A/B run: `batches × per_batch` distinct queries through a fresh service.
fn measure_mode(config: &HttpBenchConfig, pipeline: bool) -> Result<Duration, String> {
    let scenario = Scenario::generate(&ScenarioConfig {
        target: TargetSchemaKind::Excel,
        scale: config.ab_scale,
        mappings: config.ab_mappings,
        seed: config.seed,
    })
    .map_err(|e| e.to_string())?;
    // dag_workers is pinned to 1 so both modes schedule each batch identically: the A/B
    // isolates the epoch-lock strategy (serialised batches vs pipelined bind + overlapped
    // execution), not intra-batch DAG parallelism, which dag_bench already measures.
    let service = QueryService::new(ServiceConfig {
        workers: config.workers.max(2),
        batch_max: config.ab_queries.max(1),
        dag_workers: 1,
        pipeline,
        ..ServiceConfig::default()
    });
    let epoch = service.register_epoch(scenario.catalog, scenario.mappings);
    let total = config.ab_batches.max(1) * config.ab_queries.max(1);
    let queries: Vec<TargetQuery> = (0..total)
        .map(ab_query)
        .collect::<CoreResult<_>>()
        .map_err(|e| e.to_string())?;

    let start = Instant::now();
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| service.submit(epoch, q.clone()))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    service.flush();
    for ticket in tickets {
        ticket.wait().map_err(|e| e.to_string())?;
    }
    let elapsed = start.elapsed();
    service.shutdown();
    Ok(elapsed)
}

fn ab_rows(config: &HttpBenchConfig, rows: &mut Vec<ExperimentRow>) -> Result<(), String> {
    let iters = config.ab_iters.max(1);
    let best = |pipeline: bool| -> Result<Duration, String> {
        let mut best = Duration::MAX;
        for _ in 0..iters {
            best = best.min(measure_mode(config, pipeline)?);
        }
        Ok(best)
    };
    // Alternate would be fairer under thermal drift, but these runs are seconds long.
    let serialized = best(false)?;
    let pipelined = best(true)?;
    let speedup = if pipelined.is_zero() {
        f64::INFINITY
    } else {
        serialized.as_secs_f64() / pipelined.as_secs_f64()
    };
    let answers = config.ab_batches.max(1) * config.ab_queries.max(1);
    for (series, time) in [("pipeline-off", serialized), ("pipeline-on", pipelined)] {
        rows.push(ExperimentRow {
            experiment: "http".into(),
            series: series.into(),
            x: "ab".into(),
            kind: RowKind::Timing,
            time,
            source_operators: 0,
            answers,
            extra: None,
        });
    }
    rows.push(ExperimentRow {
        experiment: "http".into(),
        series: "speedup-pipeline".into(),
        x: "ab".into(),
        kind: RowKind::Timing,
        time: Duration::ZERO,
        source_operators: 0,
        answers: 0,
        extra: Some(("speedup".into(), speedup)),
    });
    Ok(())
}

/// Runs the harness: open-loop phases (+ byte-identity check) and the pipeline A/B.
/// Returns `BENCH_http.json`-ready rows.
pub fn run(config: &HttpBenchConfig) -> Result<Vec<ExperimentRow>, String> {
    let mut openloop = OpenLoopConfig::excel_default(config.requests.max(1), config.rate);
    openloop.clients = config.clients.max(1);
    openloop.seed = config.seed;
    let arrivals = schedule(&openloop).map_err(|e| e.to_string())?;

    // An in-process server unless attached to an external one.
    let server = match &config.attach {
        Some(_) => None,
        None => {
            let scenario =
                Scenario::generate(&scenario_config(config)).map_err(|e| e.to_string())?;
            let service = QueryService::new(ServiceConfig {
                workers: config.workers.max(1),
                ..ServiceConfig::default()
            });
            let epoch = service.register_epoch(scenario.catalog, scenario.mappings);
            Some(
                UrmServer::start(
                    "127.0.0.1:0",
                    service,
                    vec![(TargetSchemaKind::Excel, epoch)],
                    AdmissionController::new(AdmissionConfig::default()),
                )
                .map_err(|e| format!("server start: {e}"))?,
            )
        }
    };
    let addr: SocketAddr = match (&server, &config.attach) {
        (Some(server), _) => server.addr(),
        (None, Some(attach)) => attach
            .parse()
            .map_err(|e| format!("bad --attach address '{attach}': {e}"))?,
        (None, None) => unreachable!(),
    };

    let samples = drive(
        addr,
        &arrivals,
        config.clients.max(1),
        Duration::from_secs(60),
    )?;
    let mut rows = Vec::new();
    phase_rows(&openloop.phases, &samples, &mut rows);

    if config.verify {
        let expected = expected_answers(config, &arrivals)?;
        let mut mismatches = 0usize;
        for sample in &samples {
            let want = expected
                .get(&sample.label)
                .ok_or_else(|| format!("no expected answer for '{}'", sample.label))?;
            if &sample.answer != want {
                mismatches += 1;
                if mismatches == 1 {
                    eprintln!(
                        "byte-identity mismatch for '{}':\n  http:       {}\n  in-process: {}",
                        sample.label, sample.answer, want
                    );
                }
            }
        }
        if mismatches > 0 {
            return Err(format!(
                "{mismatches}/{} HTTP answers differ from the in-process replay",
                samples.len()
            ));
        }
        rows.push(ExperimentRow {
            experiment: "http".into(),
            series: "identity".into(),
            x: "verified".into(),
            kind: RowKind::Timing,
            time: Duration::ZERO,
            source_operators: 0,
            answers: samples.len(),
            extra: Some(("verified_answers".into(), samples.len() as f64)),
        });
    }
    if let Some(server) = server {
        server.shutdown();
    }

    ab_rows(config, &mut rows)?;
    rows.push(ExperimentRow {
        experiment: "http".into(),
        series: "host-parallelism".into(),
        x: "ab".into(),
        kind: RowKind::Timing,
        time: Duration::ZERO,
        source_operators: 0,
        answers: 0,
        extra: Some((
            "hardware-threads".into(),
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1) as f64,
        )),
    });
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_bench_smoke() {
        let rows = run(&HttpBenchConfig {
            scale: 4,
            mappings: 4,
            seed: 7,
            requests: 8,
            rate: 400.0,
            clients: 2,
            workers: 2,
            attach: None,
            verify: true,
            ab_batches: 2,
            ab_queries: 2,
            ab_scale: 12,
            ab_mappings: 4,
            ab_iters: 1,
        })
        .unwrap();
        let find = |series: &str, x: &str| {
            rows.iter()
                .find(|r| r.series == series && r.x == x)
                .unwrap_or_else(|| panic!("missing row {series}/{x}"))
        };
        // Both phases completed all their requests …
        assert_eq!(find("cold", "span").answers, 8);
        assert_eq!(find("warm", "span").answers, 8);
        assert!(find("cold", "p99").extra.as_ref().unwrap().1 >= 0.0);
        assert!(find("warm", "throughput").extra.as_ref().unwrap().1 > 0.0);
        // … every answer was byte-identical to the in-process replay …
        assert_eq!(find("identity", "verified").extra.as_ref().unwrap().1, 16.0);
        // … and both pipeline modes ran the same work (no speedup asserted at toy scale).
        assert_eq!(find("pipeline-off", "ab").answers, 4);
        assert_eq!(find("pipeline-on", "ab").answers, 4);
        assert!(find("speedup-pipeline", "ab").extra.as_ref().unwrap().1 > 0.0);
    }

    #[test]
    fn ab_queries_are_structurally_distinct() {
        // Normalise the per-query name out of the rendering: what must differ is the
        // *structure* (join count × projection), because that is what the bind cache and the
        // epoch result cache key on — a repeated structure would be served from cache and
        // give the pipeline nothing to overlap.
        let total = 2 * AB_ATTRS.len();
        let rendered: std::collections::HashSet<String> = (0..total)
            .map(|i| format!("{:?}", ab_query(i).unwrap()).replace(&format!("ab-{i}"), "ab"))
            .collect();
        assert_eq!(rendered.len(), total, "A/B queries must not repeat");
    }
}
